"""Test-case minimization: smallest packet, same crash.

The campaign stores whatever oversized mutant happened to trigger each
fault; the analyst wants the minimal reproducer.  Two reducers compose:

* :func:`shrink_fields` — *field-aware* shrinking.  When the crashing
  packet parses under one of the pit's data models (strictly, or
  leniently — illegal field values are often exactly why a mutant
  crashes), whole sub-trees are candidates: optional Repeat elements
  are dropped and variable-length leaves truncated *on the InsTree*,
  and the candidate packet is re-built through ``DataModel.build`` so
  the existing Relation/Fixup machinery recomputes sizes, counts and
  checksums.  This is what byte-level reduction cannot do: remove a
  chunk and keep the framing honest in the same step.
* :func:`ddmin_bytes` — classic Zeller/Hildebrandt delta debugging on
  the raw bytes, for packets (the common case) that are *not* legal
  under any model precisely because malformedness is what crashes the
  target.

Every candidate is re-executed under the sanitizer via
:class:`CrashChecker` and accepted only when it still triggers the same
``(kind, site)`` dedup key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.fixup_engine import TreeEchoProvider
from repro.model.fields import ModelError, ParseError, Repeat
from repro.protocols import PROTOCOLS_PATH_PREFIX
from repro.runtime.instrument import make_line_collector
from repro.runtime.target import Target
from repro.sanitizer.report import CrashReport


class CrashChecker:
    """Re-executes candidate packets under the sanitizer.

    Each check runs against a fresh heap (and a reset server) with a
    hang-budget collector attached, so a shrink candidate that loops
    forever is classified as "does not reproduce" instead of wedging
    the triage run.  *backend*/*hang_budget* mirror the campaign knobs
    (``CampaignConfig.coverage_backend`` / ``hang_budget``).
    """

    def __init__(self, target_spec, hang_budget: int = 120_000,
                 backend: str = "auto"):
        collector = make_line_collector((PROTOCOLS_PATH_PREFIX,),
                                        hang_budget=hang_budget,
                                        backend=backend)
        self.target = Target(target_spec.make_server, collector)
        self.executions = 0
        self._cache: Dict[bytes, Optional[tuple]] = {}

    def crash_key(self, packet: bytes) -> Optional[tuple]:
        """The ``(kind, site)`` the packet triggers, or None."""
        cached = self._cache.get(packet)
        if cached is not None or packet in self._cache:
            return cached
        result = self.target.run(packet)
        self.executions += 1
        key = result.crash.dedup_key if result.crash is not None else None
        self._cache[packet] = key
        return key

    def run(self, packet: bytes, model_name: Optional[str] = None):
        """One full execution (used to rebuild the final crash report)."""
        self.executions += 1
        return self.target.run(packet, model_name)


def ddmin_bytes(packet: bytes, reproduces: Callable[[bytes], bool],
                budget: Optional[List[int]] = None) -> bytes:
    """Byte-granularity ddmin: a 1-minimal subsequence that reproduces.

    *budget* is a one-element mutable execution allowance shared with the
    caller; the reduction stops (keeping its best result) when it runs
    dry.
    """
    if len(packet) <= 1:
        return packet
    granularity = 2
    while len(packet) >= 2:
        chunk = len(packet) / granularity
        reduced = False
        for index in range(granularity):
            if budget is not None and budget[0] <= 0:
                return packet
            start = int(index * chunk)
            end = int((index + 1) * chunk)
            candidate = packet[:start] + packet[end:]
            if not candidate:
                continue
            if budget is not None:
                budget[0] -= 1
            if reproduces(candidate):
                packet = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(packet):
                break
            granularity = min(granularity * 2, len(packet))
    return packet


def _parse_for_shrink(model, packet: bytes):
    """Parse strictly, then leniently; None when structure won't match."""
    for strict in (True, False):
        try:
            return model.parse(packet, strict=strict)
        except ParseError:
            continue
    return None


def _rebuild(model, tree) -> Optional[bytes]:
    """Re-serialize a (mutated) tree through the Relation/Fixup pipeline."""
    try:
        rebuilt = model.build(TreeEchoProvider(tree))
    except (ModelError, ParseError, ValueError):
        return None
    return model.to_wire(rebuilt)


def _structural_candidates(model, tree) -> List[bytes]:
    """Smaller packets obtained by pruning the parsed InsTree.

    Each candidate mutates the tree in place (drop one optional Repeat
    element, truncate a variable-length leaf), re-builds the packet —
    which recomputes every size/count relation and checksum fixup via
    the existing machinery — and reverts the mutation.
    """
    candidates: List[bytes] = []

    def emit():
        wire = _rebuild(model, tree)
        if wire is not None:
            candidates.append(wire)

    for node in tree.root.iter_nodes():
        field = node.field
        if isinstance(field, Repeat) and \
                len(node.children) > max(field.min_count, 1):
            for index in (len(node.children) - 1, 0):
                victim = node.children.pop(index)
                emit()
                node.children.insert(index, victim)
        elif node.is_leaf and field.fixed_width() is None and \
                isinstance(node.value, (bytes, str)) and node.value:
            saved = node.value
            for size in sorted({0, len(saved) // 2, len(saved) - 1}):
                node.value = saved[:size]
                emit()
            node.value = saved
    return candidates


def shrink_fields(pit, packet: bytes, reproduces: Callable[[bytes], bool],
                  budget: Optional[List[int]] = None) -> bytes:
    """Field-aware greedy shrink, iterated to a fixpoint."""
    improved = True
    while improved:
        improved = False
        for model in pit:
            tree = _parse_for_shrink(model, packet)
            if tree is None:
                continue
            for candidate in _structural_candidates(model, tree):
                if budget is not None:
                    if budget[0] <= 0:
                        return packet
                    budget[0] -= 1
                if len(candidate) < len(packet) and reproduces(candidate):
                    packet = candidate
                    improved = True
                    break
            if improved:
                break
    return packet


@dataclass
class MinimizationResult:
    """Outcome of minimizing one crash input."""

    original: bytes
    minimized: bytes
    dedup_key: tuple
    confirmed: bool          # the original reproduced at all
    executions: int          # sanitizer runs spent
    report: Optional[CrashReport] = None  # re-captured on the minimized input

    @property
    def reduced(self) -> bool:
        return self.confirmed and len(self.minimized) < len(self.original)

    @property
    def reduction_pct(self) -> float:
        if not self.original:
            return 0.0
        return 100.0 * (1.0 - len(self.minimized) / len(self.original))


def minimize_crash(target_spec, report: CrashReport, *,
                   max_executions: int = 3000,
                   checker: Optional[CrashChecker] = None
                   ) -> MinimizationResult:
    """Minimize one crash input while preserving its dedup key.

    Field-aware shrinking runs first (it removes whole semantic units and
    keeps integrity fields honest), ddmin then grinds the remainder down
    byte by byte; the pair is iterated until neither makes progress or
    the execution budget is spent.
    """
    if checker is None:
        checker = CrashChecker(target_spec)
    key = report.dedup_key
    started = checker.executions
    if checker.crash_key(report.packet) != key:
        return MinimizationResult(
            original=report.packet, minimized=report.packet,
            dedup_key=key, confirmed=False,
            executions=checker.executions - started)

    def reproduces(candidate: bytes) -> bool:
        return checker.crash_key(candidate) == key

    pit = target_spec.make_pit()
    budget = [max_executions]
    best = report.packet
    while budget[0] > 0:
        shrunk = shrink_fields(pit, best, reproduces, budget)
        shrunk = ddmin_bytes(shrunk, reproduces, budget)
        if len(shrunk) >= len(best):
            break
        best = shrunk
    final = checker.run(best, report.model_name)
    return MinimizationResult(
        original=report.packet, minimized=best, dedup_key=key,
        confirmed=True, executions=checker.executions - started,
        report=final.crash)
