"""libiec61850-analog codec: TPKT/COTP framing and MMS-lite PDUs.

The MMS subset covered is what libiec61850's server actually demultiplexes
on its hot path: initiate, conclude, and confirmed-request with the
read / write / getNameList / getVariableAccessAttributes / identify /
status services.  Object names follow the IEC 61850 mapping
(``domain`` = logical device, ``item`` = LN$FC$DO$DA path).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.protocols.common.ber import (
    encode_integer, encode_tlv, encode_visible_string,
)

TPKT_VERSION = 3
COTP_DT = 0xF0
COTP_EOT = 0x80

# MMS PDU tags
MMS_CONFIRMED_REQUEST = 0xA0
MMS_CONFIRMED_RESPONSE = 0xA1
MMS_CONFIRMED_ERROR = 0xA2
MMS_INITIATE_REQUEST = 0xA8
MMS_INITIATE_RESPONSE = 0xA9
MMS_CONCLUDE_REQUEST = 0x8B
MMS_CONCLUDE_RESPONSE = 0x8C
MMS_REJECT = 0xA4

# confirmed-service tags (request)
SVC_STATUS = 0x80
SVC_GET_NAME_LIST = 0xA1
SVC_IDENTIFY = 0x82
SVC_READ = 0xA4
SVC_WRITE = 0xA5
SVC_GET_VAR_ATTRIBUTES = 0xA6

# data tags (MMS Data CHOICE)
DATA_STRUCTURE = 0xA2
DATA_BOOLEAN = 0x83
DATA_BIT_STRING = 0x84
DATA_INTEGER = 0x85
DATA_UNSIGNED = 0x86
DATA_FLOAT = 0x87
DATA_OCTET_STRING = 0x89
DATA_VISIBLE_STRING = 0x8A
DATA_UTC_TIME = 0x91


def build_tpkt_cotp(payload: bytes) -> bytes:
    """Wrap an MMS payload in COTP DT + TPKT."""
    cotp = bytes((2, COTP_DT, COTP_EOT))
    total = 4 + len(cotp) + len(payload)
    return bytes((TPKT_VERSION, 0)) + total.to_bytes(2, "big") + cotp + payload


def strip_tpkt_cotp(frame: bytes) -> bytes:
    """Remove TPKT/COTP framing; raises ValueError on malformed frames."""
    if len(frame) < 7:
        raise ValueError("frame shorter than TPKT+COTP")
    if frame[0] != TPKT_VERSION:
        raise ValueError("bad TPKT version")
    total = int.from_bytes(frame[2:4], "big")
    if total != len(frame):
        raise ValueError("TPKT length mismatch")
    cotp_len = frame[4]
    if cotp_len < 2 or 5 + cotp_len > len(frame):
        raise ValueError("bad COTP length")
    if frame[5] != COTP_DT:
        raise ValueError("not a COTP DT PDU")
    return frame[5 + cotp_len:]


def object_name(domain: str, item: str) -> bytes:
    """Domain-specific ObjectName: [1] { domainId, itemId }."""
    inner = encode_visible_string(domain) + encode_visible_string(item)
    return encode_tlv(0xA1, inner)


def variable_spec(domain: str, item: str) -> bytes:
    """One ListOfVariables entry: variableSpecification > name."""
    return encode_tlv(0x30, encode_tlv(0xA0, object_name(domain, item)))


def build_read_request(invoke_id: int, variables: List[Tuple[str, str]],
                       ) -> bytes:
    """Confirmed-request read with a listOfVariables access spec."""
    var_list = b"".join(variable_spec(d, i) for d, i in variables)
    spec = encode_tlv(0xA1, var_list)  # variableAccessSpecification
    service = encode_tlv(SVC_READ, spec)
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_write_request(invoke_id: int, domain: str, item: str,
                        data: bytes) -> bytes:
    """Confirmed-request write of one variable with BER-encoded *data*."""
    spec = encode_tlv(0xA1, variable_spec(domain, item))
    payload = spec + encode_tlv(0xA0, data)  # listOfData
    service = encode_tlv(SVC_WRITE, payload)
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_get_name_list(invoke_id: int, object_class: int,
                        domain: Optional[str]) -> bytes:
    """Confirmed-request getNameList (vmd scope when *domain* is None)."""
    class_tlv = encode_tlv(0xA0, encode_tlv(0x80, bytes((object_class,))))
    if domain is None:
        scope = encode_tlv(0xA1, encode_tlv(0x80, b""))
    else:
        scope = encode_tlv(0xA1, encode_visible_string(domain, tag=0x81))
    service = encode_tlv(SVC_GET_NAME_LIST, class_tlv + scope)
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_identify_request(invoke_id: int) -> bytes:
    service = encode_tlv(SVC_IDENTIFY, b"")
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_initiate_request(max_pdu: int = 65000) -> bytes:
    body = encode_integer(max_pdu, tag=0x80)
    return build_tpkt_cotp(encode_tlv(MMS_INITIATE_REQUEST, body))


def build_conclude_request() -> bytes:
    return build_tpkt_cotp(encode_tlv(MMS_CONCLUDE_REQUEST, b""))
