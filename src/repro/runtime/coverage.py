"""AFL-style edge-coverage bitmap (the paper's instrumentation model).

Paper §IV-B inserts, at every branch point::

    cur_location = <COMPILE_TIME_RANDOM>;
    shared_mem[cur_location ^ prev_location]++;
    prev_location = cur_location >> 1;

:class:`CoverageMap` is the per-execution ``shared_mem`` array;
:class:`GlobalCoverage` is the accumulated "virgin map" that decides
whether a seed reached "a new program execution state that has not
appeared before" — i.e. whether it is *valuable*.  Hit counts are bucketed
into power-of-two classes like AFL so loop-count changes register as new
states without exploding the path count.

Performance model: a typical execution touches a few hundred of the
65,536 edges, so every per-execution operation (``merge``,
``edge_count``, ``path_hash``, reset) runs off a *journal* of touched
indices — O(touched) instead of O(MAP_SIZE).  This is AFL's
sparse-virgin-map trick adapted to CPython: the dense array stays (so
index arithmetic is one bytearray access), but nothing ever scans it.
All mutation must go through :meth:`CoverageMap.visit`; writing
``counts`` directly desynchronizes the journal.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

MAP_SIZE_POW2 = 16
MAP_SIZE = 1 << MAP_SIZE_POW2
_MAP_MASK = MAP_SIZE - 1

#: journals longer than this zero faster via the template slice-assign
_SPARSE_RESET_LIMIT = MAP_SIZE // 16

def bucket_count(count: int) -> int:
    """Map a raw edge hit count onto its AFL bucket bit.

    AFL's count_class_lookup: 1→1, 2→2, 3→4, 4-7→8, 8-15→16, 16-31→32,
    32-127→64, 128+→128.
    """
    if count <= 0:
        return 0
    if count == 1:
        return 1
    if count == 2:
        return 2
    if count == 3:
        return 4
    if count <= 7:
        return 8
    if count <= 15:
        return 16
    if count <= 31:
        return 32
    if count <= 127:
        return 64
    return 128


#: AFL's count_class_lookup as a flat table: one C-level index replaces
#: the eight-way Python branch chain on every merged edge.
BUCKET_LUT = bytes(bucket_count(count) for count in range(256))

_ZERO_TEMPLATE = bytes(MAP_SIZE)


class CoverageMap:
    """Per-execution edge hit map (``shared_mem`` analog)."""

    __slots__ = ("counts", "journal", "_prev")

    def __init__(self):
        self.counts = bytearray(MAP_SIZE)
        #: indices touched this execution, in first-touch order (no dups)
        self.journal: List[int] = []
        self._prev = 0

    def reset(self) -> None:
        """Clear the map for the next execution (full-map slice assign)."""
        self.counts[:] = _ZERO_TEMPLATE
        self.journal.clear()
        self._prev = 0

    def fast_reset(self) -> None:
        """Clear only what the journal says was touched.

        Falls back to the template slice-assign when the journal is large
        enough that per-index stores would cost more than the memcpy.
        """
        journal = self.journal
        if len(journal) > _SPARSE_RESET_LIMIT:
            self.counts[:] = _ZERO_TEMPLATE
        else:
            counts = self.counts
            for index in journal:
                counts[index] = 0
        journal.clear()
        self._prev = 0

    def visit(self, cur_location: int) -> None:
        """Record the transition into basic block *cur_location*.

        Implements the paper's snippet: bump ``shared_mem[cur ^ prev]``
        then shift ``prev``.
        """
        index = (cur_location ^ self._prev) & _MAP_MASK
        counts = self.counts
        count = counts[index]
        if count == 0:
            counts[index] = 1
            self.journal.append(index)
        elif count < 255:
            counts[index] = count + 1
        self._prev = (cur_location >> 1) & _MAP_MASK

    def absorb(self, other: "CoverageMap") -> None:
        """Fold another execution map's counts into this one.

        The session executor accumulates per-step maps into one
        trace-level map this way: the result is what a single execution
        running all steps back-to-back would have produced (edge counts
        sum, saturating at 255), so ``edge_count``/``path_hash``/
        ``iter_hits`` describe the whole trace.  O(touched in *other*).
        """
        counts = self.counts
        journal = self.journal
        other_counts = other.counts
        for index in other.journal:
            current = counts[index]
            if current == 0:
                journal.append(index)
            counts[index] = min(255, current + other_counts[index])

    def iter_hits(self) -> Iterable[Tuple[int, int]]:
        """Yield ``(edge_index, raw_count)`` for every touched edge.

        Ascending index order, matching a dense left-to-right map scan.
        """
        counts = self.counts
        for index in sorted(self.journal):
            yield index, counts[index]

    def edge_count(self) -> int:
        """Number of distinct edges touched this execution."""
        return len(self.journal)

    def path_hash(self) -> int:
        """Order-insensitive hash of the bucketed map (path identity)."""
        acc = 0xCBF29CE484222325
        counts = self.counts
        lut = BUCKET_LUT
        for index in sorted(self.journal):
            acc ^= (index << 8) | lut[counts[index]]
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc


class GlobalCoverage:
    """Accumulated bucketed coverage across the whole campaign."""

    __slots__ = ("virgin", "edges_seen")

    def __init__(self):
        self.virgin = bytearray(MAP_SIZE)
        self.edges_seen = 0

    def merge(self, execution_map: CoverageMap) -> bool:
        """Fold *execution_map* in; return True when new state was reached.

        New state = a never-seen edge, or a never-seen hit-count bucket on
        a known edge — AFL's ``has_new_bits``.  Walks the journal (each
        index is independent, so touch order does not affect the result).
        """
        new_bits = False
        new_edges = 0
        virgin = self.virgin
        counts = execution_map.counts
        lut = BUCKET_LUT
        for index in execution_map.journal:
            seen = virgin[index]
            bit = lut[counts[index]]
            if seen & bit == 0:
                if seen == 0:
                    new_edges += 1
                virgin[index] = seen | bit
                new_bits = True
        self.edges_seen += new_edges
        return new_bits

    def merge_bucketed(self, pairs: Iterable[Tuple[int, int]]) -> bool:
        """Fold already-bucketed ``(edge_index, bucket_bits)`` pairs in.

        The corpus-exchange path of the fleet subsystem: imported seeds
        travel as the bucketed sparse maps persisted in a sibling shard's
        coverage journal, so the import merges bucket bits directly
        instead of re-bucketing raw counts.  Returns True when the pairs
        reached new state (same contract as :meth:`merge`).
        """
        new_bits = False
        new_edges = 0
        virgin = self.virgin
        for index, bucket in pairs:
            seen = virgin[index]
            if seen & bucket != bucket:
                if seen == 0:
                    new_edges += 1
                virgin[index] = seen | bucket
                new_bits = True
        self.edges_seen += new_edges
        return new_bits

    def would_be_new(self, execution_map: CoverageMap) -> bool:
        """Non-mutating variant of :meth:`merge`."""
        virgin = self.virgin
        counts = execution_map.counts
        lut = BUCKET_LUT
        for index in execution_map.journal:
            if virgin[index] & lut[counts[index]] == 0:
                return True
        return False

    def edge_coverage(self) -> int:
        """Total distinct edges observed so far."""
        return self.edges_seen
