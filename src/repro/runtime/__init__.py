"""Instrumented-target runtime: coverage maps, collectors, clock, harness."""

from repro.runtime.clock import CostModel, SimulatedClock
from repro.runtime.coverage import (
    BUCKET_LUT, MAP_SIZE, CoverageMap, GlobalCoverage, bucket_count,
)
from repro.runtime.instrument import (
    CRASH_CONTEXT_DEPTH, Collector, ExplicitCollector, HangBudgetExceeded,
    MonitoringCollector, TracingCollector, capture_crash_context,
    make_line_collector, monitoring_available, resolve_backend,
)
from repro.runtime.target import ExecResult, ProtocolServer, Target

__all__ = [
    "BUCKET_LUT", "CRASH_CONTEXT_DEPTH", "Collector", "CostModel",
    "CoverageMap", "ExecResult", "ExplicitCollector", "GlobalCoverage",
    "HangBudgetExceeded", "MAP_SIZE", "MonitoringCollector",
    "ProtocolServer", "SimulatedClock", "Target", "TracingCollector",
    "bucket_count", "capture_crash_context", "make_line_collector",
    "monitoring_available", "resolve_backend",
]
