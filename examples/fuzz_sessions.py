#!/usr/bin/env python3
"""Stateful session fuzzing: multi-packet traces as the unit of work.

Single-packet fuzzing resets the server before every execution, so the
deep state ICS servers actually carry — the IEC 104 STARTDT/STOPDT gate,
DNP3 select-before-operate, Modbus diagnostic modes — is unreachable by
construction.  Session mode random-walks a per-protocol *state model*,
runs whole traces against one live server (reset only at trace
boundaries), mutates one step at a time while replaying the honest
prefix (response-derived bindings echo the server's live sequence
numbers back into the trace), and attributes each crash to the step
that raised it.

This walkthrough, on IEC 104 (the paper's most state-gated server):

1. proves, with a two-packet directed experiment, that a live session
   reaches coverage no single packet ever can;
2. runs a session campaign next to a single-packet campaign under the
   same simulated budget and compares path discovery;
3. shows a trace from the session corpus, step by step.

Run:  python examples/fuzz_sessions.py [hours] [workspace-dir]

The workspace (default: a temp directory) is a normal campaign
workspace — trace corpus entries included — so the usual tooling works:

    peachstar resume <workspace>
    peachstar triage --workspace <workspace> --verbose
"""

import os
import sys
import tempfile

from repro import CampaignConfig, get_target, run_campaign
from repro.protocols import PROTOCOLS_PATH_PREFIX
from repro.runtime.instrument import make_line_collector
from repro.runtime.target import Target
from repro.state import decode_trace
from repro.store import CampaignWorkspace

TARGET = "iec104"


def prove_session_only_coverage(spec) -> int:
    """STOPDT + I-frame in one session vs the same packets separately."""
    pit = spec.make_pit()
    stopdt = pit.model("iec104.stopdt").build_bytes()
    interrogation = pit.model("iec104.interrogation").build_bytes()
    collector = make_line_collector((PROTOCOLS_PATH_PREFIX,))
    target = Target(spec.make_server, collector)
    single = set()
    for packet in (stopdt, interrogation):
        single |= set(target.run(packet).coverage.journal)
    trace = target.run_trace([(stopdt, None), (interrogation, None)])
    session_only = set(trace.coverage.journal) - single
    print(f"  single-packet union: {len(single)} edges")
    print(f"  2-step session:      {len(trace.coverage.journal)} edges, "
          f"{len(session_only)} unreachable without the session")
    return len(session_only)


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 24.0
    workspace = sys.argv[2] if len(sys.argv) > 2 else \
        os.path.join(tempfile.mkdtemp(prefix="peachstar-sessions-"), "ws")
    spec = get_target(TARGET)

    print("=" * 68)
    print(f"1. why sessions: state no single packet can reach ({TARGET})")
    print("=" * 68)
    assert prove_session_only_coverage(spec) > 0

    print()
    print("=" * 68)
    print(f"2. session vs single-packet campaign, {hours:.0f} simulated "
          "hours each")
    print("=" * 68)
    session_config = CampaignConfig(budget_hours=hours, sessions=True,
                                    workspace=workspace)
    session = run_campaign("peach-star", spec, seed=1,
                           config=session_config)
    single = run_campaign("peach-star", spec, seed=1,
                          config=CampaignConfig(budget_hours=hours))
    print(f"  session mode:  {session.final_paths:4d} paths "
          f"{session.final_edges:4d} edges "
          f"({session.stats['traces']} traces, "
          f"{session.executions} steps)")
    print(f"  single-packet: {single.final_paths:4d} paths "
          f"{single.final_edges:4d} edges "
          f"({single.executions} packets)")

    print()
    print("=" * 68)
    print("3. the trace corpus (one entry, decoded)")
    print("=" * 68)
    packets = CampaignWorkspace(workspace).corpus_packets()
    longest = max(packets, key=lambda blob: len(decode_trace(blob)))
    for index, step in enumerate(decode_trace(longest)):
        bound = f"  bindings={step.bind}" if step.bind else ""
        print(f"  step {index}: {step.model_name:<28} "
              f"{len(step.packet):3d} bytes  -> {step.state}{bound}")
    print()
    print(f"workspace persisted to {workspace}")
    print("continue with `peachstar resume`, inspect crashes with "
          "`peachstar triage --workspace`")


if __name__ == "__main__":
    main()
