"""Channel faults + differential parse oracles (PR 8).

Three layers of guarantees:

* **unit** — each transport fault does exactly what its name says, the
  faulting channel is a pure function of (RNG state, frame sizes), and
  ``snapshot``/``restore`` round-trips mid-stream;
* **oracle** — legal frames never diverge, truncation-repaired frames
  are strict-vs-lenient findings, APCI length disagreement is a
  cross-stack finding, and divergence reports duck-type through the
  crash database and the triage pipeline (bucket → minimize →
  reproducer);
* **acceptance** (the ISSUE gates) — a seeded ``channel_faults``
  IEC 104 session campaign reaches edges a no-fault same-budget
  campaign cannot, and at least one strict-vs-lenient divergence is
  found, persisted, resumed bit-identically, and minimized by triage.
"""

import json
import os
import random

import pytest

from repro.channel import (
    FAULT_KINDS, Channel, DirectChannel, DivergenceChecker, FaultingChannel,
    make_oracle, minimize_divergence,
)
from repro.channel.oracle import KIND_CROSS_STACK, KIND_PARSE
from repro.core import (
    CampaignConfig, make_engine, resume_campaign, run_campaign,
)
from repro.protocols import get_target
from repro.runtime.target import Target
from repro.sanitizer.report import CrashDatabase
from repro.store.workspace import CampaignWorkspace
from repro.triage import triage_reports


class ScriptedRng:
    """An RNG whose rolls are scripted, for fault-exact unit tests.

    ``rolls`` feeds ``random()`` (the per-frame fault gate), ``ints``
    feeds ``randrange``/``randint`` (fault selection and parameters).
    """

    def __init__(self, rolls, ints=()):
        self.rolls = list(rolls)
        self.ints = list(ints)

    def random(self):
        return self.rolls.pop(0)

    def randrange(self, n):
        return self.ints.pop(0) % n

    def randint(self, low, high):
        return low + self.ints.pop(0) % (high - low + 1)


def _fault_index(kind):
    return FAULT_KINDS.index(kind)


WIRE = bytes(range(8))


class TestFaultingChannelUnits:
    def test_rate_validation(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                FaultingChannel(bad, random.Random(0))

    def test_zero_rate_is_passthrough(self):
        channel = FaultingChannel(0.0, random.Random(1))
        for index in range(16):
            assert channel.transmit(index, WIRE) == [WIRE]
        assert channel.flush() == []
        assert channel.faults_injected == 0

    def test_drop_delivers_nothing(self):
        rng = ScriptedRng([0.0], [_fault_index("drop")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, WIRE) == []
        assert channel.fault_counts["drop"] == 1

    def test_duplicate_delivers_twice(self):
        rng = ScriptedRng([0.0], [_fault_index("duplicate")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, WIRE) == [WIRE, WIRE]

    def test_reorder_is_an_adjacent_swap(self):
        first, second = b"first", b"second"
        rng = ScriptedRng([0.0, 1.0], [_fault_index("reorder")])
        channel = FaultingChannel(0.5, rng)
        assert channel.transmit(0, first) == []
        # the held frame lands right after its successor's frames
        assert channel.transmit(1, second) == [second, first]
        assert channel.flush() == []

    def test_reorder_held_at_trace_end_is_flushed(self):
        rng = ScriptedRng([0.0], [_fault_index("reorder")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, WIRE) == []
        assert channel.flush() == [WIRE]
        assert channel.flush() == []

    def test_second_reorder_degrades_to_passthrough(self):
        rng = ScriptedRng([0.0, 0.0],
                          [_fault_index("reorder"), _fault_index("reorder")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, b"held") == []
        # only one frame fits in flight; the degrade is not counted
        assert channel.transmit(1, WIRE) == [WIRE]
        assert channel.faults_injected == 1
        assert channel.flush() == [b"held"]

    def test_fragment_splits_without_losing_bytes(self):
        cut = 3
        rng = ScriptedRng([0.0], [_fault_index("fragment"), cut - 1])
        channel = FaultingChannel(1.0, rng)
        frames = channel.transmit(0, WIRE)
        assert frames == [WIRE[:cut], WIRE[cut:]]
        assert all(frames)

    def test_fragment_of_a_single_byte_degrades(self):
        rng = ScriptedRng([0.0], [_fault_index("fragment")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, b"x") == [b"x"]
        assert channel.faults_injected == 0

    def test_corrupt_flips_exactly_one_bit(self):
        rng = ScriptedRng([0.0], [_fault_index("corrupt"), 2, 5])
        channel = FaultingChannel(1.0, rng)
        [frame] = channel.transmit(0, WIRE)
        assert len(frame) == len(WIRE)
        diff = [a ^ b for a, b in zip(frame, WIRE) if a != b]
        assert len(diff) == 1 and diff[0].bit_count() == 1

    def test_corrupt_of_empty_frame_degrades(self):
        rng = ScriptedRng([0.0], [_fault_index("corrupt")])
        channel = FaultingChannel(1.0, rng)
        assert channel.transmit(0, b"") == [b""]
        assert channel.faults_injected == 0

    def test_reset_clears_held_but_not_the_rng(self):
        channel = FaultingChannel(1.0, random.Random(3))
        channel._held = b"stale"
        state = channel.rng.getstate()
        channel.reset()
        assert channel._held is None
        assert channel.rng.getstate() == state


def _pump(channel, frames):
    """Deliver *frames* through *channel*, flushing at the end."""
    delivered = []
    for index, wire in enumerate(frames):
        delivered.append(tuple(channel.transmit(index, wire)))
    delivered.append(tuple(channel.flush()))
    return delivered


class TestFaultingChannelDeterminism:
    FRAMES = [bytes([seed] * (3 + seed % 9)) for seed in range(64)]

    def test_same_seed_same_stream(self):
        first = FaultingChannel(0.4, random.Random(77))
        second = FaultingChannel(0.4, random.Random(77))
        assert _pump(first, self.FRAMES) == _pump(second, self.FRAMES)
        assert first.faults_injected == second.faults_injected > 0
        assert first.fault_counts == second.fault_counts
        assert sum(first.fault_counts.values()) == first.faults_injected

    def test_different_seed_diverges(self):
        first = FaultingChannel(0.4, random.Random(77))
        second = FaultingChannel(0.4, random.Random(78))
        assert _pump(first, self.FRAMES) != _pump(second, self.FRAMES)

    def test_snapshot_restore_roundtrips_midstream(self):
        reference = FaultingChannel(0.4, random.Random(9))
        _pump(reference, self.FRAMES[:32])
        # the snapshot must survive the workspace's JSON checkpoint
        blob = json.loads(json.dumps(reference.snapshot()))
        tail_expected = _pump(reference, self.FRAMES[32:])

        rewound = FaultingChannel(0.9, random.Random(0))
        rewound.restore(blob)
        assert rewound.rate == 0.4
        assert rewound.faults_injected == blob["faults_injected"]
        assert _pump(rewound, self.FRAMES[32:]) == tail_expected


class TestDirectChannel:
    def test_passthrough_and_stateless_snapshot(self):
        channel = DirectChannel()
        assert channel.transmit(0, WIRE) == [WIRE]
        assert channel.flush() == []
        assert channel.snapshot() is None
        assert isinstance(channel, Channel)

    def test_target_run_matches_channel_less_path(self):
        spec = get_target("iec104")
        packet = spec.make_pit().model("iec104.startdt").to_wire(
            spec.make_pit().model("iec104.startdt").build_default())
        plain = Target(spec.make_server, None).run(packet)
        piped = Target(spec.make_server, None,
                       channel=DirectChannel()).run(packet)
        assert piped.delivered == [packet]
        assert plain.delivered is None
        assert (plain.response, plain.crashed, plain.hang) == \
            (piped.response, piped.crashed, piped.hang)


# -- differential oracles ----------------------------------------------------

_IEC104 = get_target("iec104")
_PIT = _IEC104.make_pit()


def _default_wire(model_name):
    model = _PIT.model(model_name)
    return model.to_wire(model.build_default())


class TestDifferentialOracle:
    def test_legal_frames_never_diverge(self):
        oracle = make_oracle(_IEC104, _PIT)
        for model in _PIT:
            wire = _default_wire(model.name)
            assert oracle.examine(wire, model.name, 0) == []

    def test_truncation_repair_is_a_parse_divergence(self):
        oracle = make_oracle(_IEC104, _PIT)
        wire = _default_wire("iec104.startdt")
        findings = []
        for cut in range(1, len(wire)):
            findings.extend(oracle.examine(wire[:cut], "iec104.startdt", 0))
        parse = [f for f in findings if f.kind == KIND_PARSE]
        assert parse, "no truncation produced a strict-vs-lenient finding"
        for report in parse:
            assert report.oracle == "strict-lenient"
            assert report.site.startswith("iec104.startdt:")
            # the reason slug is a stable identity: no per-packet
            # specifics (values in parens, raw offsets/lengths)
            reason = report.site.split(":", 1)[1]
            assert "(" not in reason
            assert not any(ch.isdigit() for ch in reason)

    def test_examine_is_deterministic(self):
        oracle = make_oracle(_IEC104, _PIT)
        frame = _default_wire("iec104.testfr")[:4]
        first = [f.dedup_key for f in oracle.examine(frame,
                                                     "iec104.testfr", 0)]
        again = [f.dedup_key for f in oracle.examine(frame,
                                                     "iec104.testfr", 9)]
        fresh = [f.dedup_key for f in
                 make_oracle(_IEC104, _PIT).examine(frame,
                                                    "iec104.testfr", 0)]
        assert first == again == fresh

    def test_bad_length_octet_is_a_cross_stack_divergence(self):
        # ctrl1 says STARTDT-act (a U-frame to the iec104 classifier,
        # which ignores the length octet) but the length field claims 9
        # bytes of APDU where 4 follow — lib60870 calls it invalid
        frame = bytes((0x68, 9, 0x07, 0x00, 0x00, 0x00))
        oracle = make_oracle(_IEC104, _PIT)
        findings = [f for f in oracle.examine(frame, None, 0)
                    if f.kind == KIND_CROSS_STACK]
        assert len(findings) == 1
        report = findings[0]
        assert report.oracle == "cross-stack"
        assert report.site == "apci:iec104=U!=lib60870=invalid"

    def test_cross_stack_agrees_on_legal_frames(self):
        from repro.protocols.iec104 import codec as iec104_codec
        from repro.protocols.lib60870 import codec as lib60870_codec
        for model in _PIT:
            wire = _default_wire(model.name)
            assert iec104_codec.frame_kind(wire) == \
                lib60870_codec.frame_kind(wire)

    def test_non_iec104_targets_get_no_cross_stack_pair(self):
        assert make_oracle(get_target("libmodbus")).cross_stack is None
        assert make_oracle(get_target("lib60870")).cross_stack is not None


class TestDivergenceReportSurface:
    def _one_report(self):
        oracle = make_oracle(_IEC104, _PIT)
        wire = _default_wire("iec104.startdt")
        for cut in range(len(wire) - 1, 0, -1):
            findings = oracle.examine(wire[:cut], "iec104.startdt", 7)
            if findings:
                return findings[0]
        pytest.fail("no diverging truncation found")

    def test_duck_types_like_a_crash_report(self):
        report = self._one_report()
        assert report.dedup_key == (report.kind, report.site)
        assert report.summary_line().startswith(
            "SUMMARY: DifferentialOracle:")
        assert "DIVERGENCE" in report.render()
        assert not report.is_session

    def test_crash_database_deduplicates_divergences(self):
        report = self._one_report()
        database = CrashDatabase()
        assert database.add(report) is True
        assert database.add(report) is False
        assert database.unique_count() == 1
        assert database.total_crashes == 2

    def test_reproducer_script_replays_the_oracle(self, tmp_path):
        from repro.triage.reproducer import reproducer_script
        report = self._one_report()
        script = reproducer_script("iec104", report)
        assert "make_oracle" in script
        path = tmp_path / "replay_divergence.py"
        path.write_text(script)
        import subprocess
        import sys
        env = dict(os.environ)
        proc = subprocess.run([sys.executable, str(path)], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestMinimizeDivergence:
    def test_minimization_preserves_the_dedup_key(self):
        oracle = make_oracle(_IEC104, _PIT)
        wire = _default_wire("iec104.interrogation")
        report = None
        for cut in range(len(wire) - 1, 0, -1):
            findings = [f for f in
                        oracle.examine(wire[:cut], "iec104.interrogation", 0)
                        if f.kind == KIND_PARSE]
            if findings:
                report = findings[0]
                break
        assert report is not None
        result = minimize_divergence(_IEC104, report)
        assert result.confirmed
        assert len(result.minimized) <= len(result.original)
        checker = DivergenceChecker(_IEC104)
        assert report.dedup_key in checker.divergence_keys(
            result.minimized, report.model_name)
        assert result.report is not None
        assert result.report.dedup_key == report.dedup_key

    def test_non_diverging_frame_is_unconfirmed(self):
        from repro.channel import DivergenceReport
        report = DivergenceReport(
            kind=KIND_PARSE, site="iec104.startdt:bogus",
            detail="", packet=_default_wire("iec104.startdt"),
            model_name="iec104.startdt", execution_index=0)
        result = minimize_divergence(_IEC104, report)
        assert not result.confirmed
        assert result.minimized == report.packet


# -- acceptance: the ISSUE gates ---------------------------------------------

def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=400, record_every=10,
                checkpoint_every=50, sessions=True)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series, result.final_paths, result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        sorted(report.dedup_key for report in result.unique_divergences),
        result.crash_times, result.stats, result.path_hashes,
    )


def _edges(engine):
    return {index for index, seen in
            enumerate(engine.seed_pool.coverage.virgin) if seen}


class TestFaultedCampaignAcceptance:
    def test_faults_reach_edges_a_clean_campaign_cannot(self):
        clean_engine = make_engine("peach-star", _IEC104, 7, _config())
        clean = run_campaign("peach-star", _IEC104, seed=7,
                             config=_config(), engine=clean_engine)
        faulted_config = _config(channel_faults=0.25)
        faulted_engine = make_engine("peach-star", _IEC104, 7,
                                     faulted_config)
        faulted = run_campaign("peach-star", _IEC104, seed=7,
                               config=faulted_config,
                               engine=faulted_engine)
        assert faulted.stats["channel_faults"] > 0
        assert clean.stats["channel_faults"] == 0
        only_with_faults = _edges(faulted_engine) - _edges(clean_engine)
        assert only_with_faults, (
            "a faulted same-budget campaign reached no edge the clean "
            "one missed")

    def test_divergences_found_persisted_and_resumed_bit_identically(
            self, tmp_path):
        config = _config(channel_faults=0.25,
                         workspace=str(tmp_path / "full"))
        full = run_campaign("peach-star", _IEC104, seed=11, config=config)
        strict_lenient = [report for report in full.unique_divergences
                          if report.oracle == "strict-lenient"]
        assert strict_lenient, "no strict-vs-lenient divergence found"
        assert full.stats["divergences_total"] >= len(full.unique_divergences)

        # persisted: the workspace carries every unique finding
        stored = CampaignWorkspace(str(tmp_path / "full")) \
            .load_divergence_reports()
        assert sorted(r.dedup_key for r in stored) == \
            sorted(r.dedup_key for r in full.unique_divergences)
        assert all(getattr(r, "oracle", None) is not None for r in stored)

        # kill mid-run (not on a checkpoint multiple), then resume:
        # the finished campaign must be bit-identical
        killed_dir = str(tmp_path / "killed")
        killed = run_campaign(
            "peach-star", _IEC104, seed=11,
            config=_config(channel_faults=0.25, workspace=killed_dir),
            stop_after_executions=173)
        assert killed is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)
        assert sorted(r.packet for r in resumed.unique_divergences) == \
            sorted(r.packet for r in full.unique_divergences)

        # triaged: bucketed, minimized through the oracle, reproducer
        # exported next to the crashes'
        out_dir = tmp_path / "triage"
        triage = triage_reports(_IEC104, full.unique_divergences,
                                out_dir=str(out_dir), jobs=1)
        assert triage.crashes
        assert all(crash.minimization is not None
                   and crash.minimization.confirmed
                   for crash in triage.crashes)
        exported = list(out_dir.glob("*.py"))
        assert exported, "no divergence reproducer was exported"
