"""Unit tests for size-of / count-of relations."""

import pytest

from repro.model import (
    Blob, Block, CountOf, ModelError, Number, ParseError, Repeat, SizeOf,
    Str, attach_relation, count_of, size_of,
)
from repro.model.datamodel import DataModel


def _sized_model(adjust=0):
    return DataModel("m", Block("root", [
        size_of(Number("size", 2), "payload", adjust=adjust),
        Blob("payload", default=b"\xAA\xBB\xCC"),
    ]))


class TestSizeOf:
    def test_build_computes_target_length(self):
        tree = _sized_model().build_default()
        assert tree.find("size").value == 3

    def test_adjust_added_on_build(self):
        tree = _sized_model(adjust=2).build_default()
        assert tree.find("size").value == 5

    def test_parse_uses_size_for_variable_target(self):
        model = DataModel("m", Block("root", [
            size_of(Number("size", 1), "payload"),
            Blob("payload", default=b"\x01"),
            Number("tail", 1, default=0xEE),
        ]))
        raw = bytes((2, 0x41, 0x42, 0xEE))
        tree = model.parse(raw)
        assert tree.find("payload").value == b"\x41\x42"
        assert tree.find("tail").value == 0xEE

    def test_parse_rejects_announced_size_beyond_data(self):
        model = _sized_model()
        with pytest.raises(ParseError):
            model.parse(bytes((0x00, 200, 0x01)))

    def test_size_of_block_target(self):
        model = DataModel("m", Block("root", [
            size_of(Number("length", 1), "body"),
            Block("body", [Number("a", 2, default=1),
                           Blob("rest", default=b"xy")]),
        ]))
        tree = model.build_default()
        assert tree.find("length").value == 4

    def test_compute_and_invert_are_consistent(self):
        relation = SizeOf("x", adjust=3)
        assert relation.target_extent(relation.compute(b"12345", None)) == 5


class TestCountOf:
    def test_build_counts_repeat_elements(self):
        model = DataModel("m", Block("root", [
            count_of(Number("count", 1), "items"),
            Repeat("items", Number("item", 2, default=7), min_count=0,
                   max_count=10),
        ]))
        tree = model.build_default()
        assert tree.find("count").value == 1

    def test_parse_reads_exactly_count_elements(self):
        model = DataModel("m", Block("root", [
            count_of(Number("count", 1), "items"),
            Repeat("items", Number("item", 1, default=0), min_count=0,
                   max_count=10),
            Number("tail", 1, default=0xEE),
        ]))
        raw = bytes((2, 0x0A, 0x0B, 0xEE))
        tree = model.parse(raw)
        items = tree.find("items")
        assert [child.value for child in items.children] == [0x0A, 0x0B]
        assert tree.find("tail").value == 0xEE

    def test_parse_rejects_count_out_of_bounds(self):
        model = DataModel("m", Block("root", [
            count_of(Number("count", 1), "items"),
            Repeat("items", Number("item", 1, default=0), min_count=0,
                   max_count=2),
        ]))
        with pytest.raises(ParseError):
            model.parse(bytes((3, 1, 2, 3)))

    def test_count_of_non_repeat_target_rejected_at_build(self):
        model = DataModel("m", Block("root", [
            count_of(Number("count", 1), "payload"),
            Blob("payload", default=b"ab"),
        ]))
        with pytest.raises(ModelError):
            model.build_default()


class TestAttachment:
    def test_relation_only_on_numbers(self):
        with pytest.raises(ModelError):
            attach_relation(Str("s"), SizeOf("x"))

    def test_relation_and_fixup_mutually_exclusive(self):
        from repro.model import Crc32Fixup, attach_fixup
        field = attach_fixup(Number("crc", 4), Crc32Fixup(["x"]))
        with pytest.raises(ModelError):
            attach_relation(field, SizeOf("x"))

    def test_empty_target_name_rejected(self):
        with pytest.raises(ModelError):
            SizeOf("")

    def test_missing_target_raises_at_build(self):
        model = DataModel("m", Block("root", [
            size_of(Number("size", 1), "nonexistent"),
            Blob("payload", default=b"x"),
        ]))
        with pytest.raises(ModelError):
            model.build_default()
