"""Unit tests for ASan-style crash reporting and deduplication."""

from repro.sanitizer import (
    CrashDatabase, CrashReport, SimSegv, report_from_fault,
)


class TestCrashReport:
    def test_summary_line_matches_asan_shape(self):
        """The paper's Listing 2 shows the ASan SUMMARY line format."""
        report = CrashReport("SEGV", "cs101_asdu.c:CS101_ASDU_getCOT",
                             "bad address", b"\x68\x05", "m")
        line = report.summary_line()
        assert line.startswith("SUMMARY: AddressSanitizer: SEGV")
        assert "CS101_ASDU_getCOT" in line

    def test_render_includes_hexdump_and_model(self):
        report = CrashReport("SEGV", "s", "d", bytes(range(20)), "iccp.read")
        text = report.render()
        assert "iccp.read" in text
        assert "00000000" in text  # hexdump offset column
        assert "20 bytes" in text

    def test_dedup_key_is_kind_and_site(self):
        a = CrashReport("SEGV", "site", "x", b"\x01")
        b = CrashReport("SEGV", "site", "y", b"\x02")
        assert a.dedup_key == b.dedup_key

    def test_report_from_fault(self):
        fault = SimSegv("modbus.c:fc23", "wild read")
        report = report_from_fault(fault, b"pkt", "m", 42)
        assert report.kind == "SEGV"
        assert report.site == "modbus.c:fc23"
        assert report.execution_index == 42


class TestCrashDatabase:
    def test_first_occurrence_is_new(self):
        db = CrashDatabase()
        assert db.add(CrashReport("SEGV", "a", "", b""))
        assert len(db) == 1

    def test_duplicates_not_counted_unique(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "", b"\x01"))
        assert not db.add(CrashReport("SEGV", "a", "other", b"\x02"))
        assert db.unique_count() == 1
        assert db.total_crashes == 2

    def test_distinct_sites_counted_separately(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "", b""))
        db.add(CrashReport("SEGV", "b", "", b""))
        db.add(CrashReport("heap-use-after-free", "a", "", b""))
        assert db.unique_count() == 3

    def test_count_by_kind_histogram(self):
        """The shape used to regenerate Table I's Number column."""
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "", b""))
        db.add(CrashReport("SEGV", "b", "", b""))
        db.add(CrashReport("heap-buffer-overflow", "c", "", b""))
        assert db.count_by_kind() == {"SEGV": 2, "heap-buffer-overflow": 1}

    def test_contains_by_key(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "", b""))
        assert ("SEGV", "a") in db
        assert ("SEGV", "z") not in db

    def test_first_report_kept_on_duplicate(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "first", b"\x01"))
        db.add(CrashReport("SEGV", "a", "second", b"\x02"))
        assert db.unique_reports()[0].detail == "first"


class TestCrashTimes:
    """Earliest-observation semantics of the first_seen ledger."""

    def test_first_seen_recorded_on_new_bug(self):
        db = CrashDatabase()
        assert db.add(CrashReport("SEGV", "a", "", b"\x01"), 5.0)
        assert db.first_seen[("SEGV", "a")] == 5.0

    def test_earlier_reobservation_rewinds_time(self):
        """Parallel shards merge in arbitrary order: a crash re-observed
        with an earlier simulated timestamp must keep the earliest."""
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "late", b"\x01",
                           execution_index=900), 5.0)
        assert not db.add(CrashReport("SEGV", "a", "early", b"\x02",
                                      execution_index=40), 2.0)
        assert db.first_seen[("SEGV", "a")] == 2.0
        # the representative report follows the earliest observation
        assert db.unique_reports()[0].detail == "early"

    def test_later_reobservation_keeps_original(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "early", b"\x01"), 1.5)
        db.add(CrashReport("SEGV", "a", "late", b"\x02"), 9.0)
        assert db.first_seen[("SEGV", "a")] == 1.5
        assert db.unique_reports()[0].detail == "early"

    def test_merge_is_order_independent(self):
        def shard(hours, detail, extra_dupes=0):
            db = CrashDatabase()
            db.add(CrashReport("SEGV", "a", detail, b"\x01"), hours)
            for _ in range(extra_dupes):
                db.add(CrashReport("SEGV", "a", detail, b"\x01"),
                       hours + 1.0)
            return db

        ab = shard(4.0, "slow", extra_dupes=2)
        ab.merge(shard(1.0, "fast"))
        ba = shard(1.0, "fast")
        ba.merge(shard(4.0, "slow", extra_dupes=2))
        assert ab.first_seen == ba.first_seen == {("SEGV", "a"): 1.0}
        assert ab.total_crashes == ba.total_crashes == 4
        assert ab.unique_reports()[0].detail == "fast"
        assert ba.unique_reports()[0].detail == "fast"

    def test_merge_counts_new_bugs(self):
        left = CrashDatabase()
        left.add(CrashReport("SEGV", "a", "", b""), 1.0)
        right = CrashDatabase()
        right.add(CrashReport("SEGV", "a", "", b""), 2.0)
        right.add(CrashReport("SEGV", "b", "", b""), 3.0)
        assert left.merge(right) == 1
        assert left.unique_count() == 2
        assert left.total_crashes == 3

    def test_timed_duplicate_cannot_displace_earlier_untimed_report(self):
        db = CrashDatabase()
        db.add(CrashReport("SEGV", "a", "first", b"\x01",
                           execution_index=40))
        assert not db.add(CrashReport("SEGV", "a", "later", b"\x02",
                                      execution_index=900), 5.0)
        assert db.first_seen[("SEGV", "a")] == 5.0
        assert db.unique_reports()[0].detail == "first"
