# One-word entry points for the tier-1 and presubmit commands.
#
#   make test   — tier-1: the full suite at the paper's 24h budgets
#   make smoke  — presubmit: same suite, campaigns compressed to 2
#                 simulated hours / 1 repetition (claim gates skipped)
#   make bench  — the evaluation benchmarks only (regenerates BENCH_*.json)

PY ?= python
PYTEST_ARGS ?= -x -q

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke bench

test:
	$(PY) -m pytest $(PYTEST_ARGS)

smoke:
	REPRO_BENCH_HOURS=2 REPRO_BENCH_REPS=1 $(PY) -m pytest $(PYTEST_ARGS)

bench:
	$(PY) -m pytest benchmarks $(PYTEST_ARGS)
