"""SocketTarget conformance matrix.

One row per protocol family and transport axis:

* **round-trip** — envelope loopback executions observe the same
  response/coverage/crash surface as the in-process ``Target``;
* **raw round-trip** — the protocol's own stream framing carries the
  same responses an in-process run produces;
* **timeout** — a black-hole endpoint (accepts, never answers) surfaces
  as silence in raw mode and as a poisoned-lane hang in envelope mode,
  with ``net_timeouts`` counting either way;
* **reconnect** — an endpoint that drops mid-session synthesizes a
  ``connection-dropped`` crash and the reconnect budget re-opens the
  lane, counted in ``net_reconnects``.

Everything binds port 0: the matrix never collides with a busy port.
"""

import asyncio

import pytest

from repro.net import (
    DROP_SITE, NetConfig, NetTargetError, SocketTarget,
    make_loopback_target, make_socket_target,
)
from repro.net.framing import (
    MSG_ACK, MSG_DATA, MSG_RESET, encode_envelope, read_envelope,
)
from repro.protocols import all_targets, get_target
from repro.runtime.instrument import TracingCollector
from repro.runtime.target import Target

TARGET_NAMES = [spec.name for spec in all_targets()]


def _collector():
    return TracingCollector(("repro/protocols",))


def default_wires(spec, limit=None):
    pit = spec.make_pit()
    models = pit.models()[:limit] if limit else pit.models()
    return [(model.name, model.to_wire(model.build_default()))
            for model in models]


def _surface(result):
    """The observable outcome of one execution, for parity comparison."""
    crash = None if result.crash is None else result.crash.dedup_key
    return (result.response, crash, result.hang, result.blocks_executed)


# -- scripted endpoints for the failure rows ----------------------------------

class _Endpoint:
    """A scripted asyncio endpoint on the SocketTarget's own loop."""

    def __init__(self, handler):
        self.loop = asyncio.new_event_loop()
        self.server = self.loop.run_until_complete(
            asyncio.start_server(handler, "127.0.0.1", 0))
        self.address = self.server.sockets[0].getsockname()[:2]

    def target(self, **kwargs):
        return SocketTarget(self.address, loop=self.loop,
                            server=self.server, **kwargs)


async def _black_hole(reader, writer):
    """Accept, swallow everything, never answer."""
    while await reader.read(4096):
        pass
    writer.close()


async def _slam_shut(reader, writer):
    """Accept and immediately hang up."""
    writer.close()


async def _ack_then_drop(reader, writer):
    """Speak the envelope just long enough to pass a session reset."""
    while True:
        message = await read_envelope(reader)
        if message is None:
            break
        kind, _ = message
        if kind == MSG_RESET:
            writer.write(encode_envelope(MSG_ACK))
            await writer.drain()
        elif kind == MSG_DATA:
            break  # drop mid-session, like a crashed server
    writer.close()


# -- round-trip rows ----------------------------------------------------------

class TestEnvelopeRoundTrip:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_loopback_matches_in_process(self, name):
        spec = get_target(name)
        socket_target = make_loopback_target(spec, collector=_collector(),
                                             net=NetConfig())
        local_target = Target(spec.make_server, _collector())
        try:
            for model_name, wire in default_wires(spec):
                over_socket = socket_target.run(wire, model_name)
                in_process = local_target.run(wire, model_name)
                assert _surface(over_socket) == _surface(in_process), \
                    f"{name}/{model_name} diverged over the socket"
        finally:
            socket_target.close()
        assert socket_target.take_net_counters() == (0, 0)

    def test_closed_target_refuses_to_run(self):
        spec = get_target("iec104")
        target = make_loopback_target(spec, net=NetConfig())
        target.close()
        with pytest.raises(NetTargetError):
            target.run(b"\x68\x04\x07\x00\x00\x00")
        target.close()  # idempotent


class TestRawRoundTrip:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_loopback_matches_in_process(self, name):
        spec = get_target(name)
        net = NetConfig(framing="raw", timeout_ms=150.0)
        socket_target = make_loopback_target(spec, net=net)
        local_target = Target(spec.make_server, None)
        try:
            for model_name, wire in default_wires(spec, limit=3):
                over_socket = socket_target.run(wire, model_name)
                expected = local_target.run(wire, model_name).response
                # raw framing carries response bytes verbatim; a silent
                # server is indistinguishable from a timeout outside
                assert over_socket.response == expected, \
                    f"{name}/{model_name} diverged over raw framing"
                assert over_socket.crash is None
        finally:
            socket_target.close()


# -- timeout rows -------------------------------------------------------------

class TestTimeoutRow:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_raw_silence_is_none_response(self, name):
        spec = get_target(name)
        endpoint = _Endpoint(_black_hole)
        target = endpoint.target(framing="raw", framer_name=spec.framing,
                                 timeout_ms=100.0, reconnect=0)
        try:
            result = target.run(b"\x00\x01\x02\x03")
            assert result.response is None
            assert result.crash is None and not result.hang
            assert target.net_timeouts == 1
        finally:
            target.close()

    def test_envelope_timeout_poisons_the_lane_as_a_hang(self):
        endpoint = _Endpoint(_black_hole)
        target = endpoint.target(framing="peachstar", timeout_ms=100.0,
                                 reconnect=0)
        try:
            # the black hole never ACKs the session reset
            with pytest.raises(NetTargetError):
                target.run(b"data")
        finally:
            target.close()

    def test_envelope_data_timeout_is_a_hang(self):
        async def ack_then_sleep(reader, writer):
            while True:
                message = await read_envelope(reader)
                if message is None:
                    break
                if message[0] == MSG_RESET:
                    writer.write(encode_envelope(MSG_ACK))
                    await writer.drain()
                # DATA: never answer — a remotely hung server
            writer.close()

        endpoint = _Endpoint(ack_then_sleep)
        target = endpoint.target(framing="peachstar", timeout_ms=100.0,
                                 reconnect=0)
        try:
            result = target.run(b"data")
            assert result.hang and result.crash is None
            assert target.net_timeouts == 1
        finally:
            target.close()


# -- reconnect rows -----------------------------------------------------------

class TestReconnectRow:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_raw_drop_synthesizes_a_crash_and_reconnects(self, name):
        spec = get_target(name)
        endpoint = _Endpoint(_slam_shut)
        target = endpoint.target(framing="raw", framer_name=spec.framing,
                                 timeout_ms=100.0, reconnect=2)
        try:
            first = target.run(b"\x00\x01\x02\x03")
            assert first.crash is not None
            assert first.crash.dedup_key == ("connection-dropped", DROP_SITE)
            second = target.run(b"\x00\x01\x02\x03")
            assert second.crash is not None
            # the second session re-opened a lane that had already been
            # connected once: that is a counted reconnect
            assert target.net_reconnects >= 1
        finally:
            target.close()

    def test_envelope_drop_mid_session_synthesizes_a_crash(self):
        endpoint = _Endpoint(_ack_then_drop)
        target = endpoint.target(framing="peachstar", timeout_ms=500.0,
                                 reconnect=2)
        try:
            result = target.run(b"data")
            assert result.crash is not None
            assert result.crash.dedup_key == ("connection-dropped", DROP_SITE)
            assert result.crash.packet == b"data"
        finally:
            target.close()

    def test_unreachable_endpoint_exhausts_the_budget(self):
        # bind a port, then close it: nothing listens there any more
        endpoint = _Endpoint(_black_hole)
        endpoint.server.close()
        endpoint.loop.run_until_complete(endpoint.server.wait_closed())
        target = SocketTarget(endpoint.address, loop=endpoint.loop,
                              framing="peachstar",
                              connect_timeout_ms=200.0, reconnect=1)
        try:
            with pytest.raises(NetTargetError):
                target.run(b"data")
        finally:
            target.close()


# -- trace delivery over lanes ------------------------------------------------

class TestTraceOverSocket:
    def test_run_trace_matches_in_process(self):
        spec = get_target("iec104")
        steps = [(wire, model_name)
                 for model_name, wire in default_wires(spec)]
        socket_target = make_loopback_target(spec, collector=_collector(),
                                             net=NetConfig())
        local_target = Target(spec.make_server, _collector())
        try:
            over_socket = socket_target.run_trace(steps)
            in_process = local_target.run_trace(steps)
            assert over_socket.responses == in_process.responses
            assert over_socket.steps_executed == in_process.steps_executed
            assert over_socket.hang == in_process.hang
            assert over_socket.blocks_executed == in_process.blocks_executed
        finally:
            socket_target.close()

    def test_concurrency_deals_steps_round_robin(self):
        spec = get_target("iec104")
        net = NetConfig(concurrency=3)
        target = make_loopback_target(spec, net=net)
        try:
            assert len(target._lanes) == 3
            # shared-state serving is forced: N lanes race one session
            assert target.app.shared_state
            steps = [(wire, model_name)
                     for model_name, wire in default_wires(spec)] * 2
            result = target.run_trace(steps)
            assert result.steps_executed == len(steps)
            assert target.app.connections == 3
        finally:
            target.close()


class TestMakeSocketTarget:
    """The triage-reproducer replay constructor."""

    def test_loopback_replay_serves_the_named_target(self):
        # `triage --net-url loopback` exports scripts whose default
        # endpoint is the literal string "loopback" — replay must serve
        # the named target itself rather than demand a tcp:// url
        target = make_socket_target("loopback", target_name="iec104")
        try:
            model_name, wire = default_wires(get_target("iec104"))[0]
            result = target.run(wire, model_name)
            assert result.response is not None
            assert result.crash is None
        finally:
            target.close()

    def test_loopback_replay_needs_a_target_name(self):
        with pytest.raises(ValueError):
            make_socket_target("loopback")
