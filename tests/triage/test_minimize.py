"""Test-case minimization: ddmin, field-aware shrink, full pipeline."""

import pytest

from repro.protocols import get_target
from repro.triage import CrashChecker, ddmin_bytes, minimize_crash
from repro.triage.minimize import shrink_fields


class TestDdmin:
    def test_reduces_to_minimal_subsequence(self):
        packet = bytes(range(1, 40)) + b"\xde" + bytes(range(40, 60)) + \
            b"\xad" + bytes(range(60, 80))

        def reproduces(candidate):
            start = candidate.find(b"\xde")
            return start != -1 and b"\xad" in candidate[start:]

        reduced = ddmin_bytes(packet, reproduces)
        assert reproduces(reduced)
        assert reduced == b"\xde\xad"

    def test_single_byte_input_untouched(self):
        assert ddmin_bytes(b"\x42", lambda c: True) == b"\x42"

    def test_respects_execution_budget(self):
        calls = []

        def reproduces(candidate):
            calls.append(candidate)
            return False

        budget = [5]
        packet = bytes(64)
        assert ddmin_bytes(packet, reproduces, budget) == packet
        assert len(calls) <= 5

    def test_result_is_one_minimal(self):
        """Removing any single byte from the result breaks reproduction."""
        def reproduces(candidate):
            return candidate.count(0xAA) >= 3

        reduced = ddmin_bytes(b"\x01\xaa\x02\xaa\x03\xaa\x04" * 3,
                              reproduces)
        assert reproduces(reduced)
        for index in range(len(reduced)):
            clipped = reduced[:index] + reduced[index + 1:]
            assert not reproduces(clipped)


class TestShrinkFields:
    def test_truncates_variable_field_and_repairs_framing(self):
        """Shrinking the element blob must recompute the APCI length."""
        spec = get_target("lib60870")
        pit = spec.make_pit()
        model = pit.model("lib60870.clock_sync")
        oversized = model.build_default()
        packet = model.to_wire(oversized)

        # "reproduces" = still starts 0x68 with a consistent length byte
        # and the same ASDU type — structure-preserving predicate
        def reproduces(candidate):
            return (len(candidate) >= 7 and candidate[0] == 0x68
                    and candidate[1] + 2 == len(candidate)
                    and candidate[6] == packet[6])

        shrunk = shrink_fields(pit, packet, reproduces)
        assert len(shrunk) < len(packet)
        assert reproduces(shrunk)


class TestMinimizeCrash:
    def test_minimized_keeps_dedup_key_and_shrinks(self, lib60870_crashes):
        spec, crashes = lib60870_crashes
        checker = CrashChecker(spec)
        reduced_any = False
        for report in crashes:
            outcome = minimize_crash(spec, report, checker=checker)
            assert outcome.confirmed
            assert len(outcome.minimized) <= len(outcome.original)
            assert checker.crash_key(outcome.minimized) == report.dedup_key
            assert outcome.report is not None
            assert outcome.report.dedup_key == report.dedup_key
            reduced_any = reduced_any or outcome.reduced
        assert reduced_any, "at least one crash input must shrink strictly"

    def test_non_reproducing_input_reported_unconfirmed(self):
        spec = get_target("lib60870")
        from repro.sanitizer.report import CrashReport
        bogus = CrashReport(kind="SEGV", site="nowhere.c:nothing",
                            detail="", packet=b"\x68\x04\x07\x00\x00\x00")
        outcome = minimize_crash(spec, bogus)
        assert not outcome.confirmed
        assert outcome.minimized == bogus.packet

    def test_minimization_is_deterministic(self, lib60870_crashes):
        spec, crashes = lib60870_crashes
        report = crashes[0]
        first = minimize_crash(spec, report)
        second = minimize_crash(spec, report)
        assert first.minimized == second.minimized
