"""Peach pit for the Modbus/TCP target.

One data model per packet type ("function code" — the opcode field the
paper's motivation section centres on), all sharing MBAP framing and a
set of common construction rules: ``address``, ``quantity``,
``byte_count`` and register payloads.  The shared semantic tags are what
lets the Packet Cracker donate puzzles across models (paper Fig. 2a: the
chunks of *write single register* and *write single coil* conform to the
same rules).

Defaults instantiate to valid requests, mirroring how real Peach pits
ship with sane defaults; the mutators then wander from there.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model import (
    Blob, Block, DataModel, Number, Pit, size_of,
)
from repro.protocols.modbus import codec
from repro.state.model import State, StateModel, Transition


def _mbap_models(name: str, fc: int, fields: Sequence, weight: float = 1.0,
                 ) -> DataModel:
    """Wrap *fields* (the PDU data after the function code) in MBAP."""
    body_children: List = [
        Number("unit_id", 1, default=1, semantic="unit_id"),
        Number("function", 1, default=fc, token=True, semantic="function"),
    ]
    body_children.extend(fields)
    root = Block(f"{name}.frame", [
        Number("transaction_id", 2, default=1, semantic="transaction_id"),
        Number("protocol_id", 2, default=0, token=True,
               semantic="protocol_id"),
        size_of(Number("length", 2, semantic="mbap_length"), "body"),
        Block("body", body_children),
    ])
    return DataModel(f"modbus.{name}", root, weight=weight)


def _address(name: str = "address") -> Number:
    return Number(name, 2, default=0, semantic="address")


def _quantity(name: str = "quantity") -> Number:
    return Number(name, 2, default=1, semantic="quantity")


def make_pit() -> Pit:
    """Build the Modbus pit (16 data models, one per packet type)."""
    models = [
        _mbap_models("read_coils", codec.FC_READ_COILS,
                     [_address(), _quantity()]),
        _mbap_models("read_discrete_inputs", codec.FC_READ_DISCRETE_INPUTS,
                     [_address(), _quantity()]),
        _mbap_models("read_holding_registers",
                     codec.FC_READ_HOLDING_REGISTERS,
                     [_address(), _quantity()]),
        _mbap_models("read_input_registers", codec.FC_READ_INPUT_REGISTERS,
                     [_address(), _quantity()]),
        _mbap_models("write_single_coil", codec.FC_WRITE_SINGLE_COIL,
                     [_address(),
                      Number("value", 2, default=0xFF00,
                             semantic="coil_value")]),
        _mbap_models("write_single_register", codec.FC_WRITE_SINGLE_REGISTER,
                     [_address(),
                      Number("value", 2, default=0x1234,
                             semantic="register_value")]),
        _mbap_models("read_exception_status",
                     codec.FC_READ_EXCEPTION_STATUS, []),
        _mbap_models("diagnostics", codec.FC_DIAGNOSTICS,
                     [Number("sub_function", 2, default=0,
                             semantic="diag_sub_function"),
                      Number("data", 2, default=0xA537,
                             semantic="diag_data")]),
        _mbap_models("get_comm_event_counter",
                     codec.FC_GET_COMM_EVENT_COUNTER, []),
        _mbap_models("write_multiple_coils", codec.FC_WRITE_MULTIPLE_COILS,
                     [_address(), _quantity("quantity"),
                      size_of(Number("byte_count", 1,
                                     semantic="byte_count"), "bit_data"),
                      Blob("bit_data", default=b"\x01", max_length=246,
                           semantic="bit_data")]),
        _mbap_models("write_multiple_registers",
                     codec.FC_WRITE_MULTIPLE_REGISTERS,
                     [_address(), _quantity("quantity"),
                      size_of(Number("byte_count", 1,
                                     semantic="byte_count"), "reg_data"),
                      Blob("reg_data", default=b"\x00\x2a", max_length=246,
                           semantic="register_data")]),
        _mbap_models("report_server_id", codec.FC_REPORT_SERVER_ID, []),
        _mbap_models("mask_write_register", codec.FC_MASK_WRITE_REGISTER,
                     [_address(),
                      Number("and_mask", 2, default=0xFFFF, semantic="mask"),
                      Number("or_mask", 2, default=0x0000, semantic="mask")]),
        _mbap_models("read_write_multiple",
                     codec.FC_READ_WRITE_MULTIPLE_REGISTERS,
                     [_address("read_address"), _quantity("read_quantity"),
                      _address("write_address"),
                      _quantity("write_quantity"),
                      size_of(Number("byte_count", 1,
                                     semantic="byte_count"), "reg_data"),
                      Blob("reg_data", default=b"\x00\x2a", max_length=246,
                           semantic="register_data")]),
        _mbap_models("read_device_identification",
                     codec.FC_READ_DEVICE_IDENTIFICATION,
                     [Number("mei_type", 1, default=0x0E,
                             semantic="mei_type"),
                      Number("read_code", 1, default=0x01,
                             semantic="devid_read_code"),
                      Number("object_id", 1, default=0x00,
                             semantic="devid_object")]),
        # Coarse fallback model: framing only, opaque PDU.  Real pits are
        # often this coarse (paper §V-A: "the input model does not have to
        # be elaborate"); it also supplies truncated/odd PDUs.
        _mbap_models("raw_pdu", 0x00, [
            Blob("pdu", default=b"\x03\x00\x00\x00\x01", max_length=64,
                 semantic="raw_pdu"),
        ], weight=0.5),
    ]
    # the raw model's function byte must not be a token: drop the token
    # flag by rebuilding its function field
    raw = models[-1]
    function_field = raw.root.child("body").child("function")
    function_field.token = False
    function_field.values = None
    return Pit("modbus", models)


def make_state_model() -> StateModel:
    """Session state machine for the Modbus/TCP server.

    Tracks the diagnostics-controlled connection modes the single-packet
    loop resets away: force-listen-only (diagnostics sub-function
    0x0004) versus restored communications (0x0001), with the event
    counter accumulating across the whole session instead of restarting
    at zero for every packet.

    Every request transition captures the transaction id the server
    echoes back and binds it into the next request's MBAP header — the
    response re-parses under the request model (leniently), so the
    binding flows through the ordinary Relation/Fixup rebuild.
    """
    txn_capture = {"txn": "transaction_id"}
    txn_bind = {"transaction_id": "txn"}

    def _req(send: str, to: str, weight: float = 1.0) -> Transition:
        return Transition(send, to, bind=dict(txn_bind), expect=send,
                          capture=dict(txn_capture), weight=weight)

    online = State("online", (
        _req("modbus.read_coils", "online"),
        _req("modbus.read_holding_registers", "online"),
        _req("modbus.write_single_register", "online"),
        _req("modbus.write_multiple_registers", "online", weight=0.7),
        _req("modbus.mask_write_register", "online", weight=0.5),
        _req("modbus.read_write_multiple", "online", weight=0.5),
        _req("modbus.get_comm_event_counter", "online", weight=0.6),
        _req("modbus.read_exception_status", "online", weight=0.4),
        Transition("modbus.raw_pdu", "online", bind=dict(txn_bind),
                   weight=0.6),
        Transition("modbus.diagnostics", "listen_only", weight=0.8),
    ))
    listen_only = State("listen_only", (
        Transition("modbus.diagnostics", "online", weight=1.2),
        _req("modbus.read_holding_registers", "listen_only", weight=0.6),
        _req("modbus.get_comm_event_counter", "listen_only", weight=0.5),
        Transition("modbus.raw_pdu", "listen_only", bind=dict(txn_bind),
                   weight=0.4),
    ))
    return StateModel("modbus.session", "online", (online, listen_only))
