"""libiec61850-analog target: MMS-lite server, codec and pit."""

from repro.protocols.iec61850.codec import (
    build_conclude_request, build_get_name_list, build_identify_request,
    build_initiate_request, build_read_request, build_tpkt_cotp,
    build_write_request, object_name, strip_tpkt_cotp, variable_spec,
)
from repro.protocols.iec61850.model import make_pit, make_state_model
from repro.protocols.iec61850.server import Iec61850Server

__all__ = [
    "Iec61850Server", "build_conclude_request", "build_get_name_list",
    "build_identify_request", "build_initiate_request", "build_read_request",
    "build_tpkt_cotp", "build_write_request", "make_pit",
    "make_state_model", "object_name",
    "strip_tpkt_cotp", "variable_spec",
]
