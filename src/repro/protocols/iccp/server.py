"""libiec_iccp_mod-analog server: TASE.2 endpoint with four seeded bugs.

The fuzzed target for the paper's ``libiec iccp mod`` row.  It implements
the TASE.2 packet-processing path: TPKT/COTP validation, MMS PDU
demultiplexing, bilateral-table association, transfer-set and data-value
reads/writes, and unconfirmed information messages.

Four vulnerabilities are seeded, matching Table I's libiec_iccp_mod row
(3 × SEGV + 1 × heap-buffer-overflow):

* ``iccp_im.c:im_lookup`` — SEGV: an information message's reference
  number indexes the subscription table after only a lax sanity bound.
* ``tase2_ts.c:ts_name_tail`` — SEGV: the read path classifies a name by
  its *last* character before checking the name is non-empty
  (``name[len - 1]`` with ``len == 0``).
* ``iccp_dv.c:dv_element`` — SEGV: an element-indexed data-value read
  computes the element address straight from the packet index.
* ``iccp_dv.c:dv_write_copy`` — heap-buffer-overflow: a data-value write
  memcpy's the declared-length payload into the fixed 64-byte entry
  buffer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.protocols.common.ber import encode_integer, encode_tlv
from repro.protocols.iccp import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import Pointer, SimHeap

IM_TABLE_ENTRIES = 32
IM_ENTRY_SIZE = 8
IM_REF_SANITY_BOUND = 1024   # the (insufficient) check the C code kept
DV_ENTRY_SIZE = 64
DV_ELEMENT_SIZE = 16
DV_ELEMENTS = 4


class IccpServer(ProtocolServer):
    """TASE.2 server with libiec_iccp_mod control flow."""

    name = "libiec_iccp_mod"

    def __init__(self):
        self.associated = True
        self.dv_store = {name: b"\x00" * DV_ENTRY_SIZE
                         for name in codec.DATA_VALUES}

    def reset(self) -> None:
        self.associated = True
        self.dv_store = {name: b"\x00" * DV_ENTRY_SIZE
                         for name in codec.DATA_VALUES}

    # ------------------------------------------------------------------
    # framing (independent copy, like the real fork)
    # ------------------------------------------------------------------

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        if len(data) < 7:
            return None
        frame = heap.malloc_from(data, "tpkt-frame")
        if heap.read_u8(frame, 0, "iso_conn.c:tpkt_version") != \
                codec.TPKT_VERSION:
            return None
        if heap.read_u16(frame, 2, "iso_conn.c:tpkt_length") != len(data):
            return None
        cotp_len = heap.read_u8(frame, 4, "iso_conn.c:cotp_length")
        if cotp_len < 2 or 5 + cotp_len > len(data):
            return None
        if heap.read_u8(frame, 5, "iso_conn.c:cotp_type") != codec.COTP_DT:
            return None
        offset = 5 + cotp_len
        size = len(data) - offset
        if size < 2:
            return None
        mms = heap.malloc_from(
            heap.read(frame, offset, size, "iso_conn.c:payload_copy"),
            "mms-pdu")
        return self._handle_mms(heap, mms, size)

    def _read_tlv(self, heap: SimHeap, buf: Pointer, pos: int, end: int,
                  site: str) -> Optional[Tuple[int, int, int]]:
        """C-style TLV header read: (tag, length, value_pos) or None."""
        if pos + 2 > end:
            return None
        tag = heap.read_u8(buf, pos, site)
        first = heap.read_u8(buf, pos + 1, site)
        value_pos = pos + 2
        if first >= 0x80:
            count = first & 0x7F
            if count == 0 or count > 2 or value_pos + count > end:
                return None
            first = 0
            for index in range(count):
                first = (first << 8) | heap.read_u8(buf, value_pos + index,
                                                    site)
            value_pos += count
        if value_pos + first > end:
            return None
        return tag, first, value_pos

    # ------------------------------------------------------------------
    # MMS dispatch
    # ------------------------------------------------------------------

    def _handle_mms(self, heap: SimHeap, mms: Pointer,
                    size: int) -> Optional[bytes]:
        header = self._read_tlv(heap, mms, 0, size, "mms_conn.c:pdu_tag")
        if header is None:
            return None
        tag, length, value_pos = header
        end = value_pos + length
        if tag == codec.MMS_INITIATE_REQUEST:
            return self._associate(heap, mms, value_pos, end)
        if tag == codec.MMS_CONFIRMED_REQUEST:
            return self._confirmed(heap, mms, value_pos, end)
        if tag == codec.MMS_UNCONFIRMED:
            return self._unconfirmed(heap, mms, value_pos, end)
        return None

    def _associate(self, heap: SimHeap, mms: Pointer, pos: int,
                   end: int) -> Optional[bytes]:
        header = self._read_tlv(heap, mms, pos, end, "tase2_assoc.c:blt_tag")
        if header is None or header[0] != 0x80:
            return self._error_pdu(0, 1)
        _, length, value_pos = header
        if length > 32:
            return self._error_pdu(0, 1)
        blt = bytes(heap.read_u8(mms, value_pos + i, "tase2_assoc.c:blt_char")
                    for i in range(length)).decode("latin-1")
        if blt != codec.BILATERAL_TABLE_ID:
            self.associated = False
            return self._error_pdu(0, 2)  # bilateral table mismatch
        self.associated = True
        body = encode_integer(1, tag=0x80)
        return codec.build_tpkt_cotp(
            encode_tlv(codec.MMS_INITIATE_RESPONSE, body))

    def _confirmed(self, heap: SimHeap, mms: Pointer, pos: int,
                   end: int) -> Optional[bytes]:
        if not self.associated:
            return self._error_pdu(0, 2)
        invoke = self._read_tlv(heap, mms, pos, end, "mms_conn.c:invoke_id")
        if invoke is None or invoke[0] != 0x02 or not 1 <= invoke[1] <= 4:
            return self._error_pdu(0, 3)
        invoke_id = 0
        for index in range(invoke[1]):
            invoke_id = (invoke_id << 8) | heap.read_u8(
                mms, invoke[2] + index, "mms_conn.c:invoke_value")
        pos = invoke[2] + invoke[1]
        service = self._read_tlv(heap, mms, pos, end,
                                 "mms_conn.c:service_tag")
        if service is None:
            return self._error_pdu(invoke_id, 3)
        tag, svc_len, svc_pos = service
        svc_end = svc_pos + svc_len
        if tag == codec.SVC_READ:
            return self._read_service(heap, mms, svc_pos, svc_end, invoke_id)
        if tag == codec.SVC_WRITE:
            return self._write_service(heap, mms, svc_pos, svc_end,
                                       invoke_id)
        return self._error_pdu(invoke_id, 1)

    # ------------------------------------------------------------------
    # read path (transfer sets + data values)  [SEGV #2 and #3]
    # ------------------------------------------------------------------

    def _read_service(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                      invoke_id: int) -> Optional[bytes]:
        name_header = self._read_tlv(heap, mms, pos, end,
                                     "tase2_ts.c:name_tag")
        if name_header is None or name_header[0] != codec.TAG_NAME:
            return self._error_pdu(invoke_id, 4)
        _, name_len, name_pos = name_header
        if name_len > 32:
            return self._error_pdu(invoke_id, 4)
        # copy the name into its own buffer, as the C code does
        name_buf = heap.malloc(name_len, "object-name")
        for index in range(name_len):
            heap.write_u8(name_buf, index,
                          heap.read_u8(mms, name_pos + index,
                                       "tase2_ts.c:name_copy"),
                          "tase2_ts.c:name_copy")
        # SEEDED BUG (libiec_iccp_mod row, SEGV #2): classify the object by
        # its trailing character *before* checking the name is non-empty —
        # name[len - 1] with len == 0 dereferences one byte before the
        # allocation.
        tail = heap.deref_read(name_buf.address + name_len - 1, 1,
                               "tase2_ts.c:ts_name_tail")[0]
        name = "".join(chr(heap.read_u8(name_buf, i, "tase2_ts.c:name_use"))
                       for i in range(name_len))
        if name in codec.TRANSFER_SETS:
            return self._read_transfer_set(invoke_id, name, tail)
        if name in codec.DATA_VALUES:
            return self._read_data_value(heap, mms, name_pos + name_len,
                                         end, invoke_id, name)
        return self._error_pdu(invoke_id, 5)

    def _read_transfer_set(self, invoke_id: int, name: str,
                           tail: int) -> bytes:
        index = tail - ord("0")  # trailing digit selects the set
        status = 1 if 1 <= index <= len(codec.TRANSFER_SETS) else 0
        body = (encode_tlv(0x80, bytes((status,)))
                + encode_tlv(0x81, name.encode("latin-1"))
                + encode_integer(30, tag=0x82))  # interval
        service = encode_tlv(codec.SVC_READ, body)
        return self._response_pdu(invoke_id, service)

    def _read_data_value(self, heap: SimHeap, mms: Pointer, pos: int,
                         end: int, invoke_id: int,
                         name: str) -> Optional[bytes]:
        stored = self.dv_store[name]
        entry = heap.malloc_from(stored, "dv-entry")
        index_header = self._read_tlv(heap, mms, pos, end,
                                      "iccp_dv.c:index_tag")
        if index_header is not None and index_header[0] == codec.TAG_INDEX \
                and index_header[1] == 2:
            element_index = heap.read_u16(mms, index_header[2],
                                          "iccp_dv.c:index_value")
            # SEEDED BUG (libiec_iccp_mod row, SEGV #3): the element address
            # is computed straight from the packet-supplied index; only
            # indices 0..3 are inside the 64-byte entry.
            element_addr = entry.address + element_index * DV_ELEMENT_SIZE
            element = bytes(
                heap.deref_read(element_addr + i, 1, "iccp_dv.c:dv_element")[0]
                for i in range(DV_ELEMENT_SIZE))
        else:
            element = heap.read(entry, 0, DV_ELEMENT_SIZE,
                                "iccp_dv.c:dv_read_first")
        body = (encode_tlv(0x81, name.encode("latin-1"))
                + encode_tlv(codec.TAG_DATA_OCTETS, element))
        service = encode_tlv(codec.SVC_READ, body)
        return self._response_pdu(invoke_id, service)

    # ------------------------------------------------------------------
    # write path  [heap-buffer-overflow]
    # ------------------------------------------------------------------

    def _write_service(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                       invoke_id: int) -> Optional[bytes]:
        name_header = self._read_tlv(heap, mms, pos, end,
                                     "iccp_dv.c:write_name_tag")
        if name_header is None or name_header[0] != codec.TAG_NAME:
            return self._error_pdu(invoke_id, 4)
        _, name_len, name_pos = name_header
        if name_len == 0 or name_len > 32:
            return self._error_pdu(invoke_id, 4)
        name = bytes(heap.read_u8(mms, name_pos + i,
                                  "iccp_dv.c:write_name_char")
                     for i in range(name_len)).decode("latin-1")
        if name not in self.dv_store:
            return self._error_pdu(invoke_id, 5)
        data_header = self._read_tlv(heap, mms, name_pos + name_len, end,
                                     "iccp_dv.c:write_data_tag")
        if data_header is None or data_header[0] != codec.TAG_DATA_OCTETS:
            return self._error_pdu(invoke_id, 4)
        _, data_len, data_pos = data_header
        payload = heap.read(mms, data_pos, data_len,
                            "iccp_dv.c:write_payload")
        # SEEDED BUG (libiec_iccp_mod row, heap-buffer-overflow): the entry
        # buffer is a fixed 64 bytes but the copy uses the declared length.
        entry = heap.malloc(DV_ENTRY_SIZE, "dv-entry")
        heap.write(entry, 0, payload, "iccp_dv.c:dv_write_copy")
        self.dv_store[name] = (payload + b"\x00" * DV_ENTRY_SIZE)[
            :DV_ENTRY_SIZE]
        body = encode_tlv(0x81, b"")
        service = encode_tlv(codec.SVC_WRITE, body)
        return self._response_pdu(invoke_id, service)

    # ------------------------------------------------------------------
    # information messages  [SEGV #1]
    # ------------------------------------------------------------------

    def _unconfirmed(self, heap: SimHeap, mms: Pointer, pos: int,
                     end: int) -> Optional[bytes]:
        service = self._read_tlv(heap, mms, pos, end, "iccp_im.c:service")
        if service is None or service[0] != codec.SVC_INFO_REPORT:
            return None
        svc_pos, svc_end = service[2], service[2] + service[1]
        refs = {}
        cursor = svc_pos
        while cursor < svc_end:
            field = self._read_tlv(heap, mms, cursor, svc_end,
                                   "iccp_im.c:field")
            if field is None:
                return None
            tag, length, value_pos = field
            if tag in (codec.TAG_INFO_REF, codec.TAG_LOCAL_REF,
                       codec.TAG_MSG_ID) and length == 2:
                refs[tag] = heap.read_u16(mms, value_pos,
                                          "iccp_im.c:ref_value")
            elif tag == codec.TAG_CONTENT:
                refs[tag] = heap.read(mms, value_pos, length,
                                      "iccp_im.c:content")
            cursor = value_pos + length
        if codec.TAG_INFO_REF not in refs or codec.TAG_CONTENT not in refs:
            return None
        info_ref = refs[codec.TAG_INFO_REF]
        if info_ref >= IM_REF_SANITY_BOUND:
            return None  # the sanity check the C code *did* have
        table = heap.malloc(IM_TABLE_ENTRIES * IM_ENTRY_SIZE, "im-table")
        # SEEDED BUG (libiec_iccp_mod row, SEGV #1): refs 32..1023 pass the
        # sanity bound but index past the 32-entry subscription table.
        entry_addr = table.address + info_ref * IM_ENTRY_SIZE
        flags = heap.deref_read(entry_addr, 1, "iccp_im.c:im_lookup")[0]
        if flags & 0x01:
            return None  # subscription disabled
        return None  # information messages are not acknowledged

    # ------------------------------------------------------------------
    # response assembly
    # ------------------------------------------------------------------

    def _response_pdu(self, invoke_id: int, service: bytes) -> bytes:
        pdu = encode_tlv(codec.MMS_CONFIRMED_RESPONSE,
                         encode_integer(invoke_id) + service)
        return codec.build_tpkt_cotp(pdu)

    def _error_pdu(self, invoke_id: int, code: int) -> bytes:
        pdu = encode_tlv(codec.MMS_CONFIRMED_ERROR,
                         encode_integer(invoke_id)
                         + encode_tlv(0x80, bytes((code,))))
        return codec.build_tpkt_cotp(pdu)
