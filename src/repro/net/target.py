"""SocketTarget: the ``Target``/``run_trace`` contract over real TCP.

Duck-types :class:`repro.runtime.target.Target` everywhere the engines,
the campaign driver and the workspace look (``run``/``run_trace``/
``executions``/``collector``/``channel``/``close``), but delivery
happens over sockets on a private event loop:

* against a **loopback** served target (:func:`make_loopback_target`)
  the client and the asyncio server share one process and one event
  loop, so wrapping each event-loop turn in the instrumentation
  collector observes coverage, blocks and crash call-sites identical to
  the in-process path — that is the pinned parity claim;
* against an **external** endpoint (``tcp://host:port``) the target is
  a black box: no coverage feedback, per-protocol raw framing if asked,
  wall-clock timeouts and reconnect-on-drop as scenario axes, and a
  dropped connection surfacing as a synthesized ``connection-dropped``
  crash — the way a real server crash looks from outside.

The PR 8 channel seam composes unchanged: the channel decides *which*
frames to put on the wire, the socket decides *how* they travel.

Concurrency dealing: with ``concurrency=N`` (shared-state serving) a
trace's step *i* is delivered on connection ``i % N`` — N interleaved
sessions racing one server, while the trace itself stays an ordinary
corpus entry so workspaces, fleets and triage compose unchanged.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional, Sequence, Tuple

from repro.net.config import NetConfig, parse_tcp_url
from repro.net.framing import (
    MSG_ACK, MSG_CRASH, MSG_DATA, MSG_HANG, MSG_NONE, MSG_RESET,
    MSG_RESPONSE, encode_envelope, framer_for, read_envelope,
)
from repro.net.serve import bound_address, start_serving
from repro.runtime.coverage import CoverageMap
from repro.runtime.target import ExecResult, TraceResult
from repro.sanitizer.report import CrashReport

#: dedup site of the synthesized crash for a dropped connection
DROP_SITE = "net:session"


class NetTargetError(Exception):
    """The endpoint could not be reached (connect/reconnect exhausted)."""


class _Connection:
    """One TCP lane of a SocketTarget (its own stream framer in raw mode)."""

    __slots__ = ("target", "reader", "writer", "framer", "ever_connected")

    def __init__(self, target: "SocketTarget"):
        self.target = target
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.framer = framer_for(target.framer_name) \
            if target.framing == "raw" else None
        self.ever_connected = False

    @property
    def open(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def ensure(self) -> None:
        if self.open:
            return
        target = self.target
        last_exc: Optional[BaseException] = None
        for _ in range(max(1, target.reconnect + 1)):
            try:
                opening = asyncio.open_connection(*target.address)
                if target.connect_timeout_ms is not None:
                    opening = asyncio.wait_for(
                        opening, target.connect_timeout_ms / 1000.0)
                self.reader, self.writer = await opening
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_exc = exc
                continue
            if self.framer is not None:
                self.framer.reset()
            if self.ever_connected:
                target.net_reconnects += 1
            self.ever_connected = True
            return
        raise NetTargetError(
            f"cannot connect to {target.address[0]}:{target.address[1]}"
            f" ({last_exc})")

    async def close(self) -> None:
        if self.writer is None:
            return
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.reader = self.writer = None


class SocketTarget:
    """Drive a live TCP endpoint through the Target contract.

    Build via :func:`make_loopback_target` / :func:`make_net_target` /
    :func:`make_socket_target` rather than directly — they own the
    event-loop and serve-app lifecycle.
    """

    def __init__(self, address: Tuple[str, int], *,
                 loop: asyncio.AbstractEventLoop,
                 collector=None, channel=None,
                 framing: str = "peachstar",
                 framer_name: str = "apci",
                 timeout_ms: Optional[float] = None,
                 connect_timeout_ms: Optional[float] = 5000.0,
                 reconnect: int = 1,
                 concurrency: int = 1,
                 app=None, server=None):
        self.address = address
        self.collector = collector
        self.channel = channel
        self.framing = framing
        self.framer_name = framer_name
        self.timeout_ms = timeout_ms
        self.connect_timeout_ms = connect_timeout_ms
        self.reconnect = reconnect
        self.concurrency = max(1, concurrency)
        self.executions = 0
        #: wall-clock scenario counters (0 on the deterministic loopback
        #: envelope path; the engine folds deltas into its stats)
        self.net_timeouts = 0
        self.net_reconnects = 0
        #: the served app when this target owns a loopback server
        self.app = app
        self._server = server
        self._loop = loop
        self._lanes = [_Connection(self) for _ in range(self.concurrency)]
        self._closed = False

    # -- stats ------------------------------------------------------------

    def take_net_counters(self) -> Tuple[int, int]:
        """(timeouts, reconnects) since the last take — engine absorb."""
        timeouts, reconnects = self.net_timeouts, self.net_reconnects
        self.net_timeouts = 0
        self.net_reconnects = 0
        return timeouts, reconnects

    # -- Target contract --------------------------------------------------

    def run(self, packet: bytes,
            model_name: Optional[str] = None) -> ExecResult:
        """Execute one packet against a fresh remote session."""
        self.executions += 1
        if self.channel is None:
            frames: Sequence[bytes] = (packet,)
            delivered = None
        else:
            self.channel.reset()
            frames = self.channel.transmit(0, packet)
            frames.extend(self.channel.flush())
            delivered = list(frames)
        lane = self._lanes[0]
        # the session reset happens outside the collector window, like
        # Target.run's server.reset()/fresh-heap preamble
        self._sync(self._begin_session(lane))
        blocks = 0
        if self.collector is not None:
            with self.collector:
                crash, hang, response = self._sync(
                    self._deliver_frames(lane, frames, model_name))
            blocks = self.collector.blocks_executed
            coverage = self.collector.map
        else:
            crash, hang, response = self._sync(
                self._deliver_frames(lane, frames, model_name))
            coverage = None
        return ExecResult(coverage=coverage, crash=crash, hang=hang,
                          response=response, blocks_executed=blocks,
                          delivered=delivered)

    def run_trace(self, steps: Sequence[Tuple[bytes, Optional[str]]],
                  binder=None) -> TraceResult:
        """Execute a trace; step *i* travels on lane ``i % concurrency``."""
        if self.channel is not None:
            self.channel.reset()
        self._sync(self._begin_trace())
        accumulated = CoverageMap() if self.collector is not None else None
        result = TraceResult(coverage=accumulated, crash=None, hang=False,
                             response=None)
        for index, (packet, model_name) in enumerate(steps):
            self.executions += 1
            wire = packet if binder is None else binder.prepare(index, packet)
            result.sent.append(wire)
            if self.channel is None:
                frames: Sequence[bytes] = (wire,)
            else:
                frames = self.channel.transmit(index, wire)
                if index == len(steps) - 1:
                    frames.extend(self.channel.flush())
                result.delivered.append(list(frames))
            lane = self._lanes[index % len(self._lanes)]
            if self.collector is not None:
                with self.collector:
                    crash, hang, response = self._sync(
                        self._deliver_frames(lane, frames, model_name))
                result.blocks_executed += self.collector.blocks_executed
                accumulated.absorb(self.collector.map)
            else:
                crash, hang, response = self._sync(
                    self._deliver_frames(lane, frames, model_name))
            result.steps_executed = index + 1
            result.responses.append(response)
            result.response = response
            if crash is not None:
                result.crash = crash
                result.crash_step = index
                break
            if hang:
                result.hang = True
                result.crash_step = index
                break
            if binder is not None:
                binder.observe(index, response)
        return result

    def close(self) -> None:
        """Tear down lanes, the owned loopback server, and the loop."""
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            for lane in self._lanes:
                await lane.close()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            # the lanes are closed, so served connection handlers see
            # EOF and return on their own — wait rather than cancel
            # (cancelling trips asyncio.streams' connection_made
            # callback into logging spurious CancelledErrors)
            for _ in range(5):
                stragglers = [task for task in asyncio.all_tasks()
                              if task is not asyncio.current_task()]
                if not stragglers:
                    break
                await asyncio.wait(stragglers, timeout=0.2)

        if not self._loop.is_closed():
            self._loop.run_until_complete(_shutdown())
            self._loop.close()

    # -- async delivery ---------------------------------------------------

    def _sync(self, coro):
        if self._closed:
            coro.close()
            raise NetTargetError("SocketTarget is closed")
        return self._loop.run_until_complete(coro)

    async def _begin_session(self, lane: _Connection) -> None:
        """Re-arm one lane for a fresh single-packet execution."""
        if self.framing == "raw":
            # a raw endpoint has no reset verb: cycle the connection,
            # which is a fresh session for any per-connection server
            await lane.close()
            await lane.ensure()
        else:
            await lane.ensure()
            await self._envelope_reset(lane)

    async def _begin_trace(self) -> None:
        """Open every lane and reset the remote session(s) once."""
        for lane in self._lanes:
            await self._begin_session(lane)

    async def _envelope_reset(self, lane: _Connection) -> None:
        lane.writer.write(encode_envelope(MSG_RESET))
        await lane.writer.drain()
        message = await self._read_reply(lane)
        if message is None or message[0] != MSG_ACK:
            await lane.close()
            raise NetTargetError(
                f"endpoint at {self.address} did not ack a session reset "
                "(not a peachstar-framing endpoint?)")

    async def _read_reply(self, lane: _Connection):
        reading = read_envelope(lane.reader)
        if self.timeout_ms is None:
            return await reading
        try:
            return await asyncio.wait_for(reading, self.timeout_ms / 1000.0)
        except asyncio.TimeoutError:
            return "timeout"

    async def _deliver_frames(self, lane: _Connection,
                              frames: Sequence[bytes],
                              model_name: Optional[str]):
        """Mirror of ``Target._dispatch_frames`` over the wire."""
        crash = None
        hang = False
        response = None
        for frame in frames:
            crash, hang, response = await self._deliver_one(
                lane, frame, model_name)
            if crash is not None or hang:
                break
        return crash, hang, response

    async def _deliver_one(self, lane: _Connection, frame: bytes,
                           model_name: Optional[str]):
        if self.framing == "raw":
            return await self._deliver_raw(lane, frame, model_name)
        return await self._deliver_envelope(lane, frame, model_name)

    async def _deliver_envelope(self, lane: _Connection, frame: bytes,
                                model_name: Optional[str]):
        try:
            await lane.ensure()
            lane.writer.write(encode_envelope(MSG_DATA, frame))
            await lane.writer.drain()
        except (ConnectionError, OSError):
            return self._dropped(lane, frame, model_name)
        message = await self._read_reply(lane)
        if message == "timeout":
            # the reply may still arrive later and desync the stream:
            # poison the lane and report the execution as a hang
            self.net_timeouts += 1
            await lane.close()
            return None, True, None
        if message is None:
            return self._dropped(lane, frame, model_name)
        kind, payload = message
        if kind == MSG_RESPONSE:
            return None, False, payload
        if kind == MSG_NONE:
            return None, False, None
        if kind == MSG_HANG:
            return None, True, None
        if kind == MSG_CRASH:
            blob = json.loads(payload.decode("utf-8"))
            report = CrashReport(
                kind=blob["kind"], site=blob["site"],
                detail=blob.get("detail", ""), packet=frame,
                model_name=model_name,
                execution_index=self.executions,
                call_sites=tuple(blob.get("call_sites", ())))
            return report, False, None
        raise NetTargetError(f"unexpected envelope {kind!r} from endpoint")

    async def _deliver_raw(self, lane: _Connection, frame: bytes,
                           model_name: Optional[str]):
        try:
            await lane.ensure()
            lane.writer.write(frame)
            await lane.writer.drain()
        except (ConnectionError, OSError):
            return self._dropped(lane, frame, model_name)
        timeout = (self.timeout_ms or 1000.0) / 1000.0
        while True:
            try:
                data = await asyncio.wait_for(lane.reader.read(4096),
                                              timeout)
            except asyncio.TimeoutError:
                # silence: either the server had nothing to say or it
                # hung — indistinguishable from outside
                self.net_timeouts += 1
                return None, False, None
            except (ConnectionError, OSError):
                data = b""
            if not data:
                return self._dropped(lane, frame, model_name)
            responses = lane.framer.feed(data)
            if responses:
                return None, False, responses[0]

    def _dropped(self, lane: _Connection, frame: bytes,
                 model_name: Optional[str]):
        """The endpoint closed on us mid-execution: that's a crash."""
        if lane.writer is not None:
            lane.writer.close()
            lane.reader = lane.writer = None
        report = CrashReport(
            kind="connection-dropped", site=DROP_SITE,
            detail=f"endpoint {self.address[0]}:{self.address[1]} closed "
                   "the connection mid-session (server fault or restart)",
            packet=frame, model_name=model_name,
            execution_index=self.executions)
        return report, False, None


# -- constructors -------------------------------------------------------------

def make_loopback_target(spec, *, collector=None, channel=None,
                         net: Optional[NetConfig] = None) -> SocketTarget:
    """Serve *spec* on an ephemeral loopback port and target it.

    Server and client share one private event loop (and, crucially, the
    *collector*), so a campaign through this target observes coverage
    and crash context identical to the in-process path while every byte
    still crosses a real TCP socket.
    """
    net = net if net is not None else NetConfig()
    net.validate()
    shared = net.shared_state or net.concurrency > 1
    loop = asyncio.new_event_loop()
    app, server = loop.run_until_complete(start_serving(
        spec, "127.0.0.1", 0, collector=collector,
        shared_state=shared, framing=net.framing))
    address = bound_address(server)
    timeout_ms = None if net.framing == "peachstar" else net.timeout_ms
    return SocketTarget(
        address, loop=loop, collector=collector, channel=channel,
        framing=net.framing, framer_name=spec.framing,
        timeout_ms=timeout_ms, connect_timeout_ms=net.connect_timeout_ms,
        reconnect=net.reconnect, concurrency=net.concurrency,
        app=app, server=server)


def make_net_target(spec, collector, channel,
                    net: NetConfig) -> SocketTarget:
    """The campaign-facing constructor (see ``CampaignConfig.net``).

    ``loopback`` serves the in-process target and keeps full coverage
    feedback; a ``tcp://`` endpoint is driven black-box (no collector —
    coverage cannot be observed across the process boundary).
    """
    net.validate()
    if net.is_loopback:
        return make_loopback_target(spec, collector=collector,
                                    channel=channel, net=net)
    address = parse_tcp_url(net.url)
    loop = asyncio.new_event_loop()
    return SocketTarget(
        address, loop=loop, collector=None, channel=channel,
        framing=net.framing, framer_name=spec.framing,
        timeout_ms=net.timeout_ms,
        connect_timeout_ms=net.connect_timeout_ms,
        reconnect=net.reconnect, concurrency=net.concurrency)


def make_socket_target(url: str, *, target_name: Optional[str] = None,
                       framing: str = "peachstar",
                       timeout_ms: float = 1000.0,
                       reconnect: int = 1) -> SocketTarget:
    """Standalone replay helper (triage reproducer scripts).

    ``url`` is ``tcp://host:port`` or ``"loopback"`` (serve
    *target_name* in-process on an ephemeral port and replay through
    it); *target_name* selects the served app for loopback replay and
    the protocol's stream framer for ``raw`` framing.
    """
    spec = None
    framer_name = "apci"
    if target_name is not None:
        from repro.protocols import get_target
        spec = get_target(target_name)
        framer_name = spec.framing
    if url == "loopback":
        if spec is None:
            raise ValueError("loopback replay needs a target name")
        return make_loopback_target(
            spec, net=NetConfig(framing=framing, timeout_ms=timeout_ms,
                                reconnect=reconnect))
    loop = asyncio.new_event_loop()
    return SocketTarget(
        parse_tcp_url(url), loop=loop, framing=framing,
        framer_name=framer_name, timeout_ms=timeout_ms,
        reconnect=reconnect)
