"""Property-based mutator/fixup tests over every protocol model.

A seeded randomized loop (stdlib ``random`` — no extra deps) drives the
same :func:`~repro.model.generation.generate_packet` path the fuzzing
engines use and asserts that every mutated InsTree still re-serializes
with *honest* integrity after the Fixup pipeline:

* every SizeOf/CountOf carrier equals the recomputation over the bytes
  it describes;
* every checksum carrier equals the fixup recomputed over the covered
  raws;
* the tree's raw assembly is internally consistent and ``to_wire``
  matches the packet the engine would send;
* rebuilding the tree through the Relation/Fixup repair pipeline
  (:class:`~repro.core.fixup_engine.TreeEchoProvider`) is a fixpoint.
"""

import random

import pytest

from repro.core.campaign import default_campaign_policy
from repro.core.fixup_engine import TreeEchoProvider
from repro.model.fields import Repeat
from repro.model.generation import generate_packet
from repro.protocols import TARGET_NAMES, all_targets

#: iterations per data model; with ~50 models across the six pits the
#: loop stays well under a second per target
ITERATIONS = 25

_PITS = {spec.name: spec.make_pit() for spec in all_targets()}


def assert_tree_integrity(model, tree, packet):
    """Framing lengths/counts and checksums of *tree* are honest."""
    root = tree.root
    # raw assembly is consistent bottom-up
    for node in root.iter_nodes():
        if node.children:
            assert node.raw == b"".join(child.raw
                                        for child in node.children), \
                f"{model.name}: {node.name} raw out of sync"
    for node in root.iter_nodes():
        relation = node.field.relation
        if relation is not None:
            target = root.find(relation.of)
            assert target is not None, \
                f"{model.name}: dangling relation {relation.of!r}"
            count = len(target.children) \
                if isinstance(target.field, Repeat) else None
            assert node.value == relation.compute(target.raw, count), \
                f"{model.name}: {node.name} carries a dishonest " \
                f"{relation.type_name}"
        fixup = node.field.fixup
        if fixup is not None:
            covered = b"".join(root.find(name).raw
                               for name in fixup.over)
            expected = fixup.compute(covered)
            actual = node.value if isinstance(node.value, int) \
                else int.from_bytes(node.raw, "big")
            assert actual == expected, \
                f"{model.name}: {node.name} carries a stale " \
                f"{fixup.algorithm}"
    assert model.to_wire(tree) == packet


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_mutated_trees_keep_honest_integrity(target_name):
    rng = random.Random(0xF1EE7 + TARGET_NAMES.index(target_name))
    policy = default_campaign_policy()
    for model in _PITS[target_name]:
        for _ in range(ITERATIONS):
            tree, packet = generate_packet(model, rng, policy)
            assert_tree_integrity(model, tree, packet)


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_fixup_pipeline_is_a_fixpoint_on_mutants(target_name):
    """Re-running the repair pipeline on a freshly-built tree must not
    change the wire bytes: the pipeline converges in one pass."""
    rng = random.Random(0xD0C + TARGET_NAMES.index(target_name))
    policy = default_campaign_policy()
    for model in _PITS[target_name]:
        for _ in range(ITERATIONS):
            tree, packet = generate_packet(model, rng, policy)
            rebuilt = model.build(TreeEchoProvider(tree))
            assert model.to_wire(rebuilt) == packet
