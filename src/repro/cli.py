"""Command-line interface: ``peachstar`` (or ``python -m repro.cli``).

Sub-commands:

* ``targets`` — list the six protocol targets and their seeded bugs
* ``serve``   — expose a simulated protocol server on a TCP port
  (``--port``, ``--shared-state``, ``--framing peachstar|raw``)
* ``fuzz``    — run one campaign (``--engine peach|peach-star``);
  ``--workspace DIR`` persists it so it can be resumed; ``--target-url
  loopback|tcp://host:port`` fuzzes over a real socket
* ``fleet``   — run N synced shards of one campaign with periodic
  cross-shard corpus exchange (``--shards``, ``--sync-every``)
* ``resume``  — continue a killed (or finished) persisted campaign or
  fleet (detected from the workspace layout)
* ``triage``  — minimize, bucket and export reproducers for crashes
  (from a fresh campaign or a persisted workspace)
* ``compare`` — Peach vs Peach* on one target, with the ASCII Fig. 4 panel
* ``crack``   — crack a packet (hex) against a target's pit and print the
  InsTree + puzzles, demonstrating paper Alg. 2
* ``table1``  — reproduce the paper's Table I on the bug-carrying targets
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    render_fleet_table, render_panel_report, render_table1,
    render_triage_table, run_fig4_panel, run_table1_row,
)
from repro.analysis.tables import BUGGY_TARGETS
from repro.core import (
    CampaignConfig, PuzzleCorpus, resume_campaign, resume_fleet,
    run_campaign, run_fleet,
)
from repro.core.cracker import FileCracker
from repro.model.fields import ParseError
from repro.protocols import all_targets, get_target
from repro.store import CampaignWorkspace, WorkspaceError, is_fleet_workspace
from repro.triage import triage_reports


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hours", type=float, default=24.0,
                        help="simulated budget in hours (default 24)")
    parser.add_argument("--max-execs", type=int, default=200_000,
                        help="hard execution bound")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign RNG seed")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "monitoring", "settrace"),
                        help="line-coverage backend (auto: sys.monitoring "
                             "on CPython 3.12+, else sys.settrace)")
    parser.add_argument("--coverage-impl", default="auto",
                        choices=("auto", "sparse", "vector"),
                        dest="coverage_impl",
                        help="coverage-map implementation (auto: the "
                             "numpy-vectorized maps when numpy imports, "
                             "else the pure-Python sparse maps; both are "
                             "bit-for-bit equivalent)")
    parser.add_argument("--batch", type=int, default=16, metavar="N",
                        dest="batch_size",
                        help="iterations per instrumentation window in "
                             "the batched execution pipeline (1 = "
                             "unbatched; results are bit-identical "
                             "either way)")


def _add_sessions_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sessions", action="store_true",
                        help="session mode: fuzz multi-packet traces over "
                             "the target's hand-written state model (all "
                             "six targets ship one)")
    parser.add_argument("--learn-states", action="store_true",
                        help="session mode over an AFLNet-style state "
                             "machine learned online from response "
                             "features — needs no hand-written state "
                             "model, works on every target")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for campaign fan-out "
                             "(default: REPRO_JOBS or cores-1; 1 = serial)")


def _add_channel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--channel-faults", type=float, default=0.0,
                        metavar="RATE", dest="channel_faults",
                        help="per-frame transport fault probability "
                             "(drop/duplicate/reorder/fragment/corrupt "
                             "in flight; 0 = perfect channel). Also "
                             "enables the differential parse oracles")
    parser.add_argument("--channel-faults-burst", type=int, default=0,
                        metavar="N", dest="channel_burst",
                        help="add a burst-loss fault kind to the menu: a "
                             "run of 2..N consecutive frames vanishes "
                             "(needs --channel-faults > 0; 0 = off)")
    parser.add_argument("--differential", action="store_true",
                        default=None,
                        help="force the differential parse oracles on, "
                             "even without channel faults (default: "
                             "enabled exactly when --channel-faults > 0)")
    parser.add_argument("--steer-divergence", action="store_true",
                        dest="steer_divergence",
                        help="divergence-aware seed scoring: a coverage-"
                             "stale input hitting a first-seen parse-"
                             "divergence site still enters the corpus "
                             "(implies the differential oracles)")


def _add_net_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--target-url", default=None, metavar="URL",
                        dest="target_url",
                        help="fuzz over a real TCP socket: 'loopback' "
                             "serves the target in-process on an "
                             "ephemeral port (full coverage feedback), "
                             "'tcp://host:port' drives a live endpoint "
                             "black-box")
    parser.add_argument("--net-framing", default="peachstar",
                        choices=("peachstar", "raw"), dest="net_framing",
                        help="wire dialect for --target-url: the "
                             "harness envelope (exact in-process parity) "
                             "or the protocol's own raw stream framing")
    parser.add_argument("--timeout-ms", type=float, default=1000.0,
                        dest="timeout_ms",
                        help="wall-clock wait for one response over a "
                             "socket before treating it as silence")
    parser.add_argument("--reconnect", type=int, default=1,
                        help="reconnect attempts when a socket endpoint "
                             "drops the connection mid-session")
    parser.add_argument("--concurrency", type=int, default=1, metavar="N",
                        help="interleave N sessions round-robin over one "
                             "event loop against a shared-state server "
                             "(session mode only; implies --target-url "
                             "loopback when none is given)")


def _net_config(args):
    """The NetConfig implied by the net args, or None (in-process path)."""
    url = getattr(args, "target_url", None)
    concurrency = getattr(args, "concurrency", 1)
    if url is None and concurrency <= 1:
        return None
    from repro.net.config import NetConfig
    return NetConfig(url=url if url is not None else "loopback",
                     framing=getattr(args, "net_framing", "peachstar"),
                     timeout_ms=getattr(args, "timeout_ms", 1000.0),
                     reconnect=getattr(args, "reconnect", 1),
                     concurrency=concurrency)


def _config(args) -> CampaignConfig:
    return CampaignConfig(budget_hours=args.hours,
                          max_executions=args.max_execs,
                          coverage_backend=args.backend,
                          coverage_impl=getattr(args, "coverage_impl",
                                                "auto"),
                          batch_size=getattr(args, "batch_size", 16),
                          sessions=getattr(args, "sessions", False),
                          learn_states=getattr(args, "learn_states", False),
                          channel_faults=getattr(args, "channel_faults", 0.0),
                          channel_burst=getattr(args, "channel_burst", 0),
                          differential=getattr(args, "differential", None),
                          steer_divergence=getattr(args, "steer_divergence",
                                                   False),
                          net=_net_config(args),
                          workspace=getattr(args, "workspace", None))


def _print_campaign_summary(result, verbose: bool = False) -> None:
    print(f"engine={result.engine_name} target={result.target_name}")
    print(f"executions={result.executions} "
          f"paths={result.final_paths} edges={result.final_edges}")
    learned = result.stats.get("learned_states", 0)
    if learned:
        print(f"learned states: {learned} "
              f"(traces: {result.stats.get('traces', 0)})")
    print(f"unique crashes: {len(result.unique_crashes)}")
    for report in result.unique_crashes:
        hours = result.crash_times.get(report.dedup_key, 0.0)
        print(f"  [{hours:5.1f}h] {report.summary_line()}")
    if result.unique_divergences:
        faults = result.stats.get("channel_faults", 0)
        suffix = f" (channel faults injected: {faults})" if faults else ""
        print(f"unique divergences: "
              f"{len(result.unique_divergences)}{suffix}")
        for report in result.unique_divergences:
            print(f"  {report.summary_line()}")
    if verbose and result.unique_crashes:
        print()
        for report in result.unique_crashes:
            print(report.render())
            print()
    if verbose and result.unique_divergences:
        print()
        for report in result.unique_divergences:
            print(report.render())
            print()


def cmd_targets(_args) -> int:
    print(f"{'name':<13} {'paper project':<16} {'bugs':>4} "
          f"{'sessions':>8}  description")
    for spec in all_targets():
        sessions = "yes" if spec.supports_sessions else "-"
        print(f"{spec.name:<13} {spec.paper_project:<16} "
              f"{spec.seeded_bug_count:>4} {sessions:>8}  "
              f"{spec.description}")
    return 0


def cmd_serve(args) -> int:
    spec = get_target(args.target)
    from repro.net.serve import serve_forever
    try:
        serve_forever(spec, args.host, args.port,
                      shared_state=args.shared_state, framing=args.framing)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 2
    return 0


def cmd_fuzz(args) -> int:
    spec = get_target(args.target)
    try:
        result = run_campaign(args.engine, spec, seed=args.seed,
                              config=_config(args))
    except (WorkspaceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_campaign_summary(result, args.verbose)
    if args.workspace:
        print(f"workspace persisted to {args.workspace} "
              "(continue with `peachstar resume`, analyse with "
              "`peachstar triage --workspace`)")
    return 0


def cmd_fleet(args) -> int:
    spec = get_target(args.target)
    try:
        fleet = run_fleet(args.engine, spec, shards=args.shards,
                          workspace_dir=args.workspace, seed=args.seed,
                          sync_every=args.sync_every, config=_config(args),
                          max_workers=args.jobs)
    except (WorkspaceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_fleet_table(fleet))
    if args.verbose:
        for report in (fleet.merged_crashes.unique_reports()
                       + fleet.merged_divergences.unique_reports()):
            print()
            print(report.render())
    print(f"fleet persisted to {args.workspace} "
          "(continue with `peachstar resume`)")
    return 0


def cmd_resume(args) -> int:
    try:
        if is_fleet_workspace(args.workspace):
            fleet = resume_fleet(args.workspace, max_workers=args.jobs)
            print(render_fleet_table(fleet))
            if args.verbose:
                for report in (fleet.merged_crashes.unique_reports()
                               + fleet.merged_divergences.unique_reports()):
                    print()
                    print(report.render())
            return 0
        result = resume_campaign(args.workspace)
    except WorkspaceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_campaign_summary(result, args.verbose)
    return 0


def cmd_triage(args) -> int:
    backend = args.backend
    try:
        if args.workspace:
            workspace = CampaignWorkspace(args.workspace)
            manifest = workspace.load_manifest()
            spec = get_target(manifest["target"])
            if args.target and args.target != spec.name:
                print(f"error: workspace belongs to {spec.name!r}, "
                      f"not {args.target!r}", file=sys.stderr)
                return 2
            if backend == "auto":
                backend = manifest["config"].get("coverage_backend", "auto")
            crashes = (workspace.load_crash_reports()
                       + workspace.load_divergence_reports())
            out_dir = args.out or workspace.repro_dir
        else:
            if not args.target:
                print("error: give a target name or --workspace DIR",
                      file=sys.stderr)
                return 2
            spec = get_target(args.target)
            result = run_campaign("peach-star", spec, seed=args.seed,
                                  config=_config(args))
            crashes = result.unique_crashes + result.unique_divergences
            out_dir = args.out or f"peachstar-triage-{spec.name}"
    except (WorkspaceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not crashes:
        print(f"no findings to triage on {spec.name}")
        return 0
    report = triage_reports(
        spec, crashes, minimize=not args.no_minimize,
        max_executions_per_crash=args.max_triage_execs, out_dir=out_dir,
        coverage_backend=backend, jobs=args.jobs,
        net_url=getattr(args, "net_url", None))
    print(render_triage_table(report))
    if args.verbose:
        for crash in report.crashes:
            print()
            print(crash.final_report.render())
    return 0


def cmd_compare(args) -> int:
    spec = get_target(args.target)
    panel = run_fig4_panel(spec, repetitions=args.repetitions,
                           budget_hours=args.hours, base_seed=args.seed,
                           config=_config(args), jobs=args.jobs)
    print(render_panel_report(panel))
    return 0


def cmd_crack(args) -> int:
    spec = get_target(args.target)
    try:
        packet = bytes.fromhex(args.hex)
    except ValueError:
        print(f"error: {args.hex!r} is not valid hex", file=sys.stderr)
        return 2
    pit = spec.make_pit()
    corpus = PuzzleCorpus()
    cracker = FileCracker(pit, corpus)
    matched = False
    for model in pit:
        try:
            tree = model.parse(packet)
        except ParseError:
            continue
        matched = True
        print(tree.pretty())
        print()
    if not matched:
        print("packet is not legal under any data model of "
              f"{spec.name}'s pit")
        return 1
    new_puzzles = cracker.crack(packet)
    print(f"cracked into {new_puzzles} puzzles across "
          f"{corpus.rule_count()} construction rules")
    return 0


def cmd_table1(args) -> int:
    rows = [run_table1_row(name, repetitions=args.repetitions,
                           budget_hours=args.hours, base_seed=args.seed,
                           config=_config(args), jobs=args.jobs)
            for name in BUGGY_TARGETS]
    print(render_table1(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="peachstar",
        description="Peach*: coverage-guided ICS protocol fuzzing "
                    "(DAC 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list protocol targets")

    serve = sub.add_parser(
        "serve", help="expose a simulated protocol server on a TCP port")
    serve.add_argument("target", help="target name (see `targets`)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=2404,
                       help="bind port (0 = ephemeral; default 2404)")
    serve.add_argument("--shared-state", action="store_true",
                       dest="shared_state",
                       help="all connections race one server instance "
                            "and one heap instead of getting a private "
                            "session each")
    serve.add_argument("--framing", default="peachstar",
                       choices=("peachstar", "raw"),
                       help="wire dialect: the harness envelope (what a "
                            "SocketTarget speaks) or the protocol's own "
                            "raw stream framing")

    fuzz = sub.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("target", help="target name (see `targets`)")
    fuzz.add_argument("--engine", default="peach-star",
                      choices=("peach", "peach-star"))
    fuzz.add_argument("--verbose", action="store_true",
                      help="print full crash reports")
    fuzz.add_argument("--workspace", default=None, metavar="DIR",
                      help="persist the campaign to DIR (resumable)")
    _add_sessions_arg(fuzz)
    _add_channel_args(fuzz)
    _add_net_args(fuzz)
    _add_budget_args(fuzz)

    fleet = sub.add_parser(
        "fleet", help="run N synced shards with corpus exchange")
    fleet.add_argument("target", help="target name (see `targets`)")
    fleet.add_argument("--engine", default="peach-star",
                       choices=("peach", "peach-star"))
    fleet.add_argument("--shards", type=int, default=4,
                       help="number of independently-seeded shards")
    fleet.add_argument("--sync-every", type=int, default=200,
                       help="executions between corpus-sync rounds")
    fleet.add_argument("--workspace", required=True, metavar="DIR",
                       help="fleet workspace directory (resumable)")
    fleet.add_argument("--verbose", action="store_true",
                       help="print full crash reports")
    _add_sessions_arg(fleet)
    _add_channel_args(fleet)
    _add_net_args(fleet)
    _add_budget_args(fleet)
    _add_jobs_arg(fleet)

    resume = sub.add_parser(
        "resume", help="continue a persisted campaign or fleet from "
                       "its checkpoints")
    resume.add_argument("workspace", help="campaign or fleet workspace "
                                          "directory")
    resume.add_argument("--verbose", action="store_true",
                        help="print full crash reports")
    _add_jobs_arg(resume)

    triage = sub.add_parser(
        "triage", help="minimize, bucket and export crash reproducers")
    triage.add_argument("target", nargs="?", default=None,
                        help="target to fuzz + triage (omit with "
                             "--workspace)")
    triage.add_argument("--workspace", default=None, metavar="DIR",
                        help="triage the crashes persisted in DIR instead "
                             "of running a fresh campaign")
    triage.add_argument("--out", default=None, metavar="DIR",
                        help="reproducer output directory (default: "
                             "<workspace>/repro or ./peachstar-triage-"
                             "<target>)")
    triage.add_argument("--no-minimize", action="store_true",
                        help="skip test-case minimization")
    triage.add_argument("--max-triage-execs", type=int, default=3000,
                        help="sanitizer-execution budget per crash")
    triage.add_argument("--verbose", action="store_true",
                        help="print the (minimized) crash reports")
    triage.add_argument("--net-url", default=None, metavar="URL",
                        dest="net_url",
                        help="emit reproducer scripts that replay over a "
                             "socket against URL (tcp://host:port; the "
                             "script's argv can override the endpoint)")
    _add_sessions_arg(triage)
    _add_channel_args(triage)
    _add_budget_args(triage)
    _add_jobs_arg(triage)

    comp = sub.add_parser("compare", help="Peach vs Peach* on one target")
    comp.add_argument("target")
    comp.add_argument("--repetitions", type=int, default=2)
    _add_budget_args(comp)
    _add_jobs_arg(comp)

    crack = sub.add_parser("crack", help="crack a hex packet into puzzles")
    crack.add_argument("target")
    crack.add_argument("hex", help="packet bytes as hex")

    table1 = sub.add_parser("table1", help="reproduce the paper's Table I")
    table1.add_argument("--repetitions", type=int, default=2)
    _add_budget_args(table1)
    _add_jobs_arg(table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "targets": cmd_targets,
        "serve": cmd_serve,
        "fuzz": cmd_fuzz,
        "fleet": cmd_fleet,
        "resume": cmd_resume,
        "triage": cmd_triage,
        "compare": cmd_compare,
        "crack": cmd_crack,
        "table1": cmd_table1,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
