"""AFL-style edge-coverage bitmap (the paper's instrumentation model).

Paper §IV-B inserts, at every branch point::

    cur_location = <COMPILE_TIME_RANDOM>;
    shared_mem[cur_location ^ prev_location]++;
    prev_location = cur_location >> 1;

:class:`CoverageMap` is the per-execution ``shared_mem`` array;
:class:`GlobalCoverage` is the accumulated "virgin map" that decides
whether a seed reached "a new program execution state that has not
appeared before" — i.e. whether it is *valuable*.  Hit counts are bucketed
into power-of-two classes like AFL so loop-count changes register as new
states without exploding the path count.
"""

from __future__ import annotations

from typing import Iterable, Tuple

MAP_SIZE_POW2 = 16
MAP_SIZE = 1 << MAP_SIZE_POW2
_MAP_MASK = MAP_SIZE - 1

def bucket_count(count: int) -> int:
    """Map a raw edge hit count onto its AFL bucket bit.

    AFL's count_class_lookup: 1→1, 2→2, 3→4, 4-7→8, 8-15→16, 16-31→32,
    32-127→64, 128+→128.
    """
    if count <= 0:
        return 0
    if count == 1:
        return 1
    if count == 2:
        return 2
    if count == 3:
        return 4
    if count <= 7:
        return 8
    if count <= 15:
        return 16
    if count <= 31:
        return 32
    if count <= 127:
        return 64
    return 128


class CoverageMap:
    """Per-execution edge hit map (``shared_mem`` analog)."""

    __slots__ = ("counts", "_prev")

    def __init__(self):
        self.counts = bytearray(MAP_SIZE)
        self._prev = 0

    def reset(self) -> None:
        """Clear the map for the next execution."""
        for index in range(MAP_SIZE):
            self.counts[index] = 0
        self._prev = 0

    def fast_reset(self) -> None:
        """Clear by reallocation (faster than zeroing in CPython)."""
        self.counts = bytearray(MAP_SIZE)
        self._prev = 0

    def visit(self, cur_location: int) -> None:
        """Record the transition into basic block *cur_location*.

        Implements the paper's snippet: bump ``shared_mem[cur ^ prev]``
        then shift ``prev``.
        """
        index = (cur_location ^ self._prev) & _MAP_MASK
        count = self.counts[index]
        if count < 255:
            self.counts[index] = count + 1
        self._prev = (cur_location >> 1) & _MAP_MASK

    def iter_hits(self) -> Iterable[Tuple[int, int]]:
        """Yield ``(edge_index, raw_count)`` for every touched edge."""
        counts = self.counts
        for index in range(MAP_SIZE):
            if counts[index]:
                yield index, counts[index]

    def edge_count(self) -> int:
        """Number of distinct edges touched this execution."""
        return sum(1 for byte in self.counts if byte)

    def path_hash(self) -> int:
        """Order-insensitive hash of the bucketed map (path identity)."""
        acc = 0xCBF29CE484222325
        counts = self.counts
        for index in range(MAP_SIZE):
            count = counts[index]
            if count:
                acc ^= (index << 8) | bucket_count(count)
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc


class GlobalCoverage:
    """Accumulated bucketed coverage across the whole campaign."""

    __slots__ = ("virgin", "edges_seen")

    def __init__(self):
        self.virgin = bytearray(MAP_SIZE)
        self.edges_seen = 0

    def merge(self, execution_map: CoverageMap) -> bool:
        """Fold *execution_map* in; return True when new state was reached.

        New state = a never-seen edge, or a never-seen hit-count bucket on
        a known edge — AFL's ``has_new_bits``.
        """
        new_bits = False
        virgin = self.virgin
        for index, count in execution_map.iter_hits():
            bit = bucket_count(count)
            seen = virgin[index]
            if seen & bit == 0:
                if seen == 0:
                    self.edges_seen += 1
                virgin[index] = seen | bit
                new_bits = True
        return new_bits

    def would_be_new(self, execution_map: CoverageMap) -> bool:
        """Non-mutating variant of :meth:`merge`."""
        virgin = self.virgin
        for index, count in execution_map.iter_hits():
            if virgin[index] & bucket_count(count) == 0:
                return True
        return False

    def edge_coverage(self) -> int:
        """Total distinct edges observed so far."""
        return self.edges_seen
