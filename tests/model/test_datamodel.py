"""Unit tests for DataModel build/parse, Pit, and the Fig. 1 example."""

import pytest

from repro.model import (
    Blob, Block, Choice, DataModel, ModelError, Number, ParseError, Pit,
    Repeat, Str, Transformer, ValueProvider, size_of,
)


class TestPaperFigure1:
    def test_paper_figure1_model(self, fig1_model):
        """The README/DESIGN Fig. 1 model builds a valid packet."""
        tree = fig1_model.build_default()
        raw = tree.raw
        # ID(1) + Size(2) + Data(2+4+3) + CRC(4)
        assert len(raw) == 16
        assert raw[0] == 0x7F
        assert tree.find("Size").value == 9

    def test_fig1_roundtrip_with_fixup_verification(self, fig1_model):
        raw = fig1_model.build_default().raw
        parsed = fig1_model.parse(raw, verify_fixups=True)
        assert parsed.find("SampleRate").value == 44_100

    def test_fig1_token_mismatch_rejected(self, fig1_model):
        raw = bytearray(fig1_model.build_default().raw)
        raw[0] = 0x00  # break the ID token
        with pytest.raises(ParseError):
            fig1_model.parse(bytes(raw))


class TestBuild:
    def test_build_default_uses_field_defaults(self):
        model = DataModel("m", Block("root", [
            Number("a", 1, default=5), Str("s", default="hi"),
        ]))
        tree = model.build_default()
        assert tree.raw == b"\x05hi"

    def test_provider_overrides_leaf_values(self):
        class FixedProvider(ValueProvider):
            def leaf_value(self, field, path):
                return 9 if field.name == "a" else None

        model = DataModel("m", Block("root", [
            Number("a", 1, default=5), Number("b", 1, default=6),
        ]))
        assert model.build(FixedProvider()).raw == b"\x09\x06"

    def test_build_paths_include_nesting(self):
        seen = []

        class SpyProvider(ValueProvider):
            def leaf_value(self, field, path):
                seen.append(path)
                return None

        model = DataModel("m", Block("root", [
            Block("inner", [Number("x", 1)]),
        ]))
        model.build(SpyProvider())
        assert seen == ["root.inner.x"]

    def test_choice_default_builds_first_option(self):
        model = DataModel("m", Block("root", [
            Choice("c", [Number("a", 1, default=1),
                         Number("b", 1, default=2)]),
        ]))
        assert model.build_default().raw == b"\x01"

    def test_choice_provider_selects_option(self):
        class PickSecond(ValueProvider):
            def choose_option(self, choice, path):
                return 1

        model = DataModel("m", Block("root", [
            Choice("c", [Number("a", 1, default=1),
                         Number("b", 1, default=2)]),
        ]))
        assert model.build(PickSecond()).raw == b"\x02"

    def test_repeat_count_from_provider_clamped(self):
        class Big(ValueProvider):
            def repeat_count(self, repeat, path):
                return 100

        model = DataModel("m", Block("root", [
            Repeat("r", Number("x", 1, default=7), max_count=3),
        ]))
        assert model.build(Big()).raw == b"\x07\x07\x07"

    def test_offsets_assigned(self, fig1_model):
        tree = fig1_model.build_default()
        assert tree.find("ID").offset == 0
        assert tree.find("Size").offset == 1
        assert tree.find("Data").offset == 3
        assert tree.find("CRC").offset == 12


class TestParse:
    def test_trailing_bytes_rejected(self):
        model = DataModel("m", Block("root", [Number("a", 1)]))
        with pytest.raises(ParseError):
            model.parse(b"\x01\x02")

    def test_truncated_input_rejected(self):
        model = DataModel("m", Block("root", [Number("a", 4)]))
        with pytest.raises(ParseError):
            model.parse(b"\x01")

    def test_constraint_violation_rejected(self):
        model = DataModel("m", Block("root", [
            Number("fc", 1, default=1, values=(1, 2)),
        ]))
        with pytest.raises(ParseError):
            model.parse(b"\x07")

    def test_variable_blob_consumes_remainder(self):
        model = DataModel("m", Block("root", [
            Number("a", 1), Blob("rest"),
        ]))
        tree = model.parse(b"\x01hello")
        assert tree.find("rest").value == b"hello"

    def test_variable_blob_respects_max_length(self):
        model = DataModel("m", Block("root", [Blob("b", max_length=4)]))
        with pytest.raises(ParseError):
            model.parse(b"\x00" * 10)

    def test_choice_tries_options_in_order(self):
        model = DataModel("m", Block("root", [
            Choice("c", [
                Number("a", 1, default=1, token=True),
                Number("b", 1, default=2, token=True),
            ]),
        ]))
        assert model.parse(b"\x02").find("b").value == 2
        with pytest.raises(ParseError):
            model.parse(b"\x03")

    def test_repeat_without_count_fills_extent(self):
        model = DataModel("m", Block("root", [
            Repeat("r", Number("x", 2), max_count=8),
        ]))
        tree = model.parse(b"\x00\x01\x00\x02\x00\x03")
        assert [c.value for c in tree.find("r").children] == [1, 2, 3]

    def test_matches_predicate(self, fig1_model):
        raw = fig1_model.build_default().raw
        assert fig1_model.matches(raw)
        assert not fig1_model.matches(raw[:-1])

    def test_parse_raw_equals_input(self, fig1_model):
        raw = fig1_model.build_default().raw
        assert fig1_model.parse(raw).raw == raw


class TestLinear:
    def test_linear_lists_leaves_in_order(self, fig1_model):
        names = [f.name for f in fig1_model.linear()]
        assert names == ["ID", "Size", "CompressionCode", "SampleRate",
                         "ExtraData", "CRC"]

    def test_linear_uses_default_shape_for_choice(self):
        model = DataModel("m", Block("root", [
            Choice("c", [Number("a", 1), Number("b", 1)]),
        ]))
        assert [f.name for f in model.linear()] == ["a"]

    def test_linear_cached(self, fig1_model):
        assert fig1_model.linear() is fig1_model.linear()


class TestTransformer:
    def test_transformer_applied_on_wire(self):
        class Xor(Transformer):
            def encode(self, data):
                return bytes(b ^ 0x55 for b in data)

            def decode(self, data):
                return bytes(b ^ 0x55 for b in data)

        model = DataModel("m", Block("root", [Number("a", 1, default=0)]),
                          transformer=Xor())
        wire = model.build_bytes()
        assert wire == b"\x55"
        assert model.parse(wire).find("a").value == 0


class TestPit:
    def test_pit_lookup_and_iteration(self, fig1_model):
        pit = Pit("p", [fig1_model])
        assert pit.model("fig1") is fig1_model
        assert len(pit) == 1
        assert list(pit) == [fig1_model]

    def test_pit_rejects_duplicates(self, fig1_model):
        with pytest.raises(ModelError):
            Pit("p", [fig1_model, fig1_model])

    def test_pit_rejects_empty(self):
        with pytest.raises(ModelError):
            Pit("p", [])

    def test_pit_unknown_model(self, fig1_model):
        with pytest.raises(ModelError):
            Pit("p", [fig1_model]).model("ghost")
