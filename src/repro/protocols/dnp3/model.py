"""Peach pit for the DNP3 target.

Models describe the *logical* frame (CRC-free); the
:class:`~repro.protocols.dnp3.codec.Dnp3CrcTransformer` interleaves the
header/block CRCs on serialization — the Transformer + Fixup split Peach
itself uses for DNP3.  One data model per request shape, sharing the
link/transport/app header rules plus the object-header rules
(``group``/``variation``/``qualifier``/range) across models.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model import Blob, Block, DataModel, Number, Pit, size_of
from repro.protocols.dnp3 import codec
from repro.state.model import State, StateModel, Transition


def _request_model(name: str, app_fc: int, object_fields: Sequence,
                   weight: float = 1.0) -> DataModel:
    body_children: List = [
        Number("transport", 1,
               default=codec.TRANSPORT_FIN | codec.TRANSPORT_FIR,
               semantic="transport_header"),
        Number("app_ctrl", 1, default=0xC0, semantic="app_ctrl"),
        Number("app_fc", 1, default=app_fc, token=True,
               semantic="app_function"),
    ]
    body_children.extend(object_fields)
    root = Block(f"{name}.frame", [
        Number("start0", 1, default=codec.START0, token=True,
               semantic="start0"),
        Number("start1", 1, default=codec.START1, token=True,
               semantic="start1"),
        size_of(Number("length", 1, semantic="link_length"), "link_body",
                adjust=5),
        Number("link_ctrl", 1,
               default=codec.LINK_PRM | codec.LINK_FC_UNCONFIRMED_USER_DATA,
               semantic="link_ctrl"),
        Number("dest", 2, default=1, endian="little", semantic="dest"),
        Number("src", 2, default=2, endian="little", semantic="src"),
        Block("link_body", body_children),
    ], )
    model = DataModel(f"dnp3.{name}", root, weight=weight,
                      transformer=codec.Dnp3CrcTransformer())
    return model


def _object_header(group: int, variation: int, qualifier: int) -> List:
    return [
        Number("group", 1, default=group, token=True, semantic="group"),
        Number("variation", 1, default=variation, semantic="variation"),
        Number("qualifier", 1, default=qualifier, semantic="qualifier"),
    ]


def make_pit() -> Pit:
    """Build the DNP3 pit (15 request models)."""
    models = [
        # class-data poll: the canonical integrity scan
        _request_model("read_class_data", codec.FC_READ,
                       _object_header(60, 1, codec.QC_ALL)),
        _request_model("read_binaries", codec.FC_READ,
                       _object_header(1, 2, codec.QC_START_STOP_8) + [
                           Number("range_start", 1, default=0,
                                  semantic="range_start"),
                           Number("range_stop", 1, default=7,
                                  semantic="range_stop"),
                       ]),
        _request_model("read_binaries_wide", codec.FC_READ,
                       _object_header(1, 1, codec.QC_START_STOP_16) + [
                           Number("range_start16", 2, default=0,
                                  endian="little", semantic="range_start"),
                           Number("range_stop16", 2, default=15,
                                  endian="little", semantic="range_stop"),
                       ]),
        _request_model("read_counters", codec.FC_READ,
                       _object_header(20, 1, codec.QC_COUNT_8) + [
                           Number("count", 1, default=4, semantic="count"),
                       ]),
        _request_model("read_analogs", codec.FC_READ,
                       _object_header(30, 2, codec.QC_ALL)),
        _request_model("write_time", codec.FC_WRITE,
                       _object_header(50, 1, codec.QC_COUNT_8) + [
                           Number("count", 1, default=1, semantic="count"),
                           Blob("timestamp", default=b"\x00\x60\x8e\x31"
                                                     b"\x96\x01",
                                length=6, semantic="timestamp"),
                       ]),
        _request_model("clear_restart", codec.FC_WRITE,
                       _object_header(80, 1, codec.QC_START_STOP_8) + [
                           Number("range_start", 1, default=7,
                                  semantic="range_start"),
                           Number("range_stop", 1, default=7,
                                  semantic="range_stop"),
                       ]),
        _request_model("select_crob", codec.FC_SELECT,
                       _object_header(12, 1, codec.QC_INDEX_8) + [
                           Number("count", 1, default=1, semantic="count"),
                           Number("index", 1, default=0, semantic="index"),
                           Number("crob_code", 1, default=0x01,
                                  semantic="crob_code"),
                           Number("crob_count", 1, default=1,
                                  semantic="crob_count"),
                           Number("on_time", 4, default=100,
                                  endian="little", semantic="on_time"),
                           Number("off_time", 4, default=100,
                                  endian="little", semantic="off_time"),
                           Number("status", 1, default=0,
                                  semantic="control_status"),
                       ]),
        _request_model("operate_crob", codec.FC_OPERATE,
                       _object_header(12, 1, codec.QC_INDEX_8) + [
                           Number("count", 1, default=1, semantic="count"),
                           Number("index", 1, default=0, semantic="index"),
                           Number("crob_code", 1, default=0x01,
                                  semantic="crob_code"),
                           Number("crob_count", 1, default=1,
                                  semantic="crob_count"),
                           Number("on_time", 4, default=100,
                                  endian="little", semantic="on_time"),
                           Number("off_time", 4, default=100,
                                  endian="little", semantic="off_time"),
                           Number("status", 1, default=0,
                                  semantic="control_status"),
                       ]),
        _request_model("direct_operate_analog", codec.FC_DIRECT_OPERATE,
                       _object_header(41, 2, codec.QC_INDEX_8) + [
                           Number("count", 1, default=1, semantic="count"),
                           Number("index", 1, default=0, semantic="index"),
                           Number("analog_value", 2, default=1000,
                                  endian="little", semantic="analog_value"),
                           Number("status", 1, default=0,
                                  semantic="control_status"),
                       ]),
        _request_model("freeze_counters", codec.FC_FREEZE,
                       _object_header(20, 0, codec.QC_ALL)),
        _request_model("cold_restart", codec.FC_COLD_RESTART, []),
        _request_model("delay_measure", codec.FC_DELAY_MEASURE, []),
        _request_model("confirm", codec.FC_CONFIRM, [], weight=0.3),
        # coarse model: opaque APDU after the app function code
        _request_model("raw_objects", codec.FC_READ, [
            Blob("objects", default=bytes((60, 2, 0x06)), max_length=48,
                 semantic="raw_objects"),
        ], weight=0.6),
    ]
    raw = models[-1]
    fc_field = raw.root.child("link_body").child("app_fc")
    fc_field.token = False
    return Pit("dnp3", models)


def make_state_model() -> StateModel:
    """Session state machine for the DNP3 outstation.

    Tracks the two pieces of application-layer state the single-packet
    loop resets away: the device-restart IIN bit (set until a read or an
    explicit IIN write clears it — ``cold_restart`` re-arms it) and the
    select-before-operate latch (``operate_crob`` only succeeds against
    the point a preceding ``select_crob`` latched *in the same
    session*).  No response model is declared: the outstation answers
    with FC 129 response APDUs that the request-only pit deliberately
    does not model, so transitions carry no captures.
    """
    restart = State("restart", (
        Transition("dnp3.read_class_data", "operational", weight=1.2),
        Transition("dnp3.clear_restart", "operational"),
        Transition("dnp3.select_crob", "selected"),
        Transition("dnp3.read_binaries", "restart", weight=0.5),
        Transition("dnp3.delay_measure", "restart", weight=0.4),
        Transition("dnp3.raw_objects", "restart", weight=0.4),
    ))
    operational = State("operational", (
        Transition("dnp3.select_crob", "selected", weight=1.2),
        Transition("dnp3.read_class_data", "operational", weight=0.6),
        Transition("dnp3.read_binaries", "operational", weight=0.5),
        Transition("dnp3.read_counters", "operational", weight=0.4),
        Transition("dnp3.read_analogs", "operational", weight=0.4),
        Transition("dnp3.direct_operate_analog", "operational",
                   weight=0.5),
        Transition("dnp3.freeze_counters", "operational", weight=0.3),
        Transition("dnp3.write_time", "operational", weight=0.3),
        Transition("dnp3.cold_restart", "restart", weight=0.4),
        Transition("dnp3.raw_objects", "operational", weight=0.4),
    ))
    selected = State("selected", (
        Transition("dnp3.operate_crob", "operational", weight=1.5),
        Transition("dnp3.select_crob", "selected", weight=0.5),
        Transition("dnp3.confirm", "selected", weight=0.3),
        Transition("dnp3.read_binaries", "selected", weight=0.4),
        Transition("dnp3.cold_restart", "restart", weight=0.3),
    ))
    return StateModel("dnp3.session", "restart",
                      (restart, operational, selected))
