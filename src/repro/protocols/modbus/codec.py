"""Modbus/TCP frame codec (MBAP + PDU) — safe helpers.

Pure build/parse functions for well-formed Modbus frames, used by the
data models' defaults, the tests and the examples.  The fuzzed code path
is :mod:`repro.protocols.modbus.server`, which re-implements parsing
C-style against the simulated heap.
"""

from __future__ import annotations

from dataclasses import dataclass

PROTOCOL_ID = 0

# Function codes (the "opcode" field of the paper's motivation section).
FC_READ_COILS = 0x01
FC_READ_DISCRETE_INPUTS = 0x02
FC_READ_HOLDING_REGISTERS = 0x03
FC_READ_INPUT_REGISTERS = 0x04
FC_WRITE_SINGLE_COIL = 0x05
FC_WRITE_SINGLE_REGISTER = 0x06
FC_READ_EXCEPTION_STATUS = 0x07
FC_DIAGNOSTICS = 0x08
FC_GET_COMM_EVENT_COUNTER = 0x0B
FC_WRITE_MULTIPLE_COILS = 0x0F
FC_WRITE_MULTIPLE_REGISTERS = 0x10
FC_REPORT_SERVER_ID = 0x11
FC_MASK_WRITE_REGISTER = 0x16
FC_READ_WRITE_MULTIPLE_REGISTERS = 0x17
FC_READ_DEVICE_IDENTIFICATION = 0x2B

ALL_FUNCTION_CODES = (
    FC_READ_COILS, FC_READ_DISCRETE_INPUTS, FC_READ_HOLDING_REGISTERS,
    FC_READ_INPUT_REGISTERS, FC_WRITE_SINGLE_COIL, FC_WRITE_SINGLE_REGISTER,
    FC_READ_EXCEPTION_STATUS, FC_DIAGNOSTICS, FC_GET_COMM_EVENT_COUNTER,
    FC_WRITE_MULTIPLE_COILS, FC_WRITE_MULTIPLE_REGISTERS,
    FC_REPORT_SERVER_ID, FC_MASK_WRITE_REGISTER,
    FC_READ_WRITE_MULTIPLE_REGISTERS, FC_READ_DEVICE_IDENTIFICATION,
)

# Exception codes
EX_ILLEGAL_FUNCTION = 0x01
EX_ILLEGAL_DATA_ADDRESS = 0x02
EX_ILLEGAL_DATA_VALUE = 0x03
EX_SERVER_DEVICE_FAILURE = 0x04


@dataclass
class MbapHeader:
    transaction_id: int
    protocol_id: int
    length: int
    unit_id: int


def build_mbap(transaction_id: int, unit_id: int, pdu: bytes) -> bytes:
    """Prepend an MBAP header; ``length`` covers unit id + PDU."""
    length = len(pdu) + 1
    return (transaction_id.to_bytes(2, "big")
            + PROTOCOL_ID.to_bytes(2, "big")
            + length.to_bytes(2, "big")
            + bytes((unit_id,))
            + pdu)


def parse_mbap(frame: bytes) -> tuple:
    """Split a frame into ``(MbapHeader, pdu)``; raises ValueError."""
    if len(frame) < 8:
        raise ValueError("frame shorter than MBAP header + function code")
    header = MbapHeader(
        transaction_id=int.from_bytes(frame[0:2], "big"),
        protocol_id=int.from_bytes(frame[2:4], "big"),
        length=int.from_bytes(frame[4:6], "big"),
        unit_id=frame[6],
    )
    if header.protocol_id != PROTOCOL_ID:
        raise ValueError(f"bad protocol id {header.protocol_id}")
    if header.length != len(frame) - 6:
        raise ValueError(
            f"MBAP length {header.length} != actual {len(frame) - 6}")
    return header, frame[7:]


def build_read_request(fc: int, address: int, quantity: int,
                       transaction_id: int = 1, unit_id: int = 1) -> bytes:
    """FC 0x01-0x04 request."""
    pdu = bytes((fc,)) + address.to_bytes(2, "big") + quantity.to_bytes(2, "big")
    return build_mbap(transaction_id, unit_id, pdu)


def build_write_single(fc: int, address: int, value: int,
                       transaction_id: int = 1, unit_id: int = 1) -> bytes:
    """FC 0x05/0x06 request."""
    pdu = bytes((fc,)) + address.to_bytes(2, "big") + value.to_bytes(2, "big")
    return build_mbap(transaction_id, unit_id, pdu)


def build_write_multiple_registers(address: int, values,
                                   transaction_id: int = 1,
                                   unit_id: int = 1) -> bytes:
    """FC 0x10 request with consistent quantity/byte count."""
    data = b"".join(value.to_bytes(2, "big") for value in values)
    pdu = (bytes((FC_WRITE_MULTIPLE_REGISTERS,))
           + address.to_bytes(2, "big")
           + len(values).to_bytes(2, "big")
           + bytes((len(data),))
           + data)
    return build_mbap(transaction_id, unit_id, pdu)


def build_write_multiple_coils(address: int, bits,
                               transaction_id: int = 1,
                               unit_id: int = 1) -> bytes:
    """FC 0x0F request packing *bits* (booleans) LSB-first."""
    quantity = len(bits)
    byte_count = (quantity + 7) // 8
    packed = bytearray(byte_count)
    for index, bit in enumerate(bits):
        if bit:
            packed[index // 8] |= 1 << (index % 8)
    pdu = (bytes((FC_WRITE_MULTIPLE_COILS,))
           + address.to_bytes(2, "big")
           + quantity.to_bytes(2, "big")
           + bytes((byte_count,))
           + bytes(packed))
    return build_mbap(transaction_id, unit_id, pdu)


def build_mask_write(address: int, and_mask: int, or_mask: int,
                     transaction_id: int = 1, unit_id: int = 1) -> bytes:
    """FC 0x16 request."""
    pdu = (bytes((FC_MASK_WRITE_REGISTER,))
           + address.to_bytes(2, "big")
           + and_mask.to_bytes(2, "big")
           + or_mask.to_bytes(2, "big"))
    return build_mbap(transaction_id, unit_id, pdu)


def build_read_write_multiple(read_address: int, read_quantity: int,
                              write_address: int, values,
                              transaction_id: int = 1,
                              unit_id: int = 1) -> bytes:
    """FC 0x17 request."""
    data = b"".join(value.to_bytes(2, "big") for value in values)
    pdu = (bytes((FC_READ_WRITE_MULTIPLE_REGISTERS,))
           + read_address.to_bytes(2, "big")
           + read_quantity.to_bytes(2, "big")
           + write_address.to_bytes(2, "big")
           + len(values).to_bytes(2, "big")
           + bytes((len(data),))
           + data)
    return build_mbap(transaction_id, unit_id, pdu)


def build_diagnostics(sub_function: int, data: int = 0,
                      transaction_id: int = 1, unit_id: int = 1) -> bytes:
    """FC 0x08 request."""
    pdu = (bytes((FC_DIAGNOSTICS,))
           + sub_function.to_bytes(2, "big")
           + data.to_bytes(2, "big"))
    return build_mbap(transaction_id, unit_id, pdu)


def parse_response(frame: bytes) -> tuple:
    """Return ``(fc, payload, exception_code)``; exception_code is None
    for normal responses."""
    _, pdu = parse_mbap(frame)
    if not pdu:
        raise ValueError("empty PDU")
    fc = pdu[0]
    if fc & 0x80:
        if len(pdu) < 2:
            raise ValueError("truncated exception response")
        return fc & 0x7F, b"", pdu[1]
    return fc, pdu[1:], None
