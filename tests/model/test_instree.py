"""Unit tests for the Instantiation Tree (paper Definitions 1 & 2)."""

from repro.model import Blob, Block, Number
from repro.model.datamodel import DataModel
from repro.model.instree import InsNode


class TestPuzzles:
    def test_every_subtree_is_a_puzzle(self, fig1_model):
        """Paper Alg. 2: leaves AND internal nodes each contribute one
        puzzle; Fig. 1's tree has 8 nodes."""
        tree = fig1_model.build_default()
        puzzles = list(tree.iter_puzzles())
        assert len(puzzles) == 8

    def test_internal_puzzle_joints_children_in_order(self, fig1_model):
        """Definition 2's example: the Data puzzle is the in-order joint
        of CompressionCode, SampleRate and ExtraData."""
        tree = fig1_model.build_default()
        data_node = tree.find("Data")
        expected = b"".join(child.raw for child in data_node.children)
        assert data_node.raw == expected
        puzzles = dict()
        for signature, raw in tree.iter_puzzles():
            puzzles.setdefault(signature.semantic, raw)
        assert puzzles["Data"] == expected

    def test_dfs_order_is_post_order(self, fig1_model):
        tree = fig1_model.build_default()
        semantics = [sig.semantic for sig, _raw in tree.iter_puzzles()]
        # children appear before their parent (post-order joint)
        assert semantics.index("CompressionCode") < semantics.index("Data")
        assert semantics.index("Data") < semantics.index("root")
        assert semantics[-1] == "root"

    def test_root_puzzle_is_whole_packet(self, fig1_model):
        tree = fig1_model.build_default()
        puzzles = list(tree.iter_puzzles())
        assert puzzles[-1][1] == tree.raw


class TestTraversal:
    def test_find_returns_first_dfs_match(self):
        inner = InsNode(Number("x", 1), value=1, raw=b"\x01")
        root = InsNode(Block("root", [Number("x", 1)]), children=[inner])
        assert root.find("x") is inner
        assert root.find("ghost") is None

    def test_iter_leaves_skips_internal_nodes(self, fig1_model):
        tree = fig1_model.build_default()
        names = [leaf.name for leaf in tree.iter_leaves()]
        assert "Data" not in names
        assert "CompressionCode" in names

    def test_leaf_values_uses_dotted_paths(self, fig1_model):
        values = fig1_model.build_default().leaf_values()
        assert values["root.Data.SampleRate"] == 44_100
        assert values["root.ID"] == 0x7F

    def test_pretty_rendering_mentions_fields(self, fig1_model):
        text = fig1_model.build_default().pretty()
        assert "SampleRate" in text
        assert "InsTree<fig1>" in text

    def test_parsed_tree_offsets_match_input(self, fig1_model):
        raw = fig1_model.build_default().raw
        tree = fig1_model.parse(raw)
        for leaf in tree.iter_leaves():
            assert raw[leaf.offset:leaf.offset + len(leaf.raw)] == leaf.raw


class TestEquivalence:
    def test_built_and_parsed_trees_agree(self, fig1_model):
        """Crack of a generated seed reproduces its InsTree exactly."""
        built = fig1_model.build_default()
        parsed = fig1_model.parse(built.raw)
        assert built.leaf_values() == parsed.leaf_values()
        built_puzzles = [(str(s), r) for s, r in built.iter_puzzles()]
        parsed_puzzles = [(str(s), r) for s, r in parsed.iter_puzzles()]
        assert built_puzzles == parsed_puzzles
