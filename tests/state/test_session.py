"""Stateful session fuzzing: traces, binder, engine, resume, triage.

The subsystem's acceptance gates live here:

* a seeded ``--sessions`` campaign on IEC 104 reaches coverage that is
  **unreachable in single-packet mode by construction** (the STARTDT
  gate is re-armed by ``reset()`` before every single-packet run);
* a killed session campaign (the kill landing mid-trace) resumes
  bit-identical, and so does a session fleet;
* session triage minimizes by dropping whole steps before shrinking the
  crashing step, and its reproducer replays the full trace.
"""

import os
import subprocess
import sys

import pytest

from dataclasses import replace

from repro.core import (
    CampaignConfig, resume_campaign, resume_fleet, run_campaign, run_fleet,
)
from repro.core.campaign import make_engine
from repro.protocols import TARGET_NAMES, all_targets, get_target
from repro.runtime.target import Target
from repro.state import (
    StateModelError, TraceBinder, TraceStep, decode_trace, encode_trace,
    is_trace_blob, trace_model_name,
)
from repro.state.model import State, StateModel, Transition
from repro.state.triage import TraceChecker, minimize_trace
from repro.store import CampaignWorkspace
from repro.triage import triage_reports

#: since PR 5 every target ships a hand-written state model
SESSION_TARGETS = TARGET_NAMES


def _session_config(**overrides):
    base = dict(budget_hours=24.0, max_executions=700, record_every=10,
                checkpoint_every=50, sessions=True)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        result.path_hashes,
    )


def _modbus_crash_trace():
    """[valid read, valid read, seeded-UAF write]: crashes at step 2."""
    pit = get_target("libmodbus").make_pit()
    good = pit.model("modbus.read_holding_registers").build_bytes()
    crash = bytearray(
        pit.model("modbus.write_multiple_registers").build_bytes())
    crash[12] = 0x04  # byte_count inconsistent with quantity: seeded UAF
    return [
        TraceStep("modbus.read_holding_registers", good),
        TraceStep("modbus.read_holding_registers", good),
        TraceStep("modbus.write_multiple_registers", bytes(crash)),
    ]


class TestTraceCodec:
    def test_encode_decode_round_trip(self):
        steps = [
            TraceStep("iec104.stopdt", b"\x68\x04\x13\x00\x00\x00",
                      state="stopped"),
            TraceStep("iec104.interrogation", b"\x68\x0e" + bytes(12),
                      state="stopped",
                      bind={"recv_seq_lo": "peer_send_lo"},
                      capture={"peer_send_lo": "send_seq_lo"},
                      expect="iec104.interrogation"),
        ]
        blob = encode_trace(steps)
        assert is_trace_blob(blob)
        decoded = decode_trace(blob)
        assert encode_trace(decoded) == blob
        assert [s.model_name for s in decoded] == \
            [s.model_name for s in steps]
        assert decoded[1].bind == steps[1].bind
        assert decoded[1].capture == steps[1].capture
        assert decoded[1].expect == steps[1].expect
        assert decoded[0].state == "stopped"

    def test_packets_are_not_traces(self):
        assert not is_trace_blob(b"\x68\x04\x13\x00\x00\x00")
        assert not is_trace_blob(b"")

    def test_malformed_payloads_raise_trace_error_only(self):
        """Engine guards catch TraceError to skip foreign/corrupt corpus
        entries — nothing else may leak out of decode_trace."""
        from repro.state.trace import TraceError
        for blob in (
            b"\xff\xfe garbage",
            b'{"fmt": 99, "steps": []}',
            b'{"fmt": 1}',                             # no steps
            b'{"fmt": 1, "steps": [{}]}',              # step missing keys
            b'{"fmt": 1, "steps": [{"m": "x", "p": "zz"}]}',  # bad hex
            b'{"fmt": 1, "steps": 7}',                 # not a list
            b'{"fmt": 1, "steps": [4]}',               # not a dict
        ):
            with pytest.raises(TraceError):
                decode_trace(blob)

    def test_trace_model_name_prefix(self):
        assert trace_model_name("iec104.session") == "session:iec104.session"


class TestStateModels:
    @pytest.mark.parametrize("target_name", SESSION_TARGETS)
    def test_shipped_state_models_validate_against_pits(self, target_name):
        spec = get_target(target_name)
        state_model = spec.make_state_model()
        state_model.validate_against(spec.make_pit())

    def test_all_targets_support_sessions(self):
        supported = {spec.name for spec in all_targets()
                     if spec.supports_sessions}
        assert supported == set(SESSION_TARGETS) == set(TARGET_NAMES)

    def test_walks_stay_inside_declared_states(self, rng):
        state_model = get_target("iec104").make_state_model()
        names = {state.name for state in state_model.states()}
        state = state_model.initial
        for _ in range(64):
            transition = state_model.pick_transition(state, rng)
            assert transition is not None
            assert transition.to in names
            state = transition.to

    def test_inconsistent_declarations_raise(self):
        with pytest.raises(StateModelError):
            StateModel("bad", "missing",
                       (State("a", (Transition("m", "a"),)),))
        with pytest.raises(StateModelError):
            StateModel("bad", "a",
                       (State("a", (Transition("m", "nowhere"),)),))
        state_model = StateModel(
            "bad", "a", (State("a", (Transition("no.such.model", "a"),)),))
        with pytest.raises(StateModelError):
            state_model.validate_against(get_target("iec104").make_pit())


class TestSessionExecutor:
    def test_crash_attributed_to_its_step(self):
        steps = _modbus_crash_trace()
        target = Target(get_target("libmodbus").make_server, None)
        result = target.run_trace(
            [(s.packet, s.model_name) for s in steps])
        assert result.crashed
        assert result.crash_step == 2
        assert result.steps_executed == 3
        assert result.crash.dedup_key == \
            ("heap-use-after-free", "modbus.c:respond_exception_after_free")
        # the trace stops at the crash: a fourth step would not run
        assert len(result.responses) == 3

    def test_server_state_persists_across_steps(self):
        """STOPDT in step 0 leaves the gate closed for step 1 — the
        whole point of reset-at-trace-boundaries."""
        spec = get_target("iec104")
        pit = spec.make_pit()
        stopdt = pit.model("iec104.stopdt").build_bytes()
        interrogation = pit.model("iec104.interrogation").build_bytes()
        target = Target(spec.make_server, None)
        session = target.run_trace([(stopdt, None), (interrogation, None)])
        # stopped: the interrogation is dropped without a response
        assert session.responses[1] is None
        # single-packet: the same interrogation is answered
        assert target.run(interrogation).response is not None

    def test_trace_coverage_accumulates_across_steps(self):
        from repro.protocols import PROTOCOLS_PATH_PREFIX
        from repro.runtime.instrument import make_line_collector
        spec = get_target("iec104")
        pit = spec.make_pit()
        stopdt = pit.model("iec104.stopdt").build_bytes()
        testfr = pit.model("iec104.testfr").build_bytes()
        collector = make_line_collector((PROTOCOLS_PATH_PREFIX,))
        target = Target(spec.make_server, collector)
        trace = target.run_trace([(stopdt, None), (testfr, None)])
        single_stop = set(target.run(stopdt).coverage.journal)
        single_test = set(target.run(testfr).coverage.journal)
        assert set(trace.coverage.journal) == single_stop | single_test


class TestTraceBinder:
    def test_modbus_transaction_id_echoes_forward(self):
        spec = get_target("libmodbus")
        pit = spec.make_pit()
        packet = bytearray(
            pit.model("modbus.read_holding_registers").build_bytes())
        packet[0:2] = (7).to_bytes(2, "big")  # distinctive transaction id
        follow = pit.model("modbus.read_holding_registers").build_bytes()
        assert follow[0:2] != bytes((0, 7))
        steps = [
            TraceStep("modbus.read_holding_registers", bytes(packet),
                      capture={"txn": "transaction_id"},
                      expect="modbus.read_holding_registers"),
            TraceStep("modbus.read_holding_registers", follow,
                      bind={"transaction_id": "txn"}),
        ]
        binder = TraceBinder(pit, steps)
        target = Target(spec.make_server, None)
        result = target.run_trace(
            [(s.packet, s.model_name) for s in steps], binder)
        # the server echoed txn 7; the binder injected it into step 1
        assert result.sent[0][0:2] == bytes((0, 7))
        assert result.sent[1][0:2] == bytes((0, 7))

    def test_iec104_sequence_numbers_flow_back(self):
        spec = get_target("iec104")
        state_model = spec.make_state_model()
        pit = spec.make_pit()
        interrogation = pit.model("iec104.interrogation").build_bytes()
        transition = next(
            t for t in state_model.transitions_from("started")
            if t.send == "iec104.interrogation")
        steps = [
            TraceStep("iec104.interrogation", interrogation,
                      bind=dict(transition.bind), expect=transition.expect,
                      capture=dict(transition.capture))
            for _ in range(3)
        ]
        binder = TraceBinder(pit, steps)
        target = Target(spec.make_server, None)
        result = target.run_trace(
            [(s.packet, s.model_name) for s in steps], binder)
        assert result.steps_executed == 3
        # after two server I-frames the peer send sequence is nonzero
        # and the third request acknowledges it (stored packet says 0)
        assert steps[2].packet[4] == 0
        assert result.sent[2][4] != 0
        # the echoed value is exactly what the second response carried
        assert result.sent[2][4] == result.responses[1][2]

    def test_unparseable_packets_pass_through_untouched(self):
        spec = get_target("libmodbus")
        pit = spec.make_pit()
        steps = [TraceStep("modbus.read_holding_registers", b"\xff\x01",
                           bind={"transaction_id": "txn"})]
        binder = TraceBinder(pit, steps)
        binder.vars["txn"] = 9
        assert binder.prepare(0, b"\xff\x01") == b"\xff\x01"


class TestSessionCampaign:
    def test_sessions_need_a_state_model(self):
        # every bundled target now ships a model; an unmodelled target
        # (the zero-effort case state learning exists for) still fails
        # fast in hand-modelled session mode
        unmodelled = replace(get_target("libiccp"), make_state_model=None)
        with pytest.raises(ValueError, match="state model"):
            make_engine("peach-star", unmodelled, 0, _session_config())
        with pytest.raises(ValueError, match="peach-star"):
            make_engine("peach", get_target("iec104"), 0,
                        _session_config())
        # --learn-states lifts the requirement (it replaces --sessions;
        # the two flags together are rejected)
        engine = make_engine("peach-star", unmodelled, 0,
                             _session_config(sessions=False,
                                             learn_states=True))
        assert engine.state_model.learned_state_count == 0

    def test_session_campaign_is_deterministic(self):
        spec = get_target("iec104")
        one = run_campaign("peach-star", spec, seed=11,
                           config=_session_config())
        two = run_campaign("peach-star", spec, seed=11,
                           config=_session_config())
        assert _signature(one) == _signature(two)
        assert one.stats["traces"] > 0
        assert one.executions >= one.stats["traces"]

    def test_corpus_entries_are_encoded_traces(self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        spec = get_target("iec104")
        run_campaign("peach-star", spec, seed=11,
                     config=_session_config(workspace=ws_dir,
                                            max_executions=400))
        workspace = CampaignWorkspace(ws_dir)
        packets = workspace.corpus_packets()
        assert packets
        for blob in packets:
            assert is_trace_blob(blob)
            steps = decode_trace(blob)
            assert steps
        metas = workspace._load_corpus_entries()
        assert all(meta["model_name"] == "session:iec104.session"
                   for meta in metas)

    def test_session_campaign_reaches_single_packet_unreachable_paths(self):
        """The acceptance gate: a seeded --sessions campaign on IEC 104
        covers edges that single-packet mode cannot reach *by
        construction* (reset() re-arms the STARTDT gate), pinned against
        a directed experiment and a same-budget single-packet campaign.
        """
        spec = get_target("iec104")
        pit = spec.make_pit()
        stopdt = pit.model("iec104.stopdt").build_bytes()
        followers = (pit.model("iec104.interrogation").build_bytes(),
                     pit.model("iec104.single_command").build_bytes())
        from repro.protocols import PROTOCOLS_PATH_PREFIX
        from repro.runtime.instrument import make_line_collector
        collector = make_line_collector((PROTOCOLS_PATH_PREFIX,))
        target = Target(spec.make_server, collector)
        session_only = set()
        single_union = set()
        for packet in (stopdt,) + followers:
            single_union |= set(target.run(packet).coverage.journal)
        for follower in followers:
            trace = target.run_trace([(stopdt, None), (follower, None)])
            session_only |= set(trace.coverage.journal)
        session_only -= single_union
        assert session_only, "stopdt+I-frame must open new edges"

        config = _session_config(max_executions=800)
        engine = make_engine("peach-star", spec, 11, config)
        run_campaign("peach-star", spec, seed=11, config=config,
                     engine=engine)
        virgin = engine.seed_pool.coverage.virgin
        assert any(virgin[index] for index in session_only), \
            "the seeded session campaign must discover a session-only path"

        single_config = CampaignConfig(budget_hours=24.0,
                                       max_executions=800,
                                       record_every=10)
        single_engine = make_engine("peach-star", spec, 11, single_config)
        run_campaign("peach-star", spec, seed=11, config=single_config,
                     engine=single_engine)
        single_virgin = single_engine.seed_pool.coverage.virgin
        assert not any(single_virgin[index] for index in session_only), \
            "single-packet mode must not reach session-only edges"


class TestSessionResume:
    @pytest.mark.parametrize("target_name,stop_after", [
        ("iec104", 237),     # clean target, kill lands mid-trace
        ("libmodbus", 333),  # crashing target, session crash metadata
    ])
    def test_killed_session_campaign_resumes_bit_identical(
            self, tmp_path, target_name, stop_after):
        spec = get_target(target_name)
        full_dir = str(tmp_path / "full")
        killed_dir = str(tmp_path / "killed")
        full = run_campaign("peach-star", spec, seed=7,
                            config=_session_config(workspace=full_dir))
        # stop_after is neither a checkpoint multiple nor trace-aligned:
        # the kill lands mid-trace and resume must rewind to the last
        # checkpoint (itself at an arbitrary step count) and re-execute
        killed = run_campaign("peach-star", spec, seed=7,
                              config=_session_config(workspace=killed_dir),
                              stop_after_executions=stop_after)
        assert killed is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)
        assert CampaignWorkspace(killed_dir).corpus_path_hashes() == \
            CampaignWorkspace(full_dir).corpus_path_hashes()

    def test_double_kill_still_converges(self, tmp_path):
        spec = get_target("iec104")
        full = run_campaign("peach-star", spec, seed=5,
                            config=_session_config(
                                workspace=str(tmp_path / "full")))
        killed_dir = str(tmp_path / "killed")
        assert run_campaign("peach-star", spec, seed=5,
                            config=_session_config(workspace=killed_dir),
                            stop_after_executions=123) is None
        assert resume_campaign(killed_dir,
                               stop_after_executions=391) is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)

    def test_session_crashes_survive_the_workspace_round_trip(
            self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        spec = get_target("libmodbus")
        result = run_campaign(
            "peach-star", spec, seed=3,
            config=_session_config(workspace=ws_dir,
                                   max_executions=2500,
                                   checkpoint_every=200))
        assert result.unique_crashes, "seed 3 finds the seeded UAF"
        loaded = CampaignWorkspace(ws_dir).load_crash_reports()
        by_key = {report.dedup_key: report for report in loaded}
        for report in result.unique_crashes:
            clone = by_key[report.dedup_key]
            assert clone.trace == report.trace
            assert clone.crash_step == report.crash_step
            assert decode_trace(clone.trace)


class TestSessionFleet:
    def test_session_fleet_syncs_traces_and_resumes_bit_identical(
            self, tmp_path):
        spec = get_target("iec104")
        config = _session_config(max_executions=500, record_every=25,
                                 checkpoint_every=100)
        full = run_fleet("peach-star", spec, shards=3,
                         workspace_dir=str(tmp_path / "full"), seed=5,
                         sync_every=150, config=config, max_workers=1)
        assert sum(full.imported_seeds) > 0, \
            "shards must exchange traces at the sync barrier"
        killed_dir = str(tmp_path / "killed")
        killed = run_fleet("peach-star", spec, shards=3,
                           workspace_dir=killed_dir, seed=5,
                           sync_every=150, config=config, max_workers=1,
                           kill_shards_at_executions=220)
        assert killed is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert resumed.merged_path_hashes == full.merged_path_hashes
        assert [_signature(r) for r in resumed.shard_results] == \
            [_signature(r) for r in full.shard_results]
        # imported entries decode as traces on every shard
        for shard in range(3):
            ws = CampaignWorkspace(
                os.path.join(killed_dir, "shards", str(shard)))
            for blob in ws.corpus_packets():
                assert is_trace_blob(blob)


class TestSessionTriage:
    def _crash_report(self, steps):
        spec = get_target("libmodbus")
        checker = TraceChecker(spec)
        result = checker.run(steps)
        assert result.crashed
        report = result.crash
        report.trace = encode_trace(steps)
        report.crash_step = result.crash_step
        return spec, report

    def test_minimize_drops_steps_then_shrinks_the_crasher(self):
        steps = _modbus_crash_trace()
        spec, report = self._crash_report(steps)
        minimization = minimize_trace(spec, report)
        assert minimization.confirmed
        assert minimization.reduced
        minimized = decode_trace(minimization.minimized)
        # the two benign reads are droppable; the UAF needs one packet
        assert len(minimized) == 1
        assert len(minimized[0].packet) < len(steps[2].packet)
        assert minimization.report is not None
        assert minimization.report.dedup_key == report.dedup_key
        assert minimization.report.trace == minimization.minimized

    def test_prefix_dependent_crash_keeps_its_prefix(self):
        """A trace whose crash needs the stateful prefix must not lose
        it: STOPDT must survive minimization when the crash only
        happens while stopped."""
        # libmodbus has no state-gated crash; emulate with the UAF in a
        # longer trace where only the crashing step is essential, and
        # assert minimization never returns a non-reproducing trace.
        steps = _modbus_crash_trace()
        spec, report = self._crash_report(steps)
        minimization = minimize_trace(spec, report)
        checker = TraceChecker(spec)
        assert checker.crash_key(decode_trace(minimization.minimized)) == \
            report.dedup_key

    def test_triage_pipeline_routes_session_crashes(self, tmp_path):
        steps = _modbus_crash_trace()
        spec, report = self._crash_report(steps)
        out_dir = str(tmp_path / "repro")
        triage = triage_reports(spec, [report], out_dir=out_dir, jobs=1)
        assert len(triage.crashes) == 1
        crash = triage.crashes[0]
        assert crash.minimization.reduced
        # the exported .bin is the minimized encoded trace
        with open(crash.packet_path, "rb") as handle:
            blob = handle.read()
        assert is_trace_blob(blob)
        assert blob == crash.minimization.minimized
        with open(crash.script_path, encoding="utf-8") as handle:
            script = handle.read()
        assert "decode_trace" in script and "run_trace" in script

    def test_exported_session_reproducer_replays(self, tmp_path):
        steps = _modbus_crash_trace()
        spec, report = self._crash_report(steps)
        out_dir = str(tmp_path / "repro")
        triage = triage_reports(spec, [report], out_dir=out_dir, jobs=1)
        script_path = triage.crashes[0].script_path
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, script_path],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "heap-use-after-free" in proc.stdout
