#!/usr/bin/env python3
"""Bring your own protocol: XML pit + custom server, fuzzed by Peach*.

The paper's conclusion notes Peach* "has also been applied to many other
ICS protocols such as s7comm".  This example shows what that takes with
this library: write an XML pit for a toy register protocol, implement a
server against the simulated heap (with one deliberate bug), and run
both engines on it.

Run:  python examples/custom_protocol_pit.py
"""

import random

from repro import (
    GenerationFuzzer, PeachStar, SimHeap, Target, TracingCollector,
    load_pit_string,
)
from repro.model import choose_model, generate_packet
from repro.runtime.target import ProtocolServer
from repro.sanitizer import MemoryFault

TOY_PIT = """
<Pit name="toyreg">
  <DataModel name="toyreg.read">
    <Number name="magic" size="16" default="0x7A7A" token="true"/>
    <Number name="opcode" size="8" default="1" token="true"/>
    <Number name="register" size="16" semantic="register"/>
    <Number name="count" size="8" default="1" semantic="count"/>
    <Number name="crc" size="32">
      <Fixup algorithm="crc32" over="magic,opcode,register,count"/>
    </Number>
  </DataModel>
  <DataModel name="toyreg.write">
    <Number name="magic" size="16" default="0x7A7A" token="true"/>
    <Number name="opcode" size="8" default="2" token="true"/>
    <Number name="register" size="16" semantic="register"/>
    <Number name="size" size="8">
      <Relation type="size" of="payload"/>
    </Number>
    <Blob name="payload" default="0000" maxLength="32"/>
    <Number name="crc" size="32">
      <Fixup algorithm="crc32" over="magic,opcode,register,size,payload"/>
    </Number>
  </DataModel>
</Pit>
"""


class ToyRegServer(ProtocolServer):
    """A 64-register device; the write path trusts the register index."""

    name = "toyreg"
    REGISTERS = 64

    def handle_packet(self, heap: SimHeap, data: bytes):
        if len(data) < 10:
            return None
        frame = heap.malloc_from(data, "frame")
        if heap.read_u16(frame, 0, "toyreg.c:magic") != 0x7A7A:
            return None
        opcode = heap.read_u8(frame, 2, "toyreg.c:opcode")
        register = heap.read_u16(frame, 3, "toyreg.c:register")
        table = heap.malloc(self.REGISTERS * 2, "register-table")
        if opcode == 1:  # read: bounds-checked
            count = heap.read_u8(frame, 5, "toyreg.c:count")
            if count == 0 or register + count > self.REGISTERS:
                return b"\xee\x01"
            out = bytearray()
            for index in range(count):
                out += heap.read(table, (register + index) * 2, 2,
                                 "toyreg.c:read_loop")
            return bytes(out)
        if opcode == 2:  # write: the seeded bug — no bounds check
            size = heap.read_u8(frame, 5, "toyreg.c:size")
            value = heap.read(frame, 6, min(size, 2), "toyreg.c:value")
            address = table.address + register * 2
            heap.deref_read(address, 1, "toyreg.c:write_unchecked")
            return b"\x00"
        return b"\xee\x02"


def run(engine_cls, label: str) -> None:
    pit = load_pit_string(TOY_PIT)
    target = Target(ToyRegServer, TracingCollector(("examples",)))
    engine = engine_cls(pit, target, random.Random(3))
    for _ in range(1500):
        engine.iterate()
    print(f"{label:<10} paths={engine.path_count:<4} "
          f"unique crashes={engine.crashes.unique_count()}")
    for report in engine.crashes.unique_reports():
        print(f"  {report.summary_line()}")


def main() -> None:
    print("fuzzing the toy register protocol (1500 executions each):\n")
    run(GenerationFuzzer, "peach")
    run(PeachStar, "peach*")
    print("\nthe write path's unchecked register index is the kind of bug")
    print("coverage-guided crack and generation reaches first: a valid")
    print("(magic, opcode, crc) shell with a donated in-range register.")


if __name__ == "__main__":
    main()
