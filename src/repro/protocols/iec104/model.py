"""Peach pit for the IEC104 target.

Data models for the three APCI formats plus one model per handled ASDU
type.  The ASDU header rules (``type_id``, ``vsq``, ``cot``, ``ca``,
``ioa``) carry the same semantic tags as the lib60870 pit — within the
pit they are shared by every I-frame model, which is what the Packet
Cracker exploits.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model import Blob, Block, DataModel, Number, Pit, size_of
from repro.protocols.iec104 import codec
from repro.state.model import State, StateModel, Transition


def _apci_u(name: str, function: int) -> DataModel:
    root = Block(f"{name}.frame", [
        Number("start", 1, default=codec.START_BYTE, token=True,
               semantic="start_byte"),
        Number("length", 1, default=4, token=True, semantic="apci_length"),
        Number("ctrl1", 1, default=function, token=True,
               semantic="u_function"),
        Number("ctrl2", 1, default=0, semantic="ctrl2"),
        Number("ctrl3", 1, default=0, semantic="ctrl3"),
        Number("ctrl4", 1, default=0, semantic="ctrl4"),
    ])
    return DataModel(f"iec104.{name}", root, weight=0.4)


def _asdu_header(type_id: int) -> List:
    """The shared ASDU header rules (paper Fig. 2a's common chunks)."""
    return [
        Number("type_id", 1, default=type_id, token=True,
               semantic="type_id"),
        Number("vsq", 1, default=1, semantic="vsq"),
        Number("cot", 1, default=6, semantic="cot"),
        Number("originator", 1, default=0, semantic="originator"),
        Number("ca", 2, default=1, endian="little", semantic="ca"),
        Number("ioa", 3, default=0, endian="little", semantic="ioa"),
    ]


def _i_frame(name: str, type_id: int, payload: Sequence,
             weight: float = 1.0) -> DataModel:
    children: List = list(_asdu_header(type_id))
    children.extend(payload)
    root = Block(f"{name}.frame", [
        Number("start", 1, default=codec.START_BYTE, token=True,
               semantic="start_byte"),
        size_of(Number("length", 1, semantic="apci_length"), "body"),
        Block("body", [
            Number("send_seq_lo", 1, default=0, semantic="send_seq"),
            Number("send_seq_hi", 1, default=0, semantic="send_seq_hi"),
            Number("recv_seq_lo", 1, default=0, semantic="recv_seq"),
            Number("recv_seq_hi", 1, default=0, semantic="recv_seq_hi"),
            Block("asdu", children),
        ]),
    ])
    return DataModel(f"iec104.{name}", root, weight=weight)


def make_pit() -> Pit:
    """Build the IEC104 pit (9 data models)."""
    models = [
        _apci_u("startdt", codec.U_STARTDT_ACT),
        _apci_u("stopdt", codec.U_STOPDT_ACT),
        _apci_u("testfr", codec.U_TESTFR_ACT),
        DataModel("iec104.s_frame", Block("s_frame.frame", [
            Number("start", 1, default=codec.START_BYTE, token=True,
                   semantic="start_byte"),
            Number("length", 1, default=4, token=True,
                   semantic="apci_length"),
            Number("ctrl1", 1, default=0x01, token=True,
                   semantic="s_marker"),
            Number("ctrl2", 1, default=0, semantic="ctrl2"),
            Number("recv_seq_lo", 1, default=0, semantic="recv_seq"),
            Number("recv_seq_hi", 1, default=0, semantic="recv_seq_hi"),
        ]), weight=0.4),
        _i_frame("interrogation", codec.C_IC_NA_1,
                 [Number("qoi", 1, default=20, semantic="qoi")]),
        _i_frame("single_command", codec.C_SC_NA_1,
                 [Number("sco", 1, default=1, semantic="sco")]),
        _i_frame("clock_sync", codec.C_CS_NA_1,
                 [Blob("cp56time", default=b"\x00\x00\x00\x00\x01\x06\x26",
                       length=7, semantic="cp56time")]),
        _i_frame("single_point", codec.M_SP_NA_1,
                 [Number("siq", 1, default=0, semantic="siq")]),
        # coarse model: I-frame with opaque ASDU (supplies odd lengths)
        _i_frame("raw_asdu", 0, [], weight=0.5),
    ]
    # The raw model needs a free-form ASDU: rebuild its asdu block as a blob.
    raw_root = Block("raw_asdu.frame", [
        Number("start", 1, default=codec.START_BYTE, token=True,
               semantic="start_byte"),
        size_of(Number("length", 1, semantic="apci_length"), "body"),
        Block("body", [
            Number("send_seq_lo", 1, default=0, semantic="send_seq"),
            Number("send_seq_hi", 1, default=0, semantic="send_seq_hi"),
            Number("recv_seq_lo", 1, default=0, semantic="recv_seq"),
            Number("recv_seq_hi", 1, default=0, semantic="recv_seq_hi"),
            Blob("asdu", default=b"\x64\x01\x06\x00\x01\x00\x00\x00\x00\x14",
                 max_length=64, semantic="raw_asdu"),
        ]),
    ])
    models[-1] = DataModel("iec104.raw_asdu", raw_root, weight=0.5)
    return Pit("iec104", models)


def make_state_model() -> StateModel:
    """Session state machine for the IEC104 target.

    Two states mirror the server's STARTDT gate: data transfer enabled
    (the connection-establishment default) and stopped after a STOPDT
    act.  I-frames sent while stopped reach the ``not self.started``
    drop paths that no single packet can ever hit — ``reset()`` re-arms
    the gate before every single-packet execution.

    I-frame transitions capture the server's send sequence number from
    its response and echo it into the next packet's receive-sequence
    header fields (through the Relation/Fixup rebuild), which is how a
    replayed prefix keeps acknowledging whatever the live server
    actually sent.
    """
    seq_bind = {"recv_seq_lo": "peer_send_lo", "recv_seq_hi": "peer_send_hi"}

    def _i(send: str, to: str, weight: float = 1.0) -> Transition:
        return Transition(send, to, bind=dict(seq_bind), expect=send,
                          capture={"peer_send_lo": "send_seq_lo",
                                   "peer_send_hi": "send_seq_hi"},
                          weight=weight)

    started = State("started", (
        _i("iec104.interrogation", "started"),
        _i("iec104.single_command", "started"),
        _i("iec104.clock_sync", "started"),
        Transition("iec104.single_point", "started", bind=dict(seq_bind),
                   weight=0.5),
        Transition("iec104.raw_asdu", "started", bind=dict(seq_bind),
                   weight=0.7),
        Transition("iec104.s_frame", "started", bind=dict(seq_bind),
                   weight=0.5),
        Transition("iec104.testfr", "started", weight=0.4),
        Transition("iec104.stopdt", "stopped", weight=0.8),
    ))
    stopped = State("stopped", (
        Transition("iec104.startdt", "started", weight=0.8),
        Transition("iec104.interrogation", "stopped", bind=dict(seq_bind)),
        Transition("iec104.single_command", "stopped", bind=dict(seq_bind)),
        Transition("iec104.raw_asdu", "stopped", bind=dict(seq_bind),
                   weight=0.5),
        Transition("iec104.s_frame", "stopped", weight=0.4),
    ))
    return StateModel("iec104.session", "started", (started, stopped))
