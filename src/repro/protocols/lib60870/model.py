"""Peach pit for the lib60870 target.

One data model per ASDU type id handled by the slave, all sharing the
APCI + ASDU header construction rules (``type_id``, ``vsq``, ``cot``,
``originator``, ``ca``, ``ioa``).  Element payloads are deliberately
modelled as *variable-length* blobs with valid defaults — the
coarse-grained modelling the paper recommends (§V-A) — so generation
explores truncated and oversized information elements, which is exactly
where the library's unchecked accessors break.
"""

from __future__ import annotations

from typing import List

from repro.model import Blob, Block, DataModel, Number, Pit, size_of
from repro.protocols.lib60870 import codec
from repro.state.model import State, StateModel, Transition


def _i_frame_model(name: str, type_id: int, element_default: bytes,
                   weight: float = 1.0) -> DataModel:
    children: List = [
        Number("type_id", 1, default=type_id, token=True,
               semantic="type_id"),
        Number("vsq", 1, default=1, semantic="vsq"),
        Number("cot", 1, default=codec.COT_ACTIVATION, semantic="cot"),
        Number("originator", 1, default=0, semantic="originator"),
        Number("ca", 2, default=1, endian="little", semantic="ca"),
        Number("ioa", 3, default=codec.IOA_BASE if type_id >= 45 else 0,
               endian="little", semantic="ioa"),
    ]
    if element_default:
        children.append(Blob("element", default=element_default,
                             max_length=24, semantic="element"))
    root = Block(f"{name}.frame", [
        Number("start", 1, default=codec.START_BYTE, token=True,
               semantic="start_byte"),
        size_of(Number("length", 1, semantic="apci_length"), "body"),
        Block("body", [
            Number("send_seq_lo", 1, default=0, semantic="send_seq"),
            Number("send_seq_hi", 1, default=0, semantic="send_seq_hi"),
            Number("recv_seq_lo", 1, default=0, semantic="recv_seq"),
            Number("recv_seq_hi", 1, default=0, semantic="recv_seq_hi"),
            Block("asdu", children),
        ]),
    ])
    return DataModel(f"lib60870.{name}", root, weight=weight)


def _u_frame_model(name: str, function: int,
                   weight: float = 0.4) -> DataModel:
    root = Block(f"{name}.frame", [
        Number("start", 1, default=codec.START_BYTE, token=True,
               semantic="start_byte"),
        Number("length", 1, default=4, token=True, semantic="apci_length"),
        Number("ctrl1", 1, default=function, token=True,
               semantic="u_function"),
        Number("ctrl2", 1, default=0, semantic="ctrl2"),
        Number("ctrl3", 1, default=0, semantic="ctrl3"),
        Number("ctrl4", 1, default=0, semantic="ctrl4"),
    ])
    return DataModel(f"lib60870.{name}", root, weight=weight)


def make_pit() -> Pit:
    """Build the lib60870 pit (one model per supported ASDU type + extras)."""
    qos = bytes((0x00,))
    models = [
        # control direction
        _i_frame_model("interrogation", codec.C_IC_NA_1, bytes((20,))),
        _i_frame_model("counter_interrogation", codec.C_CI_NA_1,
                       bytes((0x05,))),
        _i_frame_model("clock_sync", codec.C_CS_NA_1,
                       codec.cp56time(1000, 30, 12)),
        _i_frame_model("read_command", codec.C_RD_NA_1, b""),
        _i_frame_model("single_command", codec.C_SC_NA_1, bytes((0x01,))),
        _i_frame_model("double_command", codec.C_DC_NA_1, bytes((0x01,))),
        _i_frame_model("step_command", codec.C_RC_NA_1, bytes((0x01,))),
        _i_frame_model("setpoint_normalized", codec.C_SE_NA_1,
                       b"\x00\x40" + qos),
        _i_frame_model("setpoint_scaled", codec.C_SE_NB_1,
                       b"\x10\x00" + qos),
        _i_frame_model("setpoint_float", codec.C_SE_NC_1,
                       b"\x00\x00\x80\x3f" + qos),
        # monitor direction (peer-to-peer traffic the slave must tolerate)
        _i_frame_model("single_point", codec.M_SP_NA_1, bytes((0x01,)),
                       weight=0.7),
        _i_frame_model("double_point", codec.M_DP_NA_1, bytes((0x02,)),
                       weight=0.7),
        _i_frame_model("step_position", codec.M_ST_NA_1, b"\x05\x00",
                       weight=0.7),
        _i_frame_model("bitstring32", codec.M_BO_NA_1,
                       b"\xde\xad\xbe\xef\x00", weight=0.7),
        _i_frame_model("measured_normalized", codec.M_ME_NA_1,
                       b"\x00\x20\x00", weight=0.7),
        _i_frame_model("measured_scaled", codec.M_ME_NB_1, b"\x64\x00\x00",
                       weight=0.7),
        _i_frame_model("measured_float", codec.M_ME_NC_1,
                       b"\x00\x00\xc8\x42\x00", weight=0.7),
        _i_frame_model("integrated_totals", codec.M_IT_NA_1,
                       b"\x2a\x00\x00\x00\x00", weight=0.7),
        _i_frame_model("single_point_time", codec.M_SP_TB_1,
                       bytes((0x01,)) + codec.cp56time(), weight=0.7),
        _i_frame_model("end_of_init", codec.M_EI_NA_1, bytes((0x00,)),
                       weight=0.7),
        # dedicated STARTDT/STOPDT U-frames: the generic u_frame below
        # keeps its token on 0x07, so without these the data-transfer
        # gate could never be closed — the state model (and the state
        # learner's exploration) need an emitter for each act
        _u_frame_model("startdt", 0x07),
        _u_frame_model("stopdt", 0x13),
        # U-frame model
        DataModel("lib60870.u_frame", Block("u_frame.frame", [
            Number("start", 1, default=codec.START_BYTE, token=True,
                   semantic="start_byte"),
            Number("length", 1, default=4, token=True,
                   semantic="apci_length"),
            Number("ctrl1", 1, default=0x07,
                   values=(0x07, 0x0B, 0x13, 0x23, 0x43, 0x83),
                   semantic="u_function"),
            Number("ctrl2", 1, default=0, semantic="ctrl2"),
            Number("ctrl3", 1, default=0, semantic="ctrl3"),
            Number("ctrl4", 1, default=0, semantic="ctrl4"),
        ]), weight=0.4),
        # coarse model: I-frame with an opaque ASDU — supplies the short
        # ASDUs that reach CS101_ASDU_getCOT with a 1-2 byte buffer
        DataModel("lib60870.raw_asdu", Block("raw_asdu.frame", [
            Number("start", 1, default=codec.START_BYTE, token=True,
                   semantic="start_byte"),
            size_of(Number("length", 1, semantic="apci_length"), "body"),
            Block("body", [
                Number("send_seq_lo", 1, default=0, semantic="send_seq"),
                Number("send_seq_hi", 1, default=0, semantic="send_seq_hi"),
                Number("recv_seq_lo", 1, default=0, semantic="recv_seq"),
                Number("recv_seq_hi", 1, default=0, semantic="recv_seq_hi"),
                Blob("asdu", default=b"\x64\x01\x06\x00\x01\x00"
                                     b"\x00\x00\x00\x14",
                     max_length=48, semantic="raw_asdu"),
            ]),
        ]), weight=0.6),
    ]
    return Pit("lib60870", models)


def make_state_model() -> StateModel:
    """Session state machine for the lib60870 target.

    Mirrors the IEC 104 machine on the bigger stack: the CS104 slave's
    STARTDT gate is re-armed by ``reset()`` before every single-packet
    execution, so the ``not self.started`` drop path in
    ``_handle_asdu_frame`` is reachable **only** by a STOPDT act
    followed by an I-frame within one live session — the state-gated
    edges the PR 5 acceptance pin measures.

    I-frame transitions capture the slave's send sequence number from
    its reply (replies echo the request's ASDU type, so the request
    model parses them) and bind it into the next packet's
    receive-sequence fields through the Relation/Fixup rebuild.
    """
    seq_bind = {"recv_seq_lo": "peer_send_lo", "recv_seq_hi": "peer_send_hi"}

    def _i(send: str, to: str, weight: float = 1.0) -> Transition:
        return Transition(send, to, bind=dict(seq_bind), expect=send,
                          capture={"peer_send_lo": "send_seq_lo",
                                   "peer_send_hi": "send_seq_hi"},
                          weight=weight)

    started = State("started", (
        _i("lib60870.interrogation", "started"),
        _i("lib60870.counter_interrogation", "started", weight=0.6),
        _i("lib60870.clock_sync", "started", weight=0.8),
        _i("lib60870.read_command", "started", weight=0.6),
        _i("lib60870.single_command", "started"),
        _i("lib60870.setpoint_scaled", "started", weight=0.6),
        Transition("lib60870.single_point", "started", bind=dict(seq_bind),
                   weight=0.5),
        Transition("lib60870.raw_asdu", "started", bind=dict(seq_bind),
                   weight=0.7),
        Transition("lib60870.u_frame", "started", weight=0.3),
        Transition("lib60870.stopdt", "stopped", weight=0.8),
    ))
    stopped = State("stopped", (
        Transition("lib60870.startdt", "started", weight=0.8),
        Transition("lib60870.interrogation", "stopped", bind=dict(seq_bind)),
        Transition("lib60870.single_command", "stopped",
                   bind=dict(seq_bind)),
        Transition("lib60870.raw_asdu", "stopped", bind=dict(seq_bind),
                   weight=0.5),
        Transition("lib60870.stopdt", "stopped", weight=0.3),
    ))
    return StateModel("lib60870.session", "started", (started, stopped))
