"""lib60870-analog CS104 codec — safe helpers and type tables.

The lib60870 target implements a much fuller IEC 60870-5-101/104 ASDU
stack than the simple IEC104 project: typed information objects, variable
structure qualifiers (SQ bit + count), two-octet cause of transmission,
and CP24/CP56 time tags.
"""

from __future__ import annotations

from typing import Dict

START_BYTE = 0x68

# slave database geometry (shared by server and pit defaults)
IOA_BASE = 0x100
OBJECT_TABLE_ENTRIES = 64
OBJECT_ENTRY_SIZE = 8

# Monitor-direction type ids
M_SP_NA_1 = 1    # single point
M_DP_NA_1 = 3    # double point
M_ST_NA_1 = 5    # step position
M_BO_NA_1 = 7    # bitstring 32
M_ME_NA_1 = 9    # measured, normalized
M_ME_NB_1 = 11   # measured, scaled
M_ME_NC_1 = 13   # measured, short float
M_IT_NA_1 = 15   # integrated totals
M_SP_TB_1 = 30   # single point with CP56 time
M_EI_NA_1 = 70   # end of initialization

# Control-direction type ids
C_SC_NA_1 = 45   # single command
C_DC_NA_1 = 46   # double command
C_RC_NA_1 = 47   # regulating step
C_SE_NA_1 = 48   # setpoint, normalized
C_SE_NB_1 = 49   # setpoint, scaled
C_SE_NC_1 = 50   # setpoint, short float
C_IC_NA_1 = 100  # interrogation
C_CI_NA_1 = 101  # counter interrogation
C_RD_NA_1 = 102  # read
C_CS_NA_1 = 103  # clock sync

# information-element byte size per type id (after the 3-byte IOA)
ELEMENT_SIZE: Dict[int, int] = {
    M_SP_NA_1: 1,
    M_DP_NA_1: 1,
    M_ST_NA_1: 2,
    M_BO_NA_1: 5,
    M_ME_NA_1: 3,
    M_ME_NB_1: 3,
    M_ME_NC_1: 5,
    M_IT_NA_1: 5,
    M_SP_TB_1: 8,
    M_EI_NA_1: 1,
    C_SC_NA_1: 1,
    C_DC_NA_1: 1,
    C_RC_NA_1: 1,
    C_SE_NA_1: 3,
    C_SE_NB_1: 3,
    C_SE_NC_1: 5,
    C_IC_NA_1: 1,
    C_CI_NA_1: 1,
    C_RD_NA_1: 0,
    C_CS_NA_1: 7,
}

SUPPORTED_TYPES = tuple(sorted(ELEMENT_SIZE))

# causes of transmission
COT_PERIODIC = 1
COT_SPONTANEOUS = 3
COT_ACTIVATION = 6
COT_ACTIVATION_CON = 7
COT_DEACTIVATION = 8
COT_DEACTIVATION_CON = 9
COT_ACTIVATION_TERMINATION = 10
COT_INTERROGATED_BY_STATION = 20
COT_UNKNOWN_TYPE_ID = 44
COT_UNKNOWN_COT = 45
COT_UNKNOWN_CA = 46
COT_UNKNOWN_IOA = 47


def build_apci_i(send_seq: int, recv_seq: int, asdu: bytes) -> bytes:
    """Wrap *asdu* in an I-format APCI."""
    length = 4 + len(asdu)
    return bytes((
        START_BYTE, length,
        (send_seq << 1) & 0xFE, (send_seq >> 7) & 0xFF,
        (recv_seq << 1) & 0xFF, (recv_seq >> 7) & 0xFF,
    )) + asdu


def build_u_frame(function: int) -> bytes:
    return bytes((START_BYTE, 4, function, 0, 0, 0))


def build_asdu(type_id: int, count: int, sequence: bool, cot: int,
               originator: int, ca: int, objects: bytes) -> bytes:
    """Build a CS101 ASDU (two-octet COT, two-octet CA).

    Bit 6 of the COT octet is the P/N (negative confirmation) flag and is
    preserved; bit 7 (test) is stripped.
    """
    vsq = (count & 0x7F) | (0x80 if sequence else 0)
    return (bytes((type_id, vsq, cot & 0x7F, originator))
            + ca.to_bytes(2, "little")
            + objects)


def build_object(ioa: int, element: bytes) -> bytes:
    """One information object: 3-byte IOA + typed element."""
    return ioa.to_bytes(3, "little") + element


def cp56time(milliseconds: int = 0, minute: int = 0, hour: int = 0,
             day: int = 1, month: int = 6, year: int = 26) -> bytes:
    """Encode a CP56Time2a timestamp."""
    return bytes((
        milliseconds & 0xFF, (milliseconds >> 8) & 0xFF,
        minute & 0x3F, hour & 0x1F, day & 0x1F, month & 0x0F, year & 0x7F,
    ))


def frame_kind(frame: bytes) -> str:
    """Classify an APCI frame as ``"I"``, ``"S"``, ``"U"`` or ``"invalid"``.

    Unlike the IEC 104 project's classifier, lib60870 validates the APCI
    length octet against the actual read: a frame whose announced length
    disagrees with the bytes on the wire is not a frame at all.  The two
    stacks therefore genuinely disagree on truncated or corrupted frames
    — the asymmetry the cross-stack differential oracle observes.
    """
    if len(frame) < 6 or frame[0] != START_BYTE:
        return "invalid"
    length = frame[1]
    if length < 4 or length + 2 != len(frame):
        return "invalid"
    ctrl1 = frame[2]
    if ctrl1 & 0x01 == 0:
        return "I"
    if ctrl1 & 0x03 == 0x01:
        return "S"
    return "U"
