"""libiec_iccp_mod-analog target: TASE.2/ICCP server, codec and pit."""

from repro.protocols.iccp.codec import (
    build_associate, build_info_report, build_read, build_tpkt_cotp,
    build_write,
)
from repro.protocols.iccp.model import make_pit, make_state_model
from repro.protocols.iccp.server import IccpServer

__all__ = [
    "IccpServer", "build_associate", "build_info_report", "build_read",
    "build_tpkt_cotp", "build_write", "make_pit", "make_state_model",
]
