"""Tests for the campaign result export helpers."""

import csv
import io
import json

from repro.analysis.export import (
    campaign_to_dict, campaign_to_json, campaigns_to_csv,
    panel_to_markdown, panels_to_markdown, write_campaign_json,
    write_series_csv,
)
from repro.analysis.figures import Fig4Panel
from repro.core.campaign import CampaignResult
from repro.sanitizer import CrashReport


def _result(engine="peach-star", target="libmodbus", seed=1):
    report = CrashReport("SEGV", "modbus.c:fc23_read_registers",
                         "wild read", b"\x00\x01", "modbus.rw")
    return CampaignResult(
        engine_name=engine, target_name=target, seed=seed,
        series=[(0.0, 0), (1.0, 10), (2.0, 15)],
        final_paths=15, final_edges=120, executions=200,
        unique_crashes=[report],
        crash_times={report.dedup_key: 1.5},
        stats={"executions": 200, "puzzles": 42},
    )


def _panel():
    return Fig4Panel(
        target_name="iec104", checkpoints=(1.0, 2.0),
        peach_curve=[(1.0, 10.0), (2.0, 12.0)],
        star_curve=[(1.0, 11.0), (2.0, 15.0)],
        peach_results=[], star_results=[],
    )


class TestJson:
    def test_dict_fields_present(self):
        data = campaign_to_dict(_result())
        assert data["engine"] == "peach-star"
        assert data["final_paths"] == 15
        assert data["series"] == [[0.0, 0], [1.0, 10], [2.0, 15]]
        assert data["stats"]["puzzles"] == 42

    def test_crashes_serialized_with_first_seen(self):
        data = campaign_to_dict(_result())
        crash = data["unique_crashes"][0]
        assert crash["kind"] == "SEGV"
        assert crash["packet_hex"] == "0001"
        assert crash["first_seen_hours"] == 1.5

    def test_json_parses_back(self):
        parsed = json.loads(campaign_to_json(_result()))
        assert parsed["target"] == "libmodbus"

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "run.json"
        write_campaign_json(_result(), str(path))
        assert json.loads(path.read_text())["executions"] == 200


class TestCsv:
    def test_csv_one_row_per_sample(self):
        text = campaigns_to_csv([_result(), _result(engine="peach")])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["engine", "target", "seed", "sim_hours",
                           "paths_covered"]
        assert len(rows) == 1 + 3 + 3

    def test_csv_values(self):
        rows = list(csv.reader(io.StringIO(campaigns_to_csv([_result()]))))
        assert rows[2] == ["peach-star", "libmodbus", "1", "1.0000", "10"]

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv([_result()], str(path))
        assert "paths_covered" in path.read_text()


class TestMarkdown:
    def test_panel_table(self):
        text = panel_to_markdown(_panel())
        assert "### iec104" in text
        assert "| 2.0 | 12.0 | 15.0 |" in text
        assert "+25.00%" in text

    def test_panels_summary_with_mean(self):
        text = panels_to_markdown([_panel()])
        assert "| iec104 | 12.0 | 15.0 | +25.00% |" in text
        assert "**+25.00%**" in text

    def test_empty_panel_list(self):
        text = panels_to_markdown([])
        assert "project" in text
