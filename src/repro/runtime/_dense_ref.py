"""Reference dense coverage implementation (the pre-sparse seed code).

This is the original O(MAP_SIZE) coverage pipeline, kept verbatim as a
drop-in behavioural oracle: every operation scans (or reallocates) the
full 65,536-entry map instead of walking the touched-edge journal.  The
equivalence tests run whole campaigns against both implementations and
require bit-for-bit identical valuable-seed decisions, path counts and
hashes; the throughput benchmark uses it as the baseline the sparse
pipeline must beat.

Not part of the public API — import from :mod:`repro.runtime.coverage`
for real work.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.runtime.coverage import MAP_SIZE, _MAP_MASK, bucket_count


class DenseCoverageMap:
    """Per-execution edge hit map, dense-scan variant (seed behaviour)."""

    __slots__ = ("counts", "_prev")

    def __init__(self):
        self.counts = bytearray(MAP_SIZE)
        self._prev = 0

    def reset(self) -> None:
        for index in range(MAP_SIZE):
            self.counts[index] = 0
        self._prev = 0

    def fast_reset(self) -> None:
        self.counts = bytearray(MAP_SIZE)
        self._prev = 0

    def visit(self, cur_location: int) -> None:
        index = (cur_location ^ self._prev) & _MAP_MASK
        count = self.counts[index]
        if count < 255:
            self.counts[index] = count + 1
        self._prev = (cur_location >> 1) & _MAP_MASK

    def iter_hits(self) -> Iterable[Tuple[int, int]]:
        counts = self.counts
        for index in range(MAP_SIZE):
            if counts[index]:
                yield index, counts[index]

    def edge_count(self) -> int:
        return sum(1 for byte in self.counts if byte)

    def path_hash(self) -> int:
        acc = 0xCBF29CE484222325
        counts = self.counts
        for index in range(MAP_SIZE):
            count = counts[index]
            if count:
                acc ^= (index << 8) | bucket_count(count)
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc


class DenseGlobalCoverage:
    """Accumulated coverage, dense-scan variant (seed behaviour)."""

    __slots__ = ("virgin", "edges_seen")

    def __init__(self):
        self.virgin = bytearray(MAP_SIZE)
        self.edges_seen = 0

    def merge(self, execution_map) -> bool:
        new_bits = False
        virgin = self.virgin
        for index, count in execution_map.iter_hits():
            bit = bucket_count(count)
            seen = virgin[index]
            if seen & bit == 0:
                if seen == 0:
                    self.edges_seen += 1
                virgin[index] = seen | bit
                new_bits = True
        return new_bits

    def would_be_new(self, execution_map) -> bool:
        virgin = self.virgin
        for index, count in execution_map.iter_hits():
            if virgin[index] & bucket_count(count) == 0:
                return True
        return False

    def edge_coverage(self) -> int:
        return self.edges_seen
