"""Batched execution hot path: bit-identity and fallback contracts.

ISSUE (PR 10) tentpole: ``GenerationFuzzer.iterate_batch`` + the
campaign driver's batched loop must be a pure performance change — the
outcome stream, RNG trajectory, simulated clock, series, stats, crash
ledger and kill/resume behaviour are bit-for-bit identical to the
one-iteration-at-a-time loop, for every batch size, on both coverage
implementations, and every configuration outside the batched pipeline
(sessions, channels, oracles, baseline engines) falls back without
changing a single observable.

The stat/triage satellites ride along: ``EngineStats.as_dict`` is
derived from the dataclass fields, the ``channel_faults`` counter is
synced even with the differential oracle forced off, and the cracker's
parse cache counts its hits.
"""

import dataclasses

import pytest

from repro.core.campaign import (
    CampaignConfig, make_engine, resume_campaign, run_campaign,
)
from repro.core.engine import EngineStats
from repro.protocols import get_target
from repro.runtime.coverage import numpy_available

BATCH_SIZES = (1, 2, 5, 16, 64)
COVERAGE_IMPLS = ("sparse",) + (
    ("vector",) if numpy_available() else ())


def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=400, record_every=10,
                coverage_impl="sparse")
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        tuple(sorted(result.path_hashes)),
    )


class TestBatchSizeInvariance:
    """Any batch size produces the exact same campaign."""

    @pytest.mark.parametrize("impl", COVERAGE_IMPLS)
    @pytest.mark.parametrize("target_name", ("libmodbus", "iec104"))
    def test_campaigns_identical_across_batch_sizes(self, target_name,
                                                    impl):
        spec = get_target(target_name)
        reference = None
        for batch_size in BATCH_SIZES:
            result = run_campaign(
                "peach-star", spec, seed=7,
                config=_config(batch_size=batch_size, coverage_impl=impl))
            signature = _signature(result)
            if reference is None:
                reference = signature
            else:
                assert signature == reference, (batch_size, impl)

    def test_baseline_engine_identical_across_batch_sizes(self):
        spec = get_target("lib60870")
        one = run_campaign("peach", spec, seed=3,
                           config=_config(batch_size=1))
        sixteen = run_campaign("peach", spec, seed=3,
                               config=_config(batch_size=16))
        assert _signature(sixteen) == _signature(one)

    def test_time_budget_stops_batches_exactly(self):
        """No max_executions cap: the simulated clock alone ends the
        campaign, and a batch must stop at the same execution the
        unbatched loop does."""
        spec = get_target("libmodbus")
        one = run_campaign(
            "peach-star", spec, seed=9,
            config=_config(max_executions=10**9, budget_hours=6.0,
                           batch_size=1))
        sixteen = run_campaign(
            "peach-star", spec, seed=9,
            config=_config(max_executions=10**9, budget_hours=6.0,
                           batch_size=16))
        assert _signature(sixteen) == _signature(one)


class TestIterateBatchContract:
    """Engine-level semantics of the batched entry point."""

    def test_exec_bound_caps_the_batch(self):
        spec = get_target("libmodbus")
        engine = make_engine("peach-star", spec, 1, _config())
        outcomes = engine.iterate_batch(16, exec_bound=5)
        assert len(outcomes) == 5
        assert engine.stats.executions == 5
        assert [o.executions for o in outcomes] == [1, 2, 3, 4, 5]

    def test_outcome_stamps_are_per_iteration(self):
        """Stamped readings reflect each iteration, not the batch end."""
        spec = get_target("libmodbus")
        engine = make_engine("peach-star", spec, 1, _config())
        outcomes = engine.iterate_batch(32)
        assert [o.executions for o in outcomes] == \
            list(range(1, len(outcomes) + 1))
        hours = [o.hours for o in outcomes]
        assert hours == sorted(hours)
        assert hours[0] < hours[-1]
        paths = [o.paths for o in outcomes]
        assert paths == sorted(paths)  # paths only ever grow

    def test_batched_equals_sequential_iterates(self):
        spec = get_target("libmodbus")
        batched = make_engine("peach-star", spec, 4, _config())
        unbatched = make_engine("peach-star", spec, 4, _config())
        outcomes = batched.iterate_batch(40)
        singles = [unbatched.iterate() for _ in range(len(outcomes))]
        assert [o.executions for o in outcomes] == \
            [o.executions for o in singles]
        assert [o.hours for o in outcomes] == [o.hours for o in singles]
        assert [o.paths for o in outcomes] == [o.paths for o in singles]
        assert [o.valuable for o in outcomes] == \
            [o.valuable for o in singles]
        assert [o.packet for o in outcomes] == [o.packet for o in singles]
        assert batched.clock.now_ms == unbatched.clock.now_ms
        assert batched.stats.as_dict() == unbatched.stats.as_dict()

    def test_fallback_returns_one_outcome_per_call(self):
        """Outside the batched pipeline the result's coverage is the
        collector's live map — handing out more than one outcome per
        call would let later iterations overwrite earlier coverage
        before the driver reads it."""
        spec = get_target("iec104")
        sessions = make_engine("peach-star", spec, 2,
                               _config(sessions=True))
        assert not sessions._can_batch()
        assert len(sessions.iterate_batch(16)) == 1
        faulted = make_engine("peach-star", spec, 2,
                              _config(channel_faults=0.25))
        assert not faulted._can_batch()
        assert len(faulted.iterate_batch(16)) == 1

    def test_valuable_outcomes_get_retired_maps(self):
        """The driver serializes valuable outcomes' coverage after the
        batch: each must keep a private map, distinct from the shared
        non-valuable map and from every other valuable outcome's."""
        spec = get_target("libmodbus")
        engine = make_engine("peach-star", spec, 1, _config())
        valuable_maps = []
        for _ in range(6):
            for outcome in engine.iterate_batch(64):
                if outcome.valuable:
                    valuable_maps.append(outcome.result.coverage)
                    assert outcome.result.coverage.edge_count() > 0
        assert len(valuable_maps) >= 2
        batch_maps = engine._batch_maps
        # every retired map is pool-owned and no two valuable outcomes
        # of one batch shared one (pool ids are unique)
        assert len(set(map(id, batch_maps))) == len(batch_maps)


class TestBatchedFallbackIdentity:
    """Modes outside the batched pipeline are untouched by batch_size."""

    def test_session_campaign_identical(self):
        spec = get_target("iec104")
        one = run_campaign("peach-star", spec, seed=5,
                           config=_config(sessions=True, batch_size=1))
        sixteen = run_campaign("peach-star", spec, seed=5,
                               config=_config(sessions=True,
                                              batch_size=16))
        assert _signature(sixteen) == _signature(one)

    def test_faulted_channel_campaign_identical(self):
        spec = get_target("libmodbus")
        one = run_campaign(
            "peach-star", spec, seed=5,
            config=_config(channel_faults=0.25, batch_size=1))
        sixteen = run_campaign(
            "peach-star", spec, seed=5,
            config=_config(channel_faults=0.25, batch_size=16))
        assert _signature(sixteen) == _signature(one)


class TestBatchedKillResume:
    """The persistence guarantee survives batching: a batched campaign
    killed mid-budget resumes bit-identical to the uninterrupted run,
    and batched/unbatched workspaces converge."""

    def test_killed_batched_campaign_resumes_bit_identical(self,
                                                           tmp_path):
        spec = get_target("libmodbus")
        config = dict(checkpoint_every=50, batch_size=16)
        full = run_campaign(
            "peach-star", spec, seed=7,
            config=_config(workspace=str(tmp_path / "full"), **config))
        # NOT a checkpoint or batch multiple: resume must rewind to the
        # last checkpoint and re-execute the window through the batch
        killed = run_campaign(
            "peach-star", spec, seed=7,
            config=_config(workspace=str(tmp_path / "killed"), **config),
            stop_after_executions=77)
        assert killed is None
        resumed = resume_campaign(str(tmp_path / "killed"))
        assert _signature(resumed) == _signature(full)

    def test_batched_workspace_matches_unbatched(self, tmp_path):
        spec = get_target("lib60870")
        one = run_campaign(
            "peach-star", spec, seed=7,
            config=_config(workspace=str(tmp_path / "one"),
                           checkpoint_every=50, batch_size=1))
        sixteen = run_campaign(
            "peach-star", spec, seed=7,
            config=_config(workspace=str(tmp_path / "sixteen"),
                           checkpoint_every=50, batch_size=16))
        assert _signature(sixteen) == _signature(one)


class TestStatSatellites:
    """The PR's stat/triage-counter bugfix sweep."""

    def test_as_dict_covers_every_field(self):
        stats = EngineStats()
        expected = {field.name for field in dataclasses.fields(stats)}
        assert set(stats.as_dict()) == expected

    def test_as_dict_round_trips(self):
        stats = EngineStats()
        stats.executions = 123
        stats.channel_faults = 9
        stats.net_timeouts = 2
        clone = EngineStats(**stats.as_dict())
        assert clone == stats
        assert clone.as_dict() == stats.as_dict()

    def test_channel_faults_counted_with_differential_off(self):
        """Regression: the counter sync used to live on the oracle
        path, so ``differential=False`` silently zeroed the stat."""
        spec = get_target("libmodbus")
        result = run_campaign(
            "peach-star", spec, seed=11,
            config=_config(channel_faults=0.4, differential=False))
        assert result.stats["channel_faults"] > 0
        assert result.stats["divergences_total"] == 0

    def test_cracker_parse_cache_hits(self):
        spec = get_target("libmodbus")
        engine = make_engine("peach-star", spec, 1, _config())
        run_campaign("peach-star", spec, seed=1, config=_config(),
                     engine=engine)
        # session-corpus imports and donor refreshes re-crack known
        # seeds: the LRU must be doing work by end of a campaign
        assert engine.cracker.cache_hits >= 0
        seed_packets = [s.packet for s in engine.seed_pool.seeds]
        if seed_packets:
            before = engine.cracker.cache_hits
            tree = engine.seed_pool.seeds[0].tree
            engine.cracker.crack(seed_packets[0], tree)
            engine.cracker.crack(seed_packets[0], tree)
            assert engine.cracker.cache_hits > before
