"""Tests for the analysis harness (figures, tables, speedup, CLI)."""

import pytest

from repro.analysis import (
    PAPER_TABLE1, ascii_chart, expected_counts, getcot_report,
    render_panel_report, render_table1, run_fig4_panel, run_table1_row,
)
from repro.analysis.figures import Fig4Panel
from repro.analysis.speedup import HeadlineReport, run_headline
from repro.core import CampaignConfig
from repro.core.stats import ComparisonSummary
from repro.protocols import get_target


def _quick_config():
    return CampaignConfig(budget_hours=24.0, max_executions=150,
                          record_every=10)


class TestFig4:
    @pytest.fixture(scope="class")
    def panel(self):
        return run_fig4_panel(get_target("iec104"), repetitions=2,
                              budget_hours=24.0, config=_quick_config())

    def test_panel_has_both_curves(self, panel):
        assert len(panel.peach_curve) == len(panel.star_curve)
        assert panel.peach_curve[-1][1] >= 0

    def test_curves_monotone(self, panel):
        for curve in (panel.peach_curve, panel.star_curve):
            values = [v for _h, v in curve]
            assert values == sorted(values)

    def test_ascii_chart_renders(self, panel):
        chart = ascii_chart(panel)
        assert "iec104" in chart
        assert "*" in chart and "o" in chart

    def test_report_includes_series_table(self, panel):
        report = render_panel_report(panel)
        assert "hour" in report
        assert "final paths" in report

    def test_final_increase_pct_computed(self, panel):
        assert isinstance(panel.final_increase_pct, float)


class TestTable1:
    def test_paper_table_shape(self):
        assert [name for name, _c in PAPER_TABLE1] == \
            ["lib60870", "libmodbus", "libiccp"]
        total = sum(sum(counts.values()) for _n, counts in PAPER_TABLE1)
        assert total == 9

    def test_expected_counts_from_registry(self):
        assert expected_counts(get_target("lib60870")) == {"SEGV": 3}
        assert expected_counts(get_target("libmodbus")) == {
            "SEGV": 1, "heap-use-after-free": 1}
        assert expected_counts(get_target("libiccp")) == {
            "SEGV": 3, "heap-buffer-overflow": 1}

    def test_row_runs_and_renders(self):
        row = run_table1_row("libiccp", repetitions=1, budget_hours=24.0,
                             config=CampaignConfig(budget_hours=24.0,
                                                   max_executions=800,
                                                   record_every=50))
        assert row.found_by_type  # at least one bug found quickly
        lines = row.render()
        assert any("libiccp" in line for line in lines)

    def test_render_table1_mentions_paper_total(self):
        from repro.analysis.tables import Table1Row
        rows = [Table1Row("lib60870", {"SEGV": 3}, {"SEGV": 3}, {}, [])]
        text = render_table1(rows)
        assert "TABLE I" in text
        assert "(paper: 9)" in text
        assert "Confirmed" in text

    def test_getcot_report_extraction(self):
        from repro.analysis.tables import Table1Row
        from repro.sanitizer import CrashReport
        report = CrashReport("SEGV", "cs101_asdu.c:CS101_ASDU_getCOT",
                             "bad address", b"\x68\x03\x00\x00\x00\x67")
        rows = [Table1Row("lib60870", {"SEGV": 1}, {"SEGV": 3}, {},
                          [report])]
        text = getcot_report(rows)
        assert "CS101_ASDU_getCOT" in text
        assert "SUMMARY: AddressSanitizer: SEGV" in text


class TestHeadline:
    def test_headline_report_aggregates(self):
        report = HeadlineReport(summaries=[
            ComparisonSummary("a", 24.0, 100, 120, 20.0, 2.0),
            ComparisonSummary("b", 24.0, 50, 65, 30.0, 8.0),
        ])
        assert report.average_increase_pct == pytest.approx(25.0)
        assert report.speedup_range == (2.0, 8.0)
        text = report.render()
        assert "paper: 1.2X-25X" in text
        assert "27.35%" in text

    def test_run_headline_on_one_target(self):
        report = run_headline([get_target("iec104")], repetitions=1,
                              budget_hours=24.0, config=_quick_config())
        assert len(report.summaries) == 1
        assert report.summaries[0].target_name == "iec104"


class TestCli:
    def test_targets_command(self, capsys):
        from repro.cli import main
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "libmodbus" in out and "opendnp3" in out

    def test_fuzz_command(self, capsys):
        from repro.cli import main
        assert main(["fuzz", "iec104", "--engine", "peach",
                     "--max-execs", "60", "--hours", "24"]) == 0
        assert "paths=" in capsys.readouterr().out

    def test_crack_command_valid_packet(self, capsys):
        from repro.cli import main
        from repro.protocols.modbus import build_read_request
        packet = build_read_request(3, 0, 2).hex()
        assert main(["crack", "libmodbus", packet]) == 0
        out = capsys.readouterr().out
        assert "InsTree" in out
        assert "cracked into" in out

    def test_crack_command_illegal_packet(self, capsys):
        from repro.cli import main
        assert main(["crack", "libmodbus", "ff"]) == 1

    def test_crack_command_bad_hex(self, capsys):
        from repro.cli import main
        assert main(["crack", "libmodbus", "zz"]) == 2
