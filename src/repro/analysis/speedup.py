"""Speed headline reproduction (§V-B): same coverage at 1.2X-25X.

For each project, measure how much faster Peach* reaches the path
coverage that baseline Peach achieves by the end of the budget, and the
final path increase — the two headline numbers of the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.campaign import CampaignConfig, run_repetitions
from repro.core.stats import ComparisonSummary, compare
from repro.protocols import TargetSpec, all_targets


@dataclass
class HeadlineReport:
    """Per-target comparison rows plus aggregate headline numbers."""

    summaries: List[ComparisonSummary]

    @property
    def average_increase_pct(self) -> float:
        if not self.summaries:
            return 0.0
        return sum(s.path_increase_pct for s in self.summaries) / \
            len(self.summaries)

    @property
    def speedup_range(self) -> tuple:
        speeds = [s.speedup for s in self.summaries if s.speedup]
        if not speeds:
            return (None, None)
        return (min(speeds), max(speeds))

    def render(self) -> str:
        lines = [
            "Peach vs Peach*: paths covered and speed to equal coverage",
            "-" * 66,
        ]
        lines.extend(summary.row() for summary in self.summaries)
        lines.append("-" * 66)
        low, high = self.speedup_range
        if low is not None:
            lines.append(
                f"speedup range {low:.1f}X-{high:.1f}X "
                "(paper: 1.2X-25X)")
        lines.append(
            f"average path increase {self.average_increase_pct:+.2f}% "
            "(paper: +27.35%, range 8.35%-36.84%)")
        return "\n".join(lines)


def run_headline(targets: Optional[List[TargetSpec]] = None, *,
                 repetitions: int = 3, budget_hours: float = 24.0,
                 base_seed: int = 50,
                 config: Optional[CampaignConfig] = None) -> HeadlineReport:
    """Run the full §V-B comparison across the selected targets."""
    if targets is None:
        targets = list(all_targets())
    summaries = []
    for spec in targets:
        cfg = config if config is not None else CampaignConfig()
        cfg.budget_hours = budget_hours
        peach = run_repetitions("peach", spec, repetitions=repetitions,
                                base_seed=base_seed, config=cfg)
        star = run_repetitions("peach-star", spec, repetitions=repetitions,
                               base_seed=base_seed, config=cfg)
        summaries.append(compare(peach, star, budget_hours))
    return HeadlineReport(summaries=summaries)
