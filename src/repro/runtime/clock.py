"""Simulated campaign clock.

The paper's Figure 4 plots paths covered against a 24-hour wall clock.
Re-running real 24-hour campaigns is neither possible nor necessary here:
what determines the curves is *how many executions* each fuzzer performs
and how good its seeds are.  :class:`SimulatedClock` charges every
execution a configurable cost (with separate surcharges for Peach*'s
instrumentation feedback, cracking and fixup work, so the comparison does
not hide Peach*'s overhead) and exposes a virtual "hours" axis.

This is the substitution documented in DESIGN.md §2: deterministic
execution budgets stand in for wall-clock budgets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Per-operation costs in virtual milliseconds.

    ``exec_cost_ms`` models the target's processing time per packet (large
    targets like libiec61850 are slower than IEC104).  The overhead knobs
    model the paper's honest accounting: Peach* pays for coverage
    collection on every run and for crack/fixup work on valuable seeds.

    The scale is deliberately compressed (DESIGN.md §2): one virtual
    execution stands for a *batch* of real executions, so the paper's
    24-hour budget corresponds to roughly 1.5k-2.5k virtual executions per
    target — enough to drive every campaign in CI while preserving the
    relative cost structure (Peach*'s instrumentation surcharge included).
    """

    exec_cost_ms: float = 40_000.0
    coverage_overhead_ms: float = 2_000.0
    crack_cost_ms: float = 8_000.0
    semantic_gen_cost_ms: float = 400.0
    fixup_cost_ms: float = 150.0


class SimulatedClock:
    """Virtual clock advanced by charged operation costs.

    The batched execution pipeline interleaves production and execution
    exactly like the unbatched loop, so every charge is a plain ``+=``
    in program order — float accumulation is bit-identical across batch
    sizes with no bookkeeping.
    """

    def __init__(self, cost_model: CostModel | None = None):
        self.costs = cost_model if cost_model is not None else CostModel()
        self.now_ms = 0.0

    # -- charges -------------------------------------------------------

    def charge_execution(self, instrumented: bool) -> None:
        """Charge one target execution (plus feedback overhead if any)."""
        self.now_ms += self.costs.exec_cost_ms
        if instrumented:
            self.now_ms += self.costs.coverage_overhead_ms

    def charge_crack(self) -> None:
        self.now_ms += self.costs.crack_cost_ms

    def charge_semantic_generation(self, seeds: int = 1) -> None:
        self.now_ms += self.costs.semantic_gen_cost_ms * seeds

    def charge_fixup(self) -> None:
        self.now_ms += self.costs.fixup_cost_ms

    @property
    def hours(self) -> float:
        """Virtual hours elapsed."""
        return self.now_ms / 3_600_000.0

    def reset(self) -> None:
        self.now_ms = 0.0
