"""Tests for the libiec61850-analog MMS target."""

import pytest

from repro.model import choose_model, generate_packet
from repro.protocols.common.ber import decode_tlv, iter_tlvs
from repro.protocols.iec61850 import (
    Iec61850Server, build_conclude_request, build_get_name_list,
    build_identify_request, build_initiate_request, build_read_request,
    build_tpkt_cotp, build_write_request, codec, make_pit, strip_tpkt_cotp,
)
from repro.sanitizer import MemoryFault, SimHeap


@pytest.fixture
def server():
    return Iec61850Server()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


def _mms(response):
    return strip_tpkt_cotp(response)


class TestFraming:
    def test_tpkt_cotp_roundtrip(self):
        payload = b"\xA0\x03\x02\x01\x01"
        assert strip_tpkt_cotp(build_tpkt_cotp(payload)) == payload

    def test_bad_tpkt_version_dropped(self, server):
        frame = bytearray(build_identify_request(1))
        frame[0] = 9
        assert _exec(server, bytes(frame)) is None

    def test_tpkt_length_mismatch_dropped(self, server):
        frame = bytearray(build_identify_request(1))
        frame[3] += 1
        assert _exec(server, bytes(frame)) is None

    def test_non_dt_cotp_dropped(self, server):
        frame = bytearray(build_identify_request(1))
        frame[5] = 0xE0  # CR instead of DT
        assert _exec(server, bytes(frame)) is None


class TestServices:
    def test_initiate_answered(self, server):
        response = _exec(server, build_initiate_request())
        assert _mms(response)[0] == codec.MMS_INITIATE_RESPONSE

    def test_conclude_answered(self, server):
        response = _exec(server, build_conclude_request())
        assert _mms(response)[0] == codec.MMS_CONCLUDE_RESPONSE

    def test_identify_mentions_vendor(self, server):
        response = _exec(server, build_identify_request(5))
        assert b"libiec61850-analog" in _mms(response)

    def test_read_known_variable(self, server):
        response = _exec(server, build_read_request(
            1, [("IED1_LD0", "LLN0$ST$Mod$stVal")]))
        mms = _mms(response)
        assert mms[0] == codec.MMS_CONFIRMED_RESPONSE
        assert bytes((codec.DATA_INTEGER,)) in mms

    def test_read_unknown_variable_data_access_error(self, server):
        response = _exec(server, build_read_request(
            1, [("IED1_LD0", "NoSuch$Item")]))
        mms = _mms(response)
        assert mms[0] == codec.MMS_CONFIRMED_RESPONSE
        assert b"\x80\x01\x0a" in mms  # DataAccessError object-nonexistent

    def test_read_unknown_domain(self, server):
        response = _exec(server, build_read_request(
            1, [("GHOST_LD", "LLN0$ST$Mod$stVal")]))
        assert b"\x80\x01\x0a" in _mms(response)

    def test_read_multiple_variables(self, server):
        response = _exec(server, build_read_request(1, [
            ("IED1_LD0", "LLN0$ST$Mod$stVal"),
            ("IED1_LD1", "XCBR1$ST$Pos$stVal"),
        ]))
        mms = _mms(response)
        assert mms.count(bytes((codec.DATA_INTEGER,))) >= 2

    def test_write_control_value(self, server):
        data = bytes((codec.DATA_BOOLEAN, 1, 1))
        response = _exec(server, build_write_request(
            1, "IED1_LD0", "GGIO1$CO$SPCSO1$Oper$ctlVal", data))
        assert b"\x81\x00" in _mms(response)  # write success
        assert server.model["IED1_LD0"]["GGIO1$CO$SPCSO1$Oper$ctlVal"][1] \
            is True

    def test_write_readonly_denied(self, server):
        data = bytes((codec.DATA_INTEGER, 1, 5))
        response = _exec(server, build_write_request(
            1, "IED1_LD0", "LLN0$ST$Mod$stVal", data))
        assert bytes((0x80, 1, 3)) in _mms(response)  # access denied

    def test_write_type_mismatch(self, server):
        data = bytes((codec.DATA_BOOLEAN, 1, 1))  # bool into int attribute
        response = _exec(server, build_write_request(
            1, "IED1_LD0", "LLN0$CF$Mod$ctlModel", data))
        assert bytes((0x80, 1, 7)) in _mms(response)  # type inconsistent

    def test_get_name_list_vmd_lists_domains(self, server):
        response = _exec(server, build_get_name_list(1, 9, None))
        mms = _mms(response)
        assert b"IED1_LD0" in mms and b"IED1_LD1" in mms

    def test_get_name_list_domain_lists_items(self, server):
        response = _exec(server, build_get_name_list(1, 9, "IED1_LD1"))
        assert b"XCBR1$ST$Pos$stVal" in _mms(response)

    def test_get_name_list_unknown_domain_error(self, server):
        response = _exec(server, build_get_name_list(1, 9, "NOPE"))
        assert _mms(response)[0] == codec.MMS_CONFIRMED_ERROR

    def test_unknown_service_confirmed_error(self, server):
        from repro.protocols.common.ber import encode_integer, encode_tlv
        pdu = encode_tlv(codec.MMS_CONFIRMED_REQUEST,
                         encode_integer(1) + encode_tlv(0xBF, b""))
        response = _exec(server, build_tpkt_cotp(pdu))
        assert _mms(response)[0] == codec.MMS_CONFIRMED_ERROR

    def test_invoke_id_echoed(self, server):
        response = _exec(server, build_identify_request(0x42))
        mms = _mms(response)
        _tag, value, _pos = decode_tlv(mms)
        invoke_tag, invoke_val, _ = decode_tlv(value)
        assert invoke_tag == 0x02
        assert invoke_val == b"\x42"


class TestRobustness:
    def test_malformed_ber_rejected_without_response(self, server):
        assert _exec(server, build_tpkt_cotp(b"\xA0\x7F")) is None

    def test_long_identifier_rejected(self, server):
        response = _exec(server, build_read_request(
            1, [("IED1_LD0", "A" * 70)]))
        assert _mms(response)[0] == codec.MMS_CONFIRMED_ERROR

    def test_non_printable_identifier_rejected(self, server):
        response = _exec(server, build_read_request(
            1, [("IED1_LD0", "bad\x01name")]))
        assert _mms(response)[0] == codec.MMS_CONFIRMED_ERROR

    def test_no_faults_under_fuzzing(self, server, rng):
        """Table I lists no libiec61850 bugs — fuzzing must not crash."""
        pit = make_pit()
        for _ in range(1500):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            server.reset()
            try:
                _exec(server, wire)
            except MemoryFault as fault:  # pragma: no cover
                pytest.fail(f"unexpected fault: {fault}")

    def test_pit_defaults_valid_and_answered(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            server.reset()
            _exec(server, raw)

    def test_pit_nested_length_relations_consistent(self):
        """Every BER length byte must equal its content's length."""
        for model in make_pit():
            tree = model.build_default()
            for leaf in tree.iter_leaves():
                relation = leaf.field.relation
                if relation is None:
                    continue
                target = tree.find(relation.of)
                assert leaf.value == len(target.raw) + relation.adjust
