"""Differential parse oracles: divergence is a finding, not just crashes.

The paper counts only memory faults as findings.  Protocol
implementations disagree long before they crash: a strict parser
rejects a frame a lenient one silently repairs, or two stacks that both
claim the wire format classify the same bytes differently — the raw
material of request-smuggling and state-desynchronization bugs.  This
module turns such disagreement into a first-class finding:

* **strict vs lenient** — every delivered frame is parsed through both
  paths of its step's :class:`~repro.model.datamodel.DataModel`.  A
  divergence is recorded when the lenient path *repairs* a frame the
  strict path rejects into a strictly-legal packet (a lenient stack
  would act on a reading of bytes a strict stack drops), or when both
  accept but the lenient reading re-serializes to different bytes.
* **cross-stack APCI** — the IEC 104 project's ``frame_kind`` ignores
  the APCI length octet while the lib60870 stack validates it; on
  fragmented or corrupted frames the two classifiers genuinely disagree
  about what kind of frame (or whether a frame at all) is on the wire.

:class:`DivergenceReport` mirrors the duck-typed surface of
:class:`~repro.sanitizer.report.CrashReport` (``kind``/``site``/
``dedup_key``/``bucket_key``/...), so deduplication
(:class:`~repro.sanitizer.report.CrashDatabase`), workspace
persistence, triage bucketing and the severity table all compose
unchanged.  Minimization is oracle-based — re-*parsing*, not
re-executing — so :func:`minimize_divergence` reuses the field-aware/
ddmin reducers with a pure-bytes predicate.

Oracles are pure functions of the delivered bytes: no server, no heap,
no RNG — which is what lets divergence findings resume bit-identically
(the re-driven window re-derives the identical reports).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.model.fields import ParseError
from repro.sanitizer.report import CrashReport

#: divergence kinds (severity table entries live in repro.triage.bucket)
KIND_PARSE = "parse-divergence"
KIND_CROSS_STACK = "cross-stack-divergence"

#: bound on the examine cache (packets are mostly unique; duplicates —
#: the duplicate fault, minimization probes — are what the cache serves)
_CACHE_LIMIT = 4096


@dataclass
class DivergenceReport(CrashReport):
    """A parse-path disagreement, shaped like a crash report.

    ``packet`` holds the delivered (post-channel) frame, ``site`` the
    stabilized disagreement identity, and ``oracle`` which differential
    found it (``"strict-lenient"`` or ``"cross-stack"``).
    """

    oracle: str = "strict-lenient"

    def summary_line(self) -> str:
        return f"SUMMARY: DifferentialOracle: {self.kind} {self.site}"

    def render(self) -> str:
        from repro.util import hexdump
        lines = [
            f"==DIVERGENCE: {self.oracle} oracle: "
            f"{self.kind} at site {self.site}",
            f"    {self.detail}" if self.detail else "",
            self.summary_line(),
            "",
            f"diverging frame ({len(self.packet)} bytes, "
            f"model={self.model_name or 'unknown'}):",
            hexdump(self.packet),
        ]
        return "\n".join(line for line in lines if line != "")


_PARENS = re.compile(r"\s*\([^)]*\)")
_DIGITS = re.compile(r"\d+")


def _reason_slug(exc: Exception) -> str:
    """A stable site label from a ParseError message.

    Parenthesized specifics (offending values) and digit runs vary per
    packet; stripping them makes the site a function of *where* the
    strict path gave up, so deduplication converges.
    """
    text = _PARENS.sub("", str(exc))
    text = _DIGITS.sub("#", text)
    return " ".join(text.split()) or "rejected"


class DifferentialOracle:
    """Runs the differential checks over delivered frames.

    Parameters
    ----------
    pit:
        The target's format specification (strict/lenient differential
        runs against the step's model).
    cross_stack:
        Optional pair of ``(stack_name, classify)`` entries whose
        classifiers both claim the wire format; a frame they disagree
        on is a cross-stack divergence.  ``classify(frame) -> str``.
    """

    def __init__(self, pit, cross_stack: Optional[Tuple[tuple, tuple]] = None):
        self.pit = pit
        self._models = {model.name: model for model in pit}
        self.cross_stack = cross_stack
        #: (model_name, frame) -> tuple of (oracle, kind, site, detail)
        self._cache: Dict[Tuple[Optional[str], bytes], tuple] = {}

    # -- public entry ------------------------------------------------------

    def examine(self, frame: bytes, model_name: Optional[str],
                execution_index: int) -> List[DivergenceReport]:
        """Every divergence the delivered *frame* exhibits."""
        key = (model_name, frame)
        findings = self._cache.get(key)
        if findings is None:
            findings = tuple(self._findings(frame, model_name))
            if len(self._cache) >= _CACHE_LIMIT:
                self._cache.clear()
            self._cache[key] = findings
        return [DivergenceReport(kind=kind, site=site, detail=detail,
                                 packet=frame, model_name=model_name,
                                 execution_index=execution_index,
                                 oracle=oracle)
                for oracle, kind, site, detail in findings]

    # -- the differentials -------------------------------------------------

    def _findings(self, frame: bytes,
                  model_name: Optional[str]) -> List[tuple]:
        findings = self._strict_vs_lenient(frame, model_name)
        findings.extend(self._cross_stack(frame, model_name))
        return findings

    def _strict_vs_lenient(self, frame: bytes,
                           model_name: Optional[str]) -> List[tuple]:
        model = self._models.get(model_name) if model_name else None
        if model is None:
            return []
        try:
            strict_tree = model.parse(frame)
            strict_exc = None
        except ParseError as exc:
            strict_tree = None
            strict_exc = exc
        try:
            lenient_tree = model.parse(frame, strict=False)
        except ParseError:
            # both paths reject (e.g. a corrupted token): they agree
            return []
        try:
            rebuilt = model.to_wire(lenient_tree)
        except Exception:
            return []
        if strict_tree is not None:
            if rebuilt != frame:
                return [(
                    "strict-lenient", KIND_PARSE,
                    f"{model.name}:lenient-misread",
                    "both parse paths accept the frame but the lenient "
                    f"reading re-serializes to {len(rebuilt)} bytes that "
                    "differ from the wire",
                )]
            return []
        # strict rejected; a lenient stack that repairs the frame into
        # strictly-legal bytes would act where a strict stack drops
        if rebuilt != frame and self._parses_strictly(model, rebuilt):
            return [(
                "strict-lenient", KIND_PARSE,
                f"{model.name}:{_reason_slug(strict_exc)}",
                f"strict parse rejects ({strict_exc}) but the lenient "
                f"path repairs the frame into a strictly-legal "
                f"{len(rebuilt)}-byte packet",
            )]
        return []

    @staticmethod
    def _parses_strictly(model, packet: bytes) -> bool:
        try:
            model.parse(packet)
            return True
        except ParseError:
            return False

    def _cross_stack(self, frame: bytes,
                     model_name: Optional[str]) -> List[tuple]:
        if self.cross_stack is None:
            return []
        (name_a, classify_a), (name_b, classify_b) = self.cross_stack
        kind_a = classify_a(frame)
        kind_b = classify_b(frame)
        if kind_a == kind_b:
            return []
        return [(
            "cross-stack", KIND_CROSS_STACK,
            f"apci:{name_a}={kind_a}!={name_b}={kind_b}",
            f"{name_a} classifies the frame as {kind_a!r} while "
            f"{name_b} sees {kind_b!r}: the stacks disagree about what "
            "is on the wire",
        )]


#: targets whose wire format two bundled stacks both claim
_CROSS_STACK_TARGETS = ("iec104", "lib60870")


def make_oracle(target_spec, pit=None) -> DifferentialOracle:
    """The differential oracle for one target.

    The strict/lenient pair applies everywhere; the APCI cross-stack
    differential is attached for the two IEC 60870-5-104 stacks, whose
    codecs independently classify the same frame format.
    """
    pit = pit if pit is not None else target_spec.make_pit()
    cross = None
    if target_spec.name in _CROSS_STACK_TARGETS:
        from repro.protocols.iec104 import codec as iec104_codec
        from repro.protocols.lib60870 import codec as lib60870_codec
        cross = (("iec104", iec104_codec.frame_kind),
                 ("lib60870", lib60870_codec.frame_kind))
    return DifferentialOracle(pit, cross_stack=cross)


# ---------------------------------------------------------------------------
# minimization (oracle re-evaluation, no sanitizer executions)
# ---------------------------------------------------------------------------

class DivergenceChecker:
    """Re-evaluates candidate frames through the oracle.

    The divergence analog of
    :class:`~repro.triage.minimize.CrashChecker`: ``executions`` counts
    oracle re-evaluations so triage budget accounting stays uniform
    across finding classes.
    """

    def __init__(self, target_spec, oracle: Optional[DifferentialOracle] = None):
        self.oracle = oracle if oracle is not None \
            else make_oracle(target_spec)
        self.pit = self.oracle.pit
        self.executions = 0
        self._keys: Dict[Tuple[Optional[str], bytes], frozenset] = {}

    def divergence_keys(self, frame: bytes,
                        model_name: Optional[str]) -> frozenset:
        """The dedup keys the frame diverges on (may be empty)."""
        cache_key = (model_name, frame)
        cached = self._keys.get(cache_key)
        if cached is not None:
            return cached
        self.executions += 1
        keys = frozenset(report.dedup_key for report in
                         self.oracle.examine(frame, model_name, 0))
        self._keys[cache_key] = keys
        return keys


def minimize_divergence(target_spec, report: DivergenceReport, *,
                        max_executions: int = 3000,
                        checker: Optional[DivergenceChecker] = None
                        ) -> "MinimizationResult":
    """Minimize a diverging frame while preserving its dedup key.

    Same reducer pair as crash minimization (field-aware shrink, then
    byte-level ddmin, iterated to a fixpoint), but the predicate is a
    pure oracle re-evaluation — no server, no sanitizer.
    """
    from repro.triage.minimize import (
        MinimizationResult, ddmin_bytes, shrink_fields,
    )

    if checker is None:
        checker = DivergenceChecker(target_spec)
    key = report.dedup_key
    started = checker.executions
    if key not in checker.divergence_keys(report.packet,
                                          report.model_name):
        return MinimizationResult(
            original=report.packet, minimized=report.packet,
            dedup_key=key, confirmed=False,
            executions=checker.executions - started)

    def reproduces(candidate: bytes) -> bool:
        return key in checker.divergence_keys(candidate,
                                              report.model_name)

    budget = [max_executions]
    best = report.packet
    while budget[0] > 0:
        shrunk = shrink_fields(checker.pit, best, reproduces, budget)
        shrunk = ddmin_bytes(shrunk, reproduces, budget)
        if len(shrunk) >= len(best):
            break
        best = shrunk
    final = next(
        (again for again in checker.oracle.examine(
            best, report.model_name, report.execution_index)
         if again.dedup_key == key), None)
    return MinimizationResult(
        original=report.packet, minimized=best, dedup_key=key,
        confirmed=True, executions=checker.executions - started,
        report=final)
