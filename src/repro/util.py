"""Small shared utilities: stable hashing and byte helpers.

The fuzzer needs *stable* identifiers (basic-block ids, rule signatures)
that do not change between processes, so everything here avoids Python's
randomized ``hash()``.
"""

from __future__ import annotations

import re

_FNV32_OFFSET = 0x811C9DC5
_FNV32_PRIME = 0x01000193


def fnv1a32(data: bytes | str) -> int:
    """Return the 32-bit FNV-1a hash of *data*.

    Used as the "compile-time random" basic-block identifier of the paper's
    instrumentation snippet and for construction-rule signatures.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    acc = _FNV32_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV32_PRIME) & 0xFFFFFFFF
    return acc


def fnv1a32_fold(values, width: int = 4) -> int:
    """FNV-1a over a sequence of ints, each folded as *width* LE bytes.

    Used for order-sensitive identity of int sequences (e.g. the
    call-site context of a crash) without materializing a byte string.
    """
    acc = _FNV32_OFFSET
    for value in values:
        for shift in range(0, width * 8, 8):
            acc ^= (value >> shift) & 0xFF
            acc = (acc * _FNV32_PRIME) & 0xFFFFFFFF
    return acc


def hexdump(data: bytes, width: int = 16) -> str:
    """Render *data* as a classic offset/hex/ascii dump (for crash reports)."""
    lines = []
    for start in range(0, len(data), width):
        chunk = data[start:start + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{start:08x}  {hexpart:<{width * 3}} |{asciipart}|")
    return "\n".join(lines)


_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def fs_slug(text: str) -> str:
    """Collapse *text* into a filesystem-safe slug (crash/report names)."""
    return _SLUG_RE.sub("_", text).strip("_")


def clamp(value: int, lo: int, hi: int) -> int:
    """Clamp *value* into the inclusive range [*lo*, *hi*]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value
