"""Instrumented-target runtime: coverage maps, collectors, clock, harness."""

from repro.runtime.clock import CostModel, SimulatedClock
from repro.runtime.coverage import (
    MAP_SIZE, CoverageMap, GlobalCoverage, bucket_count,
)
from repro.runtime.instrument import (
    Collector, ExplicitCollector, HangBudgetExceeded, TracingCollector,
)
from repro.runtime.target import ExecResult, ProtocolServer, Target

__all__ = [
    "Collector", "CostModel", "CoverageMap", "ExecResult",
    "ExplicitCollector", "GlobalCoverage", "HangBudgetExceeded", "MAP_SIZE",
    "ProtocolServer", "SimulatedClock", "Target", "TracingCollector",
    "bucket_count",
]
