#!/usr/bin/env python3
"""Vulnerability triage: the paper's Table I workflow, productionized.

Fuzzes the three bug-carrying targets with Peach* — persisting each
campaign to an on-disk workspace — then runs the triage subsystem over
the crashes: ASan-style dedup refined by call-site-sequence buckets,
severity classification, test-case minimization (field-aware shrink +
byte-level ddmin, re-executed under the sanitizer), and standalone
reproducer export.  The lib60870 ``CS101_ASDU_getCOT`` SEGV the paper
analyses in Listings 1 and 2 comes out as a minimized packet a few
bytes long instead of whatever oversized mutant first hit it.

Run:  python examples/triage_vulnerabilities.py [hours] [workspace-root]

Workspaces land under <workspace-root> (default: a temp directory) and
can be re-examined later:

    peachstar triage --workspace <root>/<target> --verbose
    peachstar resume <root>/<target>
"""

import os
import sys
import tempfile

from repro import (
    CampaignConfig, WorkspaceError, get_target, run_campaign,
    triage_reports,
)
from repro.analysis import render_triage_table

BUGGY_TARGETS = ("lib60870", "libmodbus", "libiccp")


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 24.0
    root = sys.argv[2] if len(sys.argv) > 2 else \
        tempfile.mkdtemp(prefix="peachstar-triage-")
    total_bugs = 0
    total_minimized = 0
    for target_name in BUGGY_TARGETS:
        spec = get_target(target_name)
        workspace = os.path.join(root, target_name)
        print("=" * 68)
        print(f"fuzzing {spec.paper_project} "
              f"({spec.seeded_bug_count} seeded vulnerabilities) "
              f"for {hours:.0f} simulated hours -> {workspace}")
        print("=" * 68)
        try:
            result = run_campaign(
                "peach-star", spec, seed=7,
                config=CampaignConfig(budget_hours=hours,
                                      workspace=workspace))
        except WorkspaceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            sys.exit(2)
        total_bugs += len(result.unique_crashes)
        if not result.unique_crashes:
            print("no crashes within budget\n")
            continue
        triage = triage_reports(spec, result.unique_crashes,
                                out_dir=os.path.join(workspace, "repro"))
        total_minimized += triage.minimized_count
        print(render_triage_table(triage))
        for crash in triage.crashes:
            first_seen = result.crash_times.get(
                crash.report.dedup_key, 0.0)
            print(f"\n[{first_seen:5.2f}h] {crash.bucket.severity} "
                  "— minimized reproducer:")
            print(crash.final_report.render())
        missing = spec.seeded_bug_sites - \
            {r.dedup_key for r in result.unique_crashes}
        if missing:
            print(f"\nnot reached within budget: {sorted(missing)}")
        print()
    print("=" * 68)
    print(f"total unique vulnerabilities exposed: {total_bugs} (paper: 9); "
          f"{total_minimized} reproducers strictly smaller than the "
          "provoking input")
    print(f"workspaces + reproducers: {root}")


if __name__ == "__main__":
    main()
