"""Instantiation Tree (paper Definition 1).

An :class:`InsTree` mirrors the data-model tree but its nodes hold
*realistic data chunks* — concrete values and raw bytes — instead of
construction rules.  It is produced either by building a packet (every
generated seed carries its InsTree) or by parsing a valuable seed in the
File Cracker (paper Alg. 2).

A *puzzle* (paper Definition 2) is the in-order byte content of any
sub-tree; :meth:`InsNode.iter_puzzles` yields them in DFS order, exactly
as Alg. 2's ``DFS`` procedure collects ``SubTreePuzzle`` values.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.model.fields import Field, RuleSignature


class InsNode:
    """One node of an Instantiation Tree.

    Attributes
    ----------
    field:
        The construction rule this node instantiates.
    value:
        Decoded value for leaves (int/str/bytes); ``None`` for internal
        nodes.
    children:
        Child nodes, in data-model order.
    raw:
        The exact bytes this sub-tree contributes to the packet — i.e.
        this sub-tree's puzzle.
    offset:
        Byte offset of ``raw`` within the whole packet.
    """

    __slots__ = ("field", "value", "children", "raw", "offset")

    def __init__(self, field: Field, value=None,
                 children: Optional[List["InsNode"]] = None,
                 raw: bytes = b"", offset: int = 0):
        self.field = field
        self.value = value
        self.children: List[InsNode] = children if children is not None else []
        self.raw = raw
        self.offset = offset

    @property
    def name(self) -> str:
        return self.field.name

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def signature(self) -> RuleSignature:
        return self.field.signature()

    # -- traversal ----------------------------------------------------------

    def iter_nodes(self) -> Iterator["InsNode"]:
        """Yield this node then all descendants, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_leaves(self) -> Iterator["InsNode"]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node

    def iter_puzzles(self) -> Iterator[Tuple[RuleSignature, bytes]]:
        """Yield ``(signature, puzzle_bytes)`` for every sub-tree, post-order.

        This is the paper's Alg. 2 ``DFS``: a leaf's puzzle is its own
        content; an internal node's puzzle is the in-order joint of its
        children's puzzles, and every sub-tree contributes one corpus
        entry.
        """
        for child in self.children:
            yield from child.iter_puzzles()
        yield self.signature(), self.raw

    def find(self, name: str) -> Optional["InsNode"]:
        """Return the first node named *name* in DFS order, or ``None``."""
        for node in self.iter_nodes():
            if node.name == name:
                return node
        return None

    def leaf_values(self) -> dict:
        """Map each leaf's dotted path to its decoded value."""
        out = {}
        self._collect_leaf_values("", out)
        return out

    def _collect_leaf_values(self, prefix: str, out: dict) -> None:
        path = f"{prefix}.{self.name}" if prefix else self.name
        if self.is_leaf:
            out[path] = self.value
        elif self.field.kind == "repeat":
            # index repeated elements the way build paths do: items[i].item
            for index, child in enumerate(self.children):
                child._collect_leaf_values(f"{path}[{index}]", out)
        else:
            for child in self.children:
                child._collect_leaf_values(path, out)

    def pretty(self, indent: int = 0) -> str:
        """Human-readable rendering of the tree (used by the CLI/examples)."""
        pad = "  " * indent
        if self.is_leaf:
            shown = self.value
            if isinstance(shown, bytes) and len(shown) > 16:
                shown = shown[:16] + b"..."
            line = f"{pad}{self.name} = {shown!r}  ({self.signature()})"
            return line
        lines = [f"{pad}{self.name}/  ({len(self.raw)} bytes)"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InsNode {self.name!r} {len(self.raw)}B>"


class InsTree:
    """A parsed or built packet: root node plus the originating model name."""

    def __init__(self, model_name: str, root: InsNode):
        self.model_name = model_name
        self.root = root

    @property
    def raw(self) -> bytes:
        return self.root.raw

    def iter_puzzles(self) -> Iterator[Tuple[RuleSignature, bytes]]:
        return self.root.iter_puzzles()

    def iter_leaves(self) -> Iterator[InsNode]:
        return self.root.iter_leaves()

    def find(self, name: str) -> Optional[InsNode]:
        return self.root.find(name)

    def leaf_values(self) -> dict:
        return self.root.leaf_values()

    def pretty(self) -> str:
        return f"InsTree<{self.model_name}>\n{self.root.pretty(1)}"
