"""Export campaign results for downstream analysis.

Campaigns and Fig. 4 panels can be serialized to JSON (full fidelity),
CSV (the paths-over-time series, one row per sample) and Markdown (the
comparison tables used in EXPERIMENTS.md), so results survive outside a
pytest session and can be re-plotted with external tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List

from repro.core.campaign import CampaignResult
from repro.analysis.figures import Fig4Panel


def campaign_to_dict(result: CampaignResult) -> dict:
    """Lossless dict form of a campaign result (JSON-serializable)."""
    return {
        "engine": result.engine_name,
        "target": result.target_name,
        "seed": result.seed,
        "executions": result.executions,
        "final_paths": result.final_paths,
        "final_edges": result.final_edges,
        "series": [[hours, paths] for hours, paths in result.series],
        "unique_crashes": [
            {
                "kind": report.kind,
                "site": report.site,
                "detail": report.detail,
                "packet_hex": report.packet.hex(),
                "model": report.model_name,
                "first_seen_hours": result.crash_times.get(
                    report.dedup_key),
            }
            for report in result.unique_crashes
        ],
        "stats": dict(result.stats),
    }


def campaign_to_json(result: CampaignResult, *, indent: int = 2) -> str:
    """JSON text for one campaign."""
    return json.dumps(campaign_to_dict(result), indent=indent)


def campaigns_to_csv(results: Iterable[CampaignResult]) -> str:
    """CSV of all series samples: engine,target,seed,hours,paths."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["engine", "target", "seed", "sim_hours",
                     "paths_covered"])
    for result in results:
        for hours, paths in result.series:
            writer.writerow([result.engine_name, result.target_name,
                             result.seed, f"{hours:.4f}", paths])
    return buffer.getvalue()


def panel_to_markdown(panel: Fig4Panel) -> str:
    """Markdown table of one Fig. 4 panel's averaged curves."""
    lines = [
        f"### {panel.target_name}",
        "",
        "| sim hours | Peach | Peach\\* |",
        "|---|---|---|",
    ]
    for (hours, peach), (_h, star) in zip(panel.peach_curve,
                                          panel.star_curve):
        lines.append(f"| {hours:.1f} | {peach:.1f} | {star:.1f} |")
    lines.append("")
    lines.append(f"Final increase: **{panel.final_increase_pct:+.2f}%**")
    return "\n".join(lines)


def panels_to_markdown(panels: List[Fig4Panel]) -> str:
    """EXPERIMENTS.md-style summary table across panels."""
    lines = [
        "| project | Peach (final) | Peach\\* (final) | increase |",
        "|---|---|---|---|",
    ]
    for panel in panels:
        lines.append(
            f"| {panel.target_name} | {panel.peach_curve[-1][1]:.1f} "
            f"| {panel.star_curve[-1][1]:.1f} "
            f"| {panel.final_increase_pct:+.2f}% |")
    if panels:
        mean = sum(p.final_increase_pct for p in panels) / len(panels)
        lines.append(f"| **mean** | | | **{mean:+.2f}%** |")
    return "\n".join(lines)


def write_campaign_json(result: CampaignResult, path: str) -> None:
    """Write one campaign's JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(campaign_to_json(result))


def write_series_csv(results: Iterable[CampaignResult], path: str) -> None:
    """Write the combined series CSV to *path*."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(campaigns_to_csv(results))
