"""Property-based tests (hypothesis) on the protocol codecs.

Invariants the fuzzer relies on: framing roundtrips are identities, CRC
interleaving is reversible and corruption-detecting, and the safe codecs
agree with the data models' defaults.
"""

from hypothesis import given, settings, strategies as st

from repro.protocols.common.ber import decode_tlv, encode_tlv, iter_tlvs
from repro.protocols.dnp3 import add_crcs, codec as dnp3_codec, strip_crcs
from repro.protocols.iec104 import build_i_frame, build_s_frame, frame_kind
from repro.protocols.iec61850 import build_tpkt_cotp, strip_tpkt_cotp
from repro.protocols.modbus import build_mbap, parse_mbap


@given(st.integers(0, 0xFFFF), st.integers(0, 255),
       st.binary(min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_mbap_roundtrip(transaction_id, unit_id, pdu):
    frame = build_mbap(transaction_id, unit_id, pdu)
    header, parsed_pdu = parse_mbap(frame)
    assert header.transaction_id == transaction_id
    assert header.unit_id == unit_id
    assert parsed_pdu == pdu
    assert header.length == len(pdu) + 1


@given(st.integers(0, 0x7FFF), st.integers(0, 0x7FFF),
       st.binary(max_size=240))
@settings(max_examples=100, deadline=None)
def test_iec104_i_frame_classification(send_seq, recv_seq, asdu):
    frame = build_i_frame(send_seq, recv_seq, asdu)
    assert frame_kind(frame) == "I"
    assert frame[1] == 4 + len(asdu)


@given(st.integers(0, 0x7FFF))
@settings(max_examples=50, deadline=None)
def test_iec104_s_frame_classification(recv_seq):
    assert frame_kind(build_s_frame(recv_seq)) == "S"


@given(st.binary(max_size=120))
@settings(max_examples=100, deadline=None)
def test_dnp3_crc_interleave_roundtrip(user_data):
    logical = dnp3_codec.build_link_header(
        5 + len(user_data), 0xC4, 1, 2) + user_data
    assert strip_crcs(add_crcs(logical)) == logical


@given(st.binary(min_size=1, max_size=60), st.integers(0, 7))
@settings(max_examples=100, deadline=None)
def test_dnp3_crc_detects_user_data_corruption(user_data, bit):
    import pytest
    logical = dnp3_codec.build_link_header(
        5 + len(user_data), 0xC4, 1, 2) + user_data
    wire = bytearray(add_crcs(logical))
    wire[10] ^= 1 << bit  # first user-data octet (after header+crc)
    with pytest.raises(dnp3_codec.FrameError):
        strip_crcs(bytes(wire))


@given(st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_tpkt_cotp_roundtrip(payload):
    assert strip_tpkt_cotp(build_tpkt_cotp(payload)) == payload


@given(st.integers(0, 0xFF), st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_ber_tlv_roundtrip(tag, value):
    blob = encode_tlv(tag, value)
    decoded_tag, decoded_value, end = decode_tlv(blob)
    assert (decoded_tag, decoded_value, end) == (tag, value, len(blob))


@given(st.lists(st.tuples(st.integers(0, 0xFF), st.binary(max_size=40)),
                max_size=8))
@settings(max_examples=100, deadline=None)
def test_ber_tlv_sequences_roundtrip(items):
    data = b"".join(encode_tlv(tag, value) for tag, value in items)
    assert list(iter_tlvs(data)) == items
