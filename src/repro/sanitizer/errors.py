"""Simulated memory-safety faults (the AddressSanitizer analog).

The paper triages crashes with ASan/gdb; Table I classifies them as SEGV,
Heap Use after Free and Heap Buffer Overflow.  Our protocol targets run
against :class:`repro.sanitizer.heap.SimHeap`, whose checked accessors
raise these typed exceptions at the same logical sites the C bugs lived
at.  Each exception records the *site* (a ``file:line``-style label) so
reports dedupe the way ASan stack-top dedup does.
"""

from __future__ import annotations


class MemoryFault(Exception):
    """Base class of all simulated memory-safety violations."""

    kind = "MEMORY-FAULT"

    def __init__(self, site: str, detail: str = ""):
        self.site = site
        self.detail = detail
        super().__init__(f"{self.kind} at {site}" + (f": {detail}" if detail else ""))


class SimSegv(MemoryFault):
    """Access to an unmapped / wild address (ASan "SEGV on unknown address")."""

    kind = "SEGV"


class HeapBufferOverflow(MemoryFault):
    """Read/write past the bounds of a live heap allocation."""

    kind = "heap-buffer-overflow"


class HeapUseAfterFree(MemoryFault):
    """Access to a freed heap allocation."""

    kind = "heap-use-after-free"


class DoubleFree(MemoryFault):
    """``free`` called twice on the same allocation."""

    kind = "double-free"


class NullDeref(SimSegv):
    """Dereference of a NULL pointer (reported by ASan as SEGV)."""

    kind = "SEGV"
