"""Tests for the lib60870 target, including the paper's Listing 1 bug."""

import pytest

from repro.model import choose_model, generate_packet
from repro.protocols.lib60870 import (
    Lib60870Server, build_apci_i, build_asdu, build_object, build_u_frame,
    codec, cp56time, make_pit,
)
from repro.sanitizer import MemoryFault, SimHeap, SimSegv


@pytest.fixture
def server():
    return Lib60870Server()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


def _command(type_id, cot, ioa, element, count=1):
    asdu = build_asdu(type_id, count, False, cot, 0, 1,
                      build_object(ioa, element))
    return build_apci_i(0, 0, asdu)


class TestApci:
    def test_startdt_confirm(self, server):
        assert _exec(server, build_u_frame(0x07)) == build_u_frame(0x0B)

    def test_testfr_confirm(self, server):
        assert _exec(server, build_u_frame(0x43)) == build_u_frame(0x83)

    def test_stopdt_disables_asdu_processing(self, server):
        _exec(server, build_u_frame(0x13))
        assert _exec(server, _command(codec.C_IC_NA_1, 6, 0,
                                      bytes((20,)))) is None

    def test_s_frame_no_response(self, server):
        assert _exec(server, bytes((0x68, 4, 0x01, 0, 2, 0))) is None

    def test_bad_start_byte_dropped(self, server):
        assert _exec(server, bytes((0x69, 4, 0x07, 0, 0, 0))) is None

    def test_length_mismatch_dropped(self, server):
        assert _exec(server, bytes((0x68, 9, 0x07, 0, 0, 0))) is None


class TestCommands:
    def test_interrogation_confirmed(self, server):
        response = _exec(server, _command(codec.C_IC_NA_1, 6, 0,
                                          bytes((20,))))
        assert response is not None
        assert response[6] == codec.C_IC_NA_1

    def test_counter_interrogation(self, server):
        response = _exec(server, _command(codec.C_CI_NA_1, 6, 0,
                                          bytes((0x05,))))
        assert response is not None

    def test_clock_sync_valid(self, server):
        response = _exec(server, _command(codec.C_CS_NA_1, 6, 0,
                                          cp56time(0, 30, 12)))
        assert response is not None

    def test_read_command_known_ioa(self, server):
        asdu = build_asdu(codec.C_RD_NA_1, 1, False, 5, 0, 1,
                          build_object(codec.IOA_BASE, b""))
        response = _exec(server, build_apci_i(0, 0, asdu))
        assert response is not None
        assert response[6] == codec.M_ME_NB_1  # replies with a measurement

    def test_single_command_in_range_ioa(self, server):
        response = _exec(server, _command(codec.C_SC_NA_1, 6,
                                          codec.IOA_BASE, bytes((0x01,))))
        assert response is not None

    def test_single_command_unknown_ioa_negative(self, server):
        response = _exec(server, _command(codec.C_SC_NA_1, 6, 5,
                                          bytes((0x01,))))
        assert response[8] & 0x40  # negative confirmation bit

    def test_double_command_invalid_state(self, server):
        response = _exec(server, _command(codec.C_DC_NA_1, 6,
                                          codec.IOA_BASE, bytes((0x00,))))
        assert response is not None

    def test_setpoint_in_range_ok(self, server):
        element = b"\x00\x40" + b"\x00"  # NVA + QOS(0, in range)
        response = _exec(server, _command(codec.C_SE_NA_1, 6,
                                          codec.IOA_BASE, element))
        assert response is not None

    def test_wrong_cot_negatively_confirmed(self, server):
        response = _exec(server, _command(codec.C_IC_NA_1, 3, 0,
                                          bytes((20,))))
        assert response[8] & 0x40


class TestMonitorDirection:
    def test_single_points_decoded(self, server):
        assert _exec(server, _command(codec.M_SP_NA_1, 3, 0x10,
                                      bytes((1,)))) is None

    def test_sequence_of_objects(self, server):
        # SQ=1: one IOA then three contiguous elements
        objects = build_object(0x10, bytes((1,))) + bytes((0,)) + bytes((1,))
        asdu = build_asdu(codec.M_SP_NA_1, 3, True, 3, 0, 1, objects)
        assert _exec(server, build_apci_i(0, 0, asdu)) is None

    def test_truncated_object_list_safely_dropped(self, server):
        asdu = build_asdu(codec.M_ME_NC_1, 4, False, 3, 0, 1,
                          build_object(0x10, b"\x00\x00"))
        assert _exec(server, build_apci_i(0, 0, asdu)) is None

    def test_unknown_type_id_negative_confirm(self, server):
        asdu = build_asdu(0xC8, 1, False, 3, 0, 1, b"")
        response = _exec(server, build_apci_i(0, 0, asdu))
        assert response is not None
        assert response[8] & 0x40


class TestSeededBugs:
    def test_getcot_segv_on_two_byte_asdu(self, server):
        """Paper Listing 1/2: CS101_ASDU_getCOT reads asdu[2] without
        verification — SEGV on a 2-byte ASDU."""
        with pytest.raises(SimSegv) as exc:
            _exec(server, build_apci_i(0, 0, b"\x67\x01"))
        assert exc.value.site == "cs101_asdu.c:CS101_ASDU_getCOT"

    def test_getcot_segv_on_one_byte_asdu(self, server):
        with pytest.raises(SimSegv):
            _exec(server, build_apci_i(0, 0, b"\x67"))

    def test_getcot_safe_on_three_byte_asdu(self, server):
        _exec(server, build_apci_i(0, 0, b"\x67\x01\x06"))  # no fault

    def test_lookup_object_segv_on_wild_ioa(self, server):
        element = b"\x00\x40" + b"\x00"
        with pytest.raises(SimSegv) as exc:
            _exec(server, _command(codec.C_SE_NA_1, 6, 0xFFFFFF, element))
        assert exc.value.site == "cs101_slave.c:lookup_object"

    def test_lookup_object_gated_by_qos(self, server):
        """QOS out of range takes the checked path before the lookup."""
        element = b"\x00\x40" + b"\x7F"  # QOS qualifier 127 > 31
        response = _exec(server, _command(codec.C_SE_NA_1, 6, 0xFFFFFF,
                                          element))
        assert response is not None  # negative confirm, no crash

    def test_clock_sync_segv_on_truncated_time(self, server):
        with pytest.raises(SimSegv) as exc:
            _exec(server, _command(codec.C_CS_NA_1, 6, 0, b"\x00\x01"))
        assert exc.value.site == "cs104_slave.c:handle_clock_sync"

    def test_exactly_three_seeded_sites_under_fuzzing(self, server, rng):
        pit = make_pit()
        sites = set()
        for _ in range(2000):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            server.reset()
            try:
                _exec(server, wire)
            except MemoryFault as fault:
                sites.add((fault.kind, fault.site))
        allowed = {
            ("SEGV", "cs101_asdu.c:CS101_ASDU_getCOT"),
            ("SEGV", "cs101_slave.c:lookup_object"),
            ("SEGV", "cs104_slave.c:handle_clock_sync"),
        }
        assert sites <= allowed


class TestPit:
    def test_pit_defaults_valid_and_safe(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            server.reset()
            _exec(server, raw)

    def test_asdu_header_semantics_shared(self):
        pit = make_pit()
        a = pit.model("lib60870.interrogation").root.find("cot") \
            if hasattr(pit.model("lib60870.interrogation").root, "find") \
            else None
        clock = pit.model("lib60870.clock_sync")
        interro = pit.model("lib60870.interrogation")
        cot_a = [f for f in interro.linear() if f.name == "cot"][0]
        cot_b = [f for f in clock.linear() if f.name == "cot"][0]
        assert cot_a.signature() == cot_b.signature()
