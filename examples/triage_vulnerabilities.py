#!/usr/bin/env python3
"""Vulnerability triage: reproduce the paper's Table I workflow.

Fuzzes the three bug-carrying targets with Peach*, deduplicates the
crashes ASan-style, and prints each unique vulnerability with the
provoking packet — including the lib60870 ``CS101_ASDU_getCOT`` SEGV the
paper analyses in its Listings 1 and 2.

Run:  python examples/triage_vulnerabilities.py [hours]
"""

import sys

from repro import CampaignConfig, get_target, run_campaign

BUGGY_TARGETS = ("lib60870", "libmodbus", "libiccp")


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 24.0
    total = 0
    for target_name in BUGGY_TARGETS:
        spec = get_target(target_name)
        print("=" * 68)
        print(f"fuzzing {spec.paper_project} "
              f"({spec.seeded_bug_count} seeded vulnerabilities) "
              f"for {hours:.0f} simulated hours")
        print("=" * 68)
        result = run_campaign("peach-star", spec, seed=7,
                              config=CampaignConfig(budget_hours=hours))
        total += len(result.unique_crashes)
        for report in sorted(result.unique_crashes,
                             key=lambda r: result.crash_times[r.dedup_key]):
            hours_seen = result.crash_times[report.dedup_key]
            print(f"\n[{hours_seen:5.2f}h] unique vulnerability:")
            print(report.render())
        missing = spec.seeded_bug_sites - \
            {r.dedup_key for r in result.unique_crashes}
        if missing:
            print(f"\nnot reached within budget: {sorted(missing)}")
        print()
    print("=" * 68)
    print(f"total unique vulnerabilities exposed: {total} (paper: 9)")


if __name__ == "__main__":
    main()
