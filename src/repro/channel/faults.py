"""The channel seam: what happens to a frame between fuzzer and target.

The paper's evaluation (and every campaign before this subsystem)
assumes a perfect transport: the bytes the engine emits are exactly the
bytes the server parses.  Real ICS deployments run over lossy serial
links and TCP middleboxes, and the interesting server bugs — stale
retransmission handling, sequence-number confusion, length/framing
desynchronization — only trigger when the transport misbehaves.

:class:`Channel` is the seam :meth:`repro.runtime.target.Target.run` /
``run_trace`` consult per step; :class:`DirectChannel` is the pinned
byte-identical passthrough (parity-tested against the channel-less
path), and :class:`FaultingChannel` injects one of five classic
transport faults per frame, driven by its own seeded RNG so campaigns
stay deterministic and kill/resume stays bit-identical (the RNG state
checkpoints with the workspace).

The fault menu mirrors what a fuzzing proxy can do in flight:

* **drop** — the frame never arrives;
* **duplicate** — the frame arrives twice (TCP retransmission);
* **reorder** — the frame is held and delivered *after* its successor
  (adjacent swap; a held frame still pending at trace end is delivered
  by :meth:`Channel.flush`);
* **fragment** — the frame arrives as two reads split at a random cut
  (stream framing without message boundaries);
* **corrupt** — one random bit flips in flight (serial-line noise);
* **burst** (opt-in, ``--channel-faults-burst N``) — a run of 2..N
  consecutive frames vanishes outright (link outage / middlebox reset).
  The run length is drawn once at burst start and the continuation
  frames spend no RNG draws, so the draw sequence stays a pure function
  of the checkpointed RNG state.  With ``burst == 0`` the selection
  roll space is unchanged, keeping pre-burst seeded campaigns
  bit-identical.

Corrupt and fragment are the levers generation-based fuzzing cannot
reach by construction: token fields (start bytes) are never mutated and
length relations are always recomputed, so a generated packet is always
honestly framed — only the channel can present the server with a bad
start byte or a length octet that disagrees with the read.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class Channel:
    """Base seam: byte-identical passthrough with no held state.

    ``transmit(index, wire)`` returns the frames to deliver *now* (in
    order); ``flush()`` returns frames still held at the trace
    boundary; ``reset()`` clears per-trace state (never the RNG).
    ``snapshot()``/``restore()`` are the workspace-checkpoint hooks —
    the base channel is stateless, so it snapshots to ``None`` and the
    workspace skips it.
    """

    def transmit(self, index: int, wire: bytes) -> List[bytes]:
        return [wire]

    def flush(self) -> List[bytes]:
        return []

    def reset(self) -> None:
        """Clear held frames at a trace boundary (RNG is untouched)."""

    def snapshot(self) -> Optional[dict]:
        return None

    def restore(self, blob: dict) -> None:
        """Stateless channels have nothing to restore."""


class DirectChannel(Channel):
    """The pinned passthrough: every frame delivered once, unchanged.

    Exists so the channel seam itself can be parity-tested: a campaign
    run through a :class:`DirectChannel` must be bit-identical to one
    run with no channel at all, for every protocol.
    """


#: fault menu, in the order the selection roll indexes it
FAULT_KINDS = ("drop", "duplicate", "reorder", "fragment", "corrupt")


class FaultingChannel(Channel):
    """Seeded per-frame fault injection.

    Every frame costs exactly one uniform roll against *rate*; a
    faulted frame costs the selection roll plus the fault's own draws.
    The draw sequence is a pure function of the RNG state and the frame
    sizes, so a campaign with a faulting channel is as deterministic as
    one without — checkpointing the RNG state (``snapshot``/``restore``)
    is all kill/resume needs.
    """

    def __init__(self, rate: float, rng: random.Random, burst: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate!r} not in [0, 1]")
        if burst < 0:
            raise ValueError(f"burst length {burst!r} < 0")
        self.rate = rate
        self.rng = rng
        #: maximum burst-loss run length; 0 disables the burst fault and
        #: keeps the selection-roll space identical to pre-burst builds,
        #: so existing seeded campaigns stay bit-identical
        self.burst = burst
        #: frames still to drop in the current burst run (no RNG draws
        #: are spent on them — the run length was drawn at burst start)
        self._burst_remaining = 0
        #: frame held back by a pending reorder (delivered after the
        #: next frame, or by flush() at the trace boundary)
        self._held: Optional[bytes] = None
        self.faults_injected = 0
        self.fault_counts: Dict[str, int] = {kind: 0
                                             for kind in FAULT_KINDS}
        self.fault_counts["burst"] = 0

    # -- fault application ------------------------------------------------

    def _menu(self) -> tuple:
        return FAULT_KINDS + ("burst",) if self.burst > 0 else FAULT_KINDS

    def transmit(self, index: int, wire: bytes) -> List[bytes]:
        if self._burst_remaining > 0:
            # mid-burst: this frame is lost outright, no rolls spent
            self._burst_remaining -= 1
            self.faults_injected += 1
            self.fault_counts["burst"] += 1
            frames: List[bytes] = []
            if self._held is not None:
                frames.append(self._held)
                self._held = None
            return frames
        fault = None
        if self.rng.random() < self.rate:
            menu = self._menu()
            fault = menu[self.rng.randrange(len(menu))]
        frames = self._apply(fault, wire)
        # a previously held frame lands right after this step's frames:
        # the adjacent swap that makes "reorder" mean what it says
        if self._held is not None and fault != "reorder":
            frames.append(self._held)
            self._held = None
        return frames

    def _apply(self, fault: Optional[str], wire: bytes) -> List[bytes]:
        if fault is None:
            return [wire]
        if fault == "reorder" and self._held is not None:
            # only one frame can be in flight; degrade to passthrough
            # (no count — nothing was injected)
            return [wire]
        if fault == "fragment" and len(wire) < 2:
            return [wire]  # nothing to split
        if fault == "corrupt" and not wire:
            return [wire]
        self.faults_injected += 1
        self.fault_counts[fault] += 1
        if fault == "drop":
            return []
        if fault == "duplicate":
            return [wire, wire]
        if fault == "reorder":
            self._held = wire
            return []
        if fault == "fragment":
            cut = self.rng.randint(1, len(wire) - 1)
            return [wire[:cut], wire[cut:]]
        if fault == "burst":
            # a loss burst: this frame and the next (length - 1) frames
            # all vanish (link outage / middlebox reset).  The run
            # length is drawn now; continuation drops spend no rolls.
            length = self.rng.randint(2, max(2, self.burst))
            self._burst_remaining = length - 1
            return []
        # corrupt: flip one random bit in flight
        position = self.rng.randrange(len(wire))
        bit = 1 << self.rng.randrange(8)
        mutated = bytearray(wire)
        mutated[position] ^= bit
        return [bytes(mutated)]

    def flush(self) -> List[bytes]:
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]

    def reset(self) -> None:
        self._held = None
        self._burst_remaining = 0

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe state for the workspace checkpoint.

        The held frame is snapshotted for completeness, but campaigns
        always checkpoint *between* iterations — traces execute
        atomically inside ``iterate()`` and both target entry points
        flush at the boundary — so it is ``None`` at every checkpoint.
        """
        version, internal, gauss = self.rng.getstate()
        return {
            "rate": self.rate,
            "rng_state": [version, list(internal), gauss],
            "held": self._held.hex() if self._held is not None else None,
            "faults_injected": self.faults_injected,
            "fault_counts": dict(self.fault_counts),
            "burst": self.burst,
            "burst_remaining": self._burst_remaining,
        }

    def restore(self, blob: dict) -> None:
        version, internal, gauss = blob["rng_state"]
        self.rng.setstate((version, tuple(internal), gauss))
        self.rate = blob["rate"]
        held = blob.get("held")
        self._held = bytes.fromhex(held) if held is not None else None
        self.faults_injected = blob.get("faults_injected", 0)
        counts = blob.get("fault_counts", {})
        for kind in (*FAULT_KINDS, "burst"):
            self.fault_counts[kind] = counts.get(kind, 0)
        self.burst = blob.get("burst", 0)
        self._burst_remaining = blob.get("burst_remaining", 0)
