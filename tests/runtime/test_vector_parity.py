"""Sparse-vs-vector coverage parity: the numpy kernels must be invisible.

``VectorCoverageMap``/``VectorGlobalCoverage`` re-implement the hot
coverage operations with numpy fancy-indexing, switching to the
inherited pure-Python walks below ``_VECTOR_MIN_JOURNAL`` where the
array-build overhead dominates.  These tests pin the contract from
ISSUE (PR 10): for the same visit sequences, every observable — merge
decisions, virgin bytes, path hashes, hit streams, whole
``CampaignResult``s — is bit-for-bit identical between the two
implementations, on journals both below and above the hybrid threshold
so the numpy branches are actually exercised.

Property-style invariants ride along: ``path_hash``/``iter_hits`` are
pure in the map contents (touch order changes counts deterministically,
and replaying the same order always agrees), ``fast_reset`` is
indistinguishable from ``reset``, and the memoized sorted-journal cache
never leaks state across generations.
"""

import random

import pytest

from repro.core.campaign import CampaignConfig, make_engine, run_campaign
from repro.protocols import TARGET_NAMES, get_target
from repro.runtime.coverage import (
    MAP_SIZE, _VECTOR_MIN_JOURNAL, CoverageMap, GlobalCoverage,
    VectorCoverageMap, VectorGlobalCoverage, make_coverage_map,
    make_global_coverage, numpy_available, resolve_coverage_impl,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vector impl needs numpy")

#: journal lengths straddling the hybrid threshold: the short ones run
#: the inherited pure-Python fallbacks, the long ones the numpy kernels
JOURNAL_LENGTHS = (0, 3, 60, _VECTOR_MIN_JOURNAL - 1,
                   _VECTOR_MIN_JOURNAL, _VECTOR_MIN_JOURNAL + 1,
                   400, 1500)


def _pair():
    return CoverageMap(), VectorCoverageMap()


def _visit_both(sparse, vector, blocks):
    for block in blocks:
        sparse.visit(block)
        vector.visit(block)


def _random_blocks(rng, length):
    return [rng.randrange(1 << 20) for _ in range(length)]


class TestMapParity:
    """Replay identical visit sequences into both implementations."""

    @pytest.mark.parametrize("length", JOURNAL_LENGTHS)
    def test_observables_match_at_length(self, length):
        rng = random.Random(length)
        sparse, vector = _pair()
        _visit_both(sparse, vector, _random_blocks(rng, length))
        assert vector.edge_count() == sparse.edge_count()
        assert list(vector.iter_hits()) == list(sparse.iter_hits())
        assert vector.path_hash() == sparse.path_hash()
        assert bytes(vector.counts) == bytes(sparse.counts)
        assert sorted(vector.journal) == sorted(sparse.journal)

    def test_random_visit_sequences_match(self):
        rng = random.Random(1234)
        for trial in range(30):
            sparse, vector = _pair()
            _visit_both(sparse, vector,
                        _random_blocks(rng, rng.randrange(0, 400)))
            assert vector.path_hash() == sparse.path_hash(), trial
            assert list(vector.iter_hits()) == list(sparse.iter_hits()), trial

    @pytest.mark.parametrize("length", JOURNAL_LENGTHS)
    def test_fast_reset_indistinguishable_from_reset(self, length):
        rng = random.Random(97 + length)
        blocks = _random_blocks(rng, length)
        for impl in (CoverageMap, VectorCoverageMap):
            fast, full = impl(), impl()
            for block in blocks:
                fast.visit(block)
                full.visit(block)
            fast.fast_reset()
            full.reset()
            assert bytes(fast.counts) == bytes(MAP_SIZE)
            assert bytes(full.counts) == bytes(MAP_SIZE)
            assert fast.edge_count() == full.edge_count() == 0
            # both maps stay fully reusable and agree afterwards
            for block in (1, 2, 3, 1):
                fast.visit(block)
                full.visit(block)
            assert list(fast.iter_hits()) == list(full.iter_hits())
            assert fast.path_hash() == full.path_hash()

    def test_absorb_matches_sparse(self):
        rng = random.Random(55)
        for length in JOURNAL_LENGTHS:
            sparse_acc, vector_acc = _pair()
            sparse, vector = _pair()
            _visit_both(sparse, vector, _random_blocks(rng, length))
            sparse_acc.absorb(sparse)
            vector_acc.absorb(vector)
            # and absorbing across implementations also agrees
            cross = VectorCoverageMap()
            cross.absorb(sparse)
            assert bytes(vector_acc.counts) == bytes(sparse_acc.counts)
            assert bytes(cross.counts) == bytes(sparse_acc.counts)
            assert sorted(vector_acc.journal) == sorted(sparse_acc.journal)

    def test_path_hash_memo_survives_reset_generations(self):
        vector = VectorCoverageMap()
        hashes = []
        for generation in range(3):
            for block in range(200 + generation):
                vector.visit(block)
            first = vector.path_hash()
            assert vector.path_hash() == first  # memo hit
            hashes.append(first)
            vector.fast_reset()
        sparse = CoverageMap()
        for generation in range(3):
            for block in range(200 + generation):
                sparse.visit(block)
            assert sparse.path_hash() == hashes[generation]
            sparse.fast_reset()


class TestTouchOrderInvariance:
    """The ORDER edges were first touched in (the journal order) is an
    execution-schedule artifact; every coverage observable — path_hash,
    sorted hit stream, merge decisions, virgin bytes — must not depend
    on it.  Maps are built by touching the same edge set in permuted
    orders (counts identical, journal permuted), exactly the state two
    interleavings of one execution would produce."""

    @staticmethod
    def _touch(target_map, edge, count):
        target_map.counts[edge] = count
        target_map.journal.append(edge)

    @pytest.mark.parametrize("length", (6, 60, 300))
    def test_journal_permutations_agree(self, length):
        rng = random.Random(length * 7)
        edges = list({rng.randrange(MAP_SIZE) for _ in range(length)})
        hit_counts = {edge: rng.choice((1, 2, 3, 5, 9)) for edge in edges}
        for impl_map, impl_glob in ((CoverageMap, GlobalCoverage),
                                    (VectorCoverageMap,
                                     VectorGlobalCoverage)):
            baseline_map = impl_map()
            for edge in edges:
                self._touch(baseline_map, edge, hit_counts[edge])
            baseline_hash = baseline_map.path_hash()
            baseline_hits = sorted(baseline_map.iter_hits())
            for trial in range(5):
                shuffled = edges[:]
                rng.shuffle(shuffled)
                permuted = impl_map()
                for edge in shuffled:
                    self._touch(permuted, edge, hit_counts[edge])
                # path_hash sorts its journal: first-touch order must
                # not leak into the path identity or the hit stream
                assert sorted(permuted.iter_hits()) == baseline_hits
                assert permuted.path_hash() == baseline_hash
                fresh = impl_glob()
                assert fresh.would_be_new(permuted)
                assert fresh.merge(permuted)
                reference = impl_glob()
                reference.merge(baseline_map)
                assert bytes(fresh.virgin) == bytes(reference.virgin)
                assert not fresh.would_be_new(permuted)


class TestGlobalParity:
    """Merge/would_be_new streams agree between implementations."""

    def test_merge_decision_stream_matches(self):
        rng = random.Random(4321)
        sparse_glob = GlobalCoverage()
        vector_glob = VectorGlobalCoverage()
        for trial in range(40):
            sparse, vector = _pair()
            length = rng.choice(JOURNAL_LENGTHS)
            _visit_both(sparse, vector, _random_blocks(rng, length))
            assert vector_glob.would_be_new(vector) == \
                sparse_glob.would_be_new(sparse), trial
            assert vector_glob.merge(vector) == \
                sparse_glob.merge(sparse), trial
            assert vector_glob.edge_coverage() == \
                sparse_glob.edge_coverage(), trial
        assert bytes(vector_glob.virgin) == bytes(sparse_glob.virgin)

    def test_would_be_new_is_side_effect_free(self):
        rng = random.Random(8)
        for glob_cls, map_cls in ((GlobalCoverage, CoverageMap),
                                  (VectorGlobalCoverage,
                                   VectorCoverageMap)):
            glob = glob_cls()
            execution = map_cls()
            for block in _random_blocks(rng, 300):
                execution.visit(block)
            before = bytes(glob.virgin)
            assert glob.would_be_new(execution)
            assert bytes(glob.virgin) == before
            glob.merge(execution)
            after = bytes(glob.virgin)
            assert not glob.would_be_new(execution)
            assert bytes(glob.virgin) == after

    def test_vector_global_accepts_sparse_maps(self):
        """Mixed-impl merge (resume replay feeds plain maps)."""
        rng = random.Random(13)
        vector_glob = VectorGlobalCoverage()
        sparse_glob = GlobalCoverage()
        for length in JOURNAL_LENGTHS:
            sparse, vector = _pair()
            _visit_both(sparse, vector, _random_blocks(rng, length))
            assert vector_glob.merge(sparse) == sparse_glob.merge(vector)
        assert bytes(vector_glob.virgin) == bytes(sparse_glob.virgin)


class TestFactories:
    def test_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_COVERAGE_IMPL", raising=False)
        assert resolve_coverage_impl("sparse") == "sparse"
        assert resolve_coverage_impl("vector") == "vector"
        assert resolve_coverage_impl("auto") == "vector"  # numpy present
        monkeypatch.setenv("REPRO_COVERAGE_IMPL", "sparse")
        assert resolve_coverage_impl("auto") == "sparse"

    def test_factories_return_requested_types(self):
        assert type(make_coverage_map("sparse")) is CoverageMap
        assert type(make_coverage_map("vector")) is VectorCoverageMap
        assert type(make_global_coverage("sparse")) is GlobalCoverage
        assert type(make_global_coverage("vector")) is VectorGlobalCoverage

    def test_unknown_impl_is_loud(self):
        with pytest.raises(ValueError):
            resolve_coverage_impl("dense")


def _short_config(**overrides):
    return CampaignConfig(budget_hours=24.0, max_executions=140,
                          record_every=10, **overrides)


def _result_signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        tuple(sorted(result.path_hashes)),
    )


class TestCampaignParity:
    """Whole campaigns agree between the sparse and vector pipelines
    on every protocol target (the ISSUE's six-protocol parity pin)."""

    @pytest.mark.parametrize("target_name", TARGET_NAMES)
    def test_peach_star_campaign_identical(self, target_name):
        spec = get_target(target_name)
        sparse = run_campaign(
            "peach-star", spec, seed=11,
            config=_short_config(coverage_impl="sparse"))
        vector = run_campaign(
            "peach-star", spec, seed=11,
            config=_short_config(coverage_impl="vector"))
        assert _result_signature(vector) == _result_signature(sparse)

    def test_engine_wiring_uses_requested_impl(self):
        spec = get_target("libmodbus")
        engine = make_engine("peach-star", spec, 1,
                             _short_config(coverage_impl="vector"))
        assert type(engine.target.collector.map) is VectorCoverageMap
        assert type(engine.seed_pool.coverage) is VectorGlobalCoverage
