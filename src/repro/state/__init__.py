"""Stateful session fuzzing: state models, traces and the session engine.

The paper's loop (and :class:`~repro.core.engine.PeachStar`) is strictly
single-packet: ``Target.run`` resets the server before every execution,
so every stateful branch — IEC 104 STARTDT/STOPDT gating, DNP3
select-before-operate, Modbus listen-only mode — is unreachable by
construction.  This subsystem makes multi-packet *traces* the unit of
fuzzing, AFLNet-style:

* :class:`StateModel` — Pit-style protocol state machines (states with
  send/expect transitions), declared per protocol next to the data
  models;
* :class:`TraceStep` / :func:`encode_trace` / :func:`decode_trace` — the
  trace representation: ordered packets with per-step model names and
  response-derived bindings, serialized deterministically so traces are
  ordinary (multi-part) corpus entries;
* :class:`TraceBinder` — applies bindings at execution time (echo the
  server's live sequence numbers into the next packet through the
  existing Relation/Fixup pipeline) so replayed prefixes stay honest;
* :class:`SessionFuzzer` — the sequence-aware engine: the corpus stores
  traces, mutation cracks one step (or splices/extends/truncates the
  sequence) while replaying the honest prefix;
* :func:`minimize_trace` — session-level triage: drop whole steps first,
  then shrink the crashing step with the existing field-aware/ddmin
  machinery.
"""

from repro.state.binder import TraceBinder, apply_pins
from repro.state.engine import SessionFuzzer
from repro.state.learner import (
    LearnedStateModel, ResponseClassifier, binding_hints,
)
from repro.state.model import State, StateModel, StateModelError, Transition
from repro.state.trace import (
    TRACE_MODEL_PREFIX, TraceStep, decode_trace, encode_trace,
    is_trace_blob, trace_model_name,
)


def __getattr__(name):
    # Lazy: repro.state.triage imports repro.protocols, and the protocol
    # packages import repro.state.model for their state models — eagerly
    # importing triage here would close that cycle during protocols init.
    if name in ("TraceChecker", "minimize_trace"):
        from repro.state import triage
        return getattr(triage, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LearnedStateModel", "ResponseClassifier", "SessionFuzzer", "State",
    "StateModel", "StateModelError", "TRACE_MODEL_PREFIX", "TraceBinder",
    "TraceChecker", "TraceStep", "Transition", "apply_pins",
    "binding_hints", "decode_trace", "encode_trace", "is_trace_blob",
    "minimize_trace", "trace_model_name",
]
