"""opendnp3-analog target: DNP3 outstation, codec and pit."""

from repro.protocols.dnp3.codec import (
    Dnp3CrcTransformer, FrameError, add_crcs, build_link_header,
    build_request, object_header, parse_response, strip_crcs,
)
from repro.protocols.dnp3.model import make_pit, make_state_model
from repro.protocols.dnp3.server import Dnp3Server

__all__ = [
    "Dnp3CrcTransformer", "Dnp3Server", "FrameError", "add_crcs",
    "build_link_header", "build_request", "make_pit", "make_state_model",
    "object_header",
    "parse_response", "strip_crcs",
]
