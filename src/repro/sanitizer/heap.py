"""SimHeap: a bounds- and lifetime-checked simulated C heap.

The six protocol targets are written "C style": they ``malloc`` buffers
for incoming frames and decoded structures and access them through the
checked accessors here.  Malformed packets that would corrupt memory in
the original C implementations therefore surface as typed
:class:`~repro.sanitizer.errors.MemoryFault` exceptions, which the target
harness converts into ASan-style crash reports.

Address layout: each allocation receives a virtual base address inside a
sparse 32-bit space with guard gaps between allocations.  Reads slightly
past an allocation hit the redzone (heap-buffer-overflow), while computed
wild addresses (e.g. a table index taken from an unchecked packet field)
fall outside every mapping and raise SEGV — matching how ASan actually
classifies the two failure shapes the paper's Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sanitizer.errors import (
    DoubleFree, HeapBufferOverflow, HeapUseAfterFree, NullDeref, SimSegv,
)

_BASE_ADDRESS = 0x1000_0000
_GUARD = 0x100  # redzone gap between allocations


@dataclass
class Pointer:
    """A typed pointer into the simulated heap.

    Supports C-style pointer arithmetic via :meth:`offset`; the result
    stays tied to the same allocation, so out-of-bounds accesses are
    caught relative to the original object, like ASan's shadow memory.
    """

    address: int
    alloc_id: int
    base_offset: int = 0

    def offset(self, delta: int) -> "Pointer":
        return Pointer(self.address + delta, self.alloc_id,
                       self.base_offset + delta)


class _Allocation:
    __slots__ = ("alloc_id", "base", "size", "data", "freed", "tag")

    def __init__(self, alloc_id: int, base: int, size: int, tag: str):
        self.alloc_id = alloc_id
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.freed = False
        self.tag = tag


class SimHeap:
    """The simulated heap; one per target execution."""

    def __init__(self):
        self._allocations: Dict[int, _Allocation] = {}
        self._next_id = 1
        self._next_base = _BASE_ADDRESS
        self.bytes_allocated = 0

    # -- allocation ----------------------------------------------------------

    def malloc(self, size: int, tag: str = "anon") -> Pointer:
        """Allocate *size* bytes; returns a :class:`Pointer` to offset 0."""
        if size < 0:
            raise SimSegv(tag, f"malloc with negative size {size}")
        alloc = _Allocation(self._next_id, self._next_base, size, tag)
        self._allocations[alloc.alloc_id] = alloc
        self._next_id += 1
        self._next_base += size + _GUARD
        self.bytes_allocated += size
        return Pointer(alloc.base, alloc.alloc_id)

    def malloc_from(self, data: bytes, tag: str = "anon") -> Pointer:
        """Allocate and initialise from *data* (the C idiom of copying a
        received frame into a fresh buffer)."""
        ptr = self.malloc(len(data), tag)
        alloc = self._allocations[ptr.alloc_id]
        alloc.data[:] = data
        return ptr

    def free(self, ptr: Pointer, site: str = "free") -> None:
        alloc = self._allocations.get(ptr.alloc_id)
        if alloc is None:
            raise SimSegv(site, "free of unknown pointer")
        if alloc.freed:
            raise DoubleFree(site, f"double free of {alloc.tag}")
        alloc.freed = True

    def size_of(self, ptr: Pointer) -> int:
        alloc = self._allocations.get(ptr.alloc_id)
        return alloc.size if alloc is not None else 0

    # -- checked access ------------------------------------------------------

    def _resolve(self, ptr: Optional[Pointer], offset: int, length: int,
                 site: str, write: bool) -> _Allocation:
        if ptr is None:
            raise NullDeref(site, "NULL pointer dereference")
        alloc = self._allocations.get(ptr.alloc_id)
        if alloc is None:
            raise SimSegv(site, f"wild pointer {ptr.address:#x}")
        if alloc.freed:
            raise HeapUseAfterFree(
                site, f"{'write' if write else 'read'} of freed "
                      f"{alloc.tag} ({alloc.size} bytes)")
        start = ptr.base_offset + offset
        end = start + length
        if start < 0 or end > alloc.size:
            # Small overshoot lands in the redzone; large overshoot flies
            # past every mapping — the SEGV shape of Table I.
            if start >= alloc.size + _GUARD or start < -_GUARD:
                raise SimSegv(
                    site, f"access at {alloc.base + start:#x}, "
                          f"{start - alloc.size} bytes past {alloc.tag}")
            raise HeapBufferOverflow(
                site, f"{'write' if write else 'read'} of {length} bytes at "
                      f"offset {start} of {alloc.size}-byte {alloc.tag}")
        return alloc

    def read(self, ptr: Pointer, offset: int, length: int,
             site: str = "read") -> bytes:
        """Bounds/lifetime-checked read of *length* bytes."""
        alloc = self._resolve(ptr, offset, length, site, write=False)
        start = ptr.base_offset + offset
        return bytes(alloc.data[start:start + length])

    def read_u8(self, ptr: Pointer, offset: int, site: str = "read") -> int:
        return self.read(ptr, offset, 1, site)[0]

    def read_u16(self, ptr: Pointer, offset: int, site: str = "read",
                 endian: str = "big") -> int:
        return int.from_bytes(self.read(ptr, offset, 2, site), endian)

    def read_u32(self, ptr: Pointer, offset: int, site: str = "read",
                 endian: str = "big") -> int:
        return int.from_bytes(self.read(ptr, offset, 4, site), endian)

    def write(self, ptr: Pointer, offset: int, data: bytes,
              site: str = "write") -> None:
        """Bounds/lifetime-checked write."""
        alloc = self._resolve(ptr, offset, len(data), site, write=True)
        start = ptr.base_offset + offset
        alloc.data[start:start + len(data)] = data

    def write_u8(self, ptr: Pointer, offset: int, value: int,
                 site: str = "write") -> None:
        self.write(ptr, offset, bytes((value & 0xFF,)), site)

    def write_u16(self, ptr: Pointer, offset: int, value: int,
                  site: str = "write", endian: str = "big") -> None:
        self.write(ptr, offset, (value & 0xFFFF).to_bytes(2, endian), site)

    # -- raw address access (for computed/wild pointers) -----------------------

    def deref_read(self, address: int, length: int, site: str) -> bytes:
        """Read through a *computed* address, e.g. ``base + index * size``
        where ``index`` came straight from a packet field.

        Addresses inside a live allocation succeed; anything else is the
        "bad address operation" of the paper's Listing 2 — SEGV.
        """
        if address == 0:
            raise NullDeref(site, "NULL pointer dereference")
        for alloc in self._allocations.values():
            if alloc.base <= address < alloc.base + alloc.size:
                if alloc.freed:
                    raise HeapUseAfterFree(site, f"read of freed {alloc.tag}")
                start = address - alloc.base
                if start + length > alloc.size:
                    raise HeapBufferOverflow(
                        site, f"read of {length} bytes at end of {alloc.tag}")
                return bytes(alloc.data[start:start + length])
        raise SimSegv(site, f"SEGV on unknown address {address:#x}")

    def live_allocations(self) -> int:
        """Count of not-yet-freed allocations (leak checking in tests)."""
        return sum(1 for alloc in self._allocations.values() if not alloc.freed)
