"""The triage pipeline: bucket → minimize → export, per unique crash.

Feeds from either a finished :class:`~repro.core.campaign.CampaignResult`
or a persisted :class:`~repro.store.workspace.CampaignWorkspace`
(``peachstar triage --workspace``), and produces a
:class:`TriageReport` the analysis layer renders as a summary table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sanitizer.report import CrashReport
from repro.triage.bucket import CrashBucket, bucket_crashes
from repro.triage.minimize import (
    CrashChecker, MinimizationResult, minimize_crash,
)
from repro.triage.reproducer import export_reproducer


@dataclass
class TriagedCrash:
    """One unique crash after the full triage pass."""

    bucket: CrashBucket
    minimization: Optional[MinimizationResult]
    packet_path: Optional[str] = None
    script_path: Optional[str] = None

    @property
    def report(self) -> CrashReport:
        return self.bucket.representative

    @property
    def final_packet(self) -> bytes:
        if self.minimization is not None and self.minimization.confirmed:
            return self.minimization.minimized
        return self.report.packet

    @property
    def final_report(self) -> CrashReport:
        """The report rendered to the analyst (minimized when possible)."""
        if self.minimization is not None and \
                self.minimization.report is not None:
            return self.minimization.report
        return self.report


@dataclass
class TriageReport:
    """Everything ``peachstar triage`` produced for one target."""

    target_name: str
    crashes: List[TriagedCrash]
    executions_spent: int
    out_dir: Optional[str] = None

    @property
    def minimized_count(self) -> int:
        return sum(1 for crash in self.crashes
                   if crash.minimization is not None
                   and crash.minimization.reduced)


def triage_reports(target_spec, reports: Iterable[CrashReport], *,
                   minimize: bool = True,
                   max_executions_per_crash: int = 3000,
                   out_dir: Optional[str] = None,
                   coverage_backend: str = "auto",
                   hang_budget: int = 120_000) -> TriageReport:
    """Run the full triage pass over a set of crash reports.

    Buckets by the refined ``(kind, site, context)`` key, minimizes each
    bucket's representative input under the sanitizer, and (when
    *out_dir* is given) exports a standalone reproducer script plus raw
    packet per bucket.  *coverage_backend*/*hang_budget* mirror the
    campaign the crashes came from.
    """
    checker = CrashChecker(target_spec, hang_budget=hang_budget,
                           backend=coverage_backend)
    triaged: List[TriagedCrash] = []
    for bucket in bucket_crashes(reports):
        minimization = None
        if minimize:
            minimization = minimize_crash(
                target_spec, bucket.representative,
                max_executions=max_executions_per_crash, checker=checker)
        crash = TriagedCrash(bucket=bucket, minimization=minimization)
        if out_dir is not None:
            crash.packet_path, crash.script_path = export_reproducer(
                out_dir, bucket.slug(), target_spec.name,
                crash.final_report, crash.final_packet)
        triaged.append(crash)
    return TriageReport(
        target_name=target_spec.name,
        crashes=triaged,
        executions_spent=checker.executions,
        out_dir=out_dir,
    )
