"""Peach*: coverage-guided packet crack and generation (the paper's core).

Components map 1:1 to the paper's Fig. 3:

* :class:`SeedPool` — valuable-seed identification via edge coverage
* :class:`FileCracker` + :class:`PuzzleCorpus` — packet crack (Alg. 2)
* :class:`SemanticGenerator` — semantic-aware generation (Alg. 3)
* :mod:`repro.core.fixup_engine` — file fixup (§IV-D)
* :class:`GenerationFuzzer` / :class:`PeachStar` — the two engines
* :mod:`repro.core.campaign` — the §V-B experimental procedure
"""

from repro.core.campaign import (
    CampaignConfig, CampaignResult, CampaignTask, average_paths_at,
    average_series, config_from_dict, config_to_dict,
    default_campaign_policy, default_worker_count, make_engine,
    resume_campaign, run_campaign, run_campaign_batch, run_repetitions,
    run_repetitions_parallel,
)
from repro.core.corpus import PuzzleCorpus
from repro.core.cracker import FileCracker
from repro.core.engine import (
    EngineStats, GenerationFuzzer, IterationOutcome, PeachStar,
)
from repro.core.fixup_engine import integrity_ok, repair
from repro.core.fleet import FleetResult, resume_fleet, run_fleet
from repro.core.seedpool import SeedPool, ValuableSeed
from repro.core.semantic import SemanticGenerator
from repro.core.stats import (
    ComparisonSummary, bugs_found, compare, merge_crash_reports,
    merge_divergence_reports, path_increase_pct, speedup_to_reference,
    time_to_bugs,
)

__all__ = [
    "CampaignConfig", "CampaignResult", "CampaignTask", "ComparisonSummary",
    "EngineStats", "FileCracker", "FleetResult", "GenerationFuzzer",
    "IterationOutcome", "PeachStar", "PuzzleCorpus", "SeedPool",
    "SemanticGenerator", "ValuableSeed", "average_paths_at",
    "average_series", "bugs_found", "compare", "config_from_dict",
    "config_to_dict", "default_campaign_policy", "default_worker_count",
    "integrity_ok", "make_engine", "merge_crash_reports",
    "merge_divergence_reports",
    "path_increase_pct", "repair", "resume_campaign", "resume_fleet",
    "run_campaign", "run_campaign_batch", "run_fleet", "run_repetitions",
    "run_repetitions_parallel", "speedup_to_reference", "time_to_bugs",
]
