"""Unit tests for semantic-aware generation (paper Alg. 3)."""

import random

from repro.core import PuzzleCorpus, SemanticGenerator
from repro.model import Blob, Block, DataModel, Number, size_of


def _model():
    return DataModel("m", Block("m.root", [
        Number("opcode", 1, default=7, token=True, semantic="opcode"),
        Number("address", 2, default=0, semantic="address"),
        Number("quantity", 2, default=1, semantic="quantity"),
        size_of(Number("size", 1), "payload"),
        Blob("payload", default=b"\x00", semantic="payload"),
    ]))


def _corpus_with(rng=None, **donors):
    corpus = PuzzleCorpus(rng=rng or random.Random(0))
    model = _model()
    for name, values in donors.items():
        field = model.root.child(name)
        for value in values:
            corpus.add(field.signature(), value)
    return corpus


class TestConstruct:
    def test_empty_corpus_returns_empty_batch(self):
        generator = SemanticGenerator(PuzzleCorpus(), random.Random(1))
        assert generator.construct(_model()) == []

    def test_donor_values_spliced_into_packets(self):
        corpus = _corpus_with(address=[b"\x01\x10"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0)
        batch = generator.construct(_model())
        assert batch
        for tree, _wire in batch:
            assert tree.find("address").value == 0x0110

    def test_cartesian_product_of_donors(self):
        """Paper Alg. 3: p donors for a and q for b yield p*q seeds."""
        corpus = _corpus_with(address=[b"\x00\x01", b"\x00\x02"],
                              quantity=[b"\x00\x03", b"\x00\x04",
                                        b"\x00\x05"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0, batch_limit=100)
        batch = generator.construct(_model())
        combos = {(t.find("address").value, t.find("quantity").value)
                  for t, _w in batch}
        assert len(batch) == 6
        assert len(combos) == 6

    def test_batch_limit_caps_product(self):
        corpus = _corpus_with(
            address=[i.to_bytes(2, "big") for i in range(6)],
            quantity=[i.to_bytes(2, "big") for i in range(6)])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0, batch_limit=10,
                                      max_donors_per_position=6)
        batch = generator.construct(_model())
        assert len(batch) == 10

    def test_relations_repaired_after_splice(self):
        """File Fixup: the size field is recomputed, never donor-filled."""
        corpus = _corpus_with(payload=[b"donor-payload!"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0)
        model = _model()
        for tree, wire in generator.construct(model):
            parsed = model.parse(wire)
            assert parsed.find("size").value == \
                len(parsed.find("payload").raw)

    def test_tokens_never_pinned(self):
        corpus = _corpus_with(address=[b"\x00\x01"])
        # poison the corpus with an opcode donor; it must be ignored
        model = _model()
        opcode = model.root.child("opcode")
        corpus.add(opcode.signature(), b"\x63")
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0)
        for tree, _wire in generator.construct(model):
            assert tree.find("opcode").value == 7

    def test_generated_packets_parse_under_model(self):
        corpus = _corpus_with(address=[b"\x12\x34"],
                              quantity=[b"\x00\x09"],
                              payload=[b"\x01\x02\x03"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0, batch_limit=32)
        model = _model()
        batch = generator.construct(model)
        assert batch
        for _tree, wire in batch:
            assert model.matches(wire)

    def test_pin_prob_zero_disables_splicing(self):
        corpus = _corpus_with(address=[b"\x00\x01"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=0.0)
        assert generator.construct(_model()) == []

    def test_seeds_generated_counter(self):
        corpus = _corpus_with(address=[b"\x00\x01"])
        generator = SemanticGenerator(corpus, random.Random(1),
                                      pin_prob=1.0)
        batch = generator.construct(_model())
        assert generator.seeds_generated == len(batch)

    def test_deterministic_under_seed(self):
        def run():
            corpus = _corpus_with(rng=random.Random(9),
                                  address=[b"\x00\x01", b"\x00\x02"])
            generator = SemanticGenerator(corpus, random.Random(4),
                                          pin_prob=1.0)
            return [wire for _t, wire in generator.construct(_model())]

        assert run() == run()
