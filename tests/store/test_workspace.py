"""Campaign workspace persistence + kill-and-resume determinism.

The acceptance gate of the persistence subsystem: a campaign stopped
mid-budget and resumed from its workspace must finish **bit-identical**
to the same campaign run uninterrupted — same series, final paths,
coverage path-hash set, unique crashes, stats and RNG trajectory.
"""

import dataclasses
import json
import os

import pytest

from repro.core import (
    CampaignConfig, config_from_dict, config_to_dict, resume_campaign,
    run_campaign,
)
from repro.protocols import get_target
from repro.store import CampaignWorkspace, WorkspaceError


def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=400, record_every=10,
                checkpoint_every=50)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        result.path_hashes,
    )


class TestWorkspaceLifecycle:
    def test_initialize_creates_layout(self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        config = _config(workspace=ws_dir, max_executions=60)
        run_campaign("peach-star", get_target("libmodbus"), seed=3,
                     config=config)
        for name in ("config.json", "state.json", "series.jsonl",
                     "result.json", "corpus"):
            assert os.path.exists(os.path.join(ws_dir, name)), name
        manifest = CampaignWorkspace(ws_dir).load_manifest()
        assert manifest["engine"] == "peach-star"
        assert manifest["target"] == "libmodbus"
        assert manifest["seed"] == 3

    def test_initialize_refuses_existing_state(self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        config = _config(workspace=ws_dir, max_executions=30)
        run_campaign("peach", get_target("iec104"), seed=1, config=config)
        with pytest.raises(WorkspaceError):
            run_campaign("peach", get_target("iec104"), seed=1,
                         config=config)

    def test_resume_needs_a_workspace(self, tmp_path):
        with pytest.raises(WorkspaceError):
            resume_campaign(str(tmp_path / "nope"))

    def test_config_dict_roundtrip(self):
        config = _config(workspace="/some/dir", semantic_ratio=0.25)
        clone = config_from_dict(config_to_dict(config))
        assert clone == config

    def test_corpus_files_carry_coverage_metadata(self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        run_campaign("peach-star", get_target("libmodbus"), seed=3,
                     config=_config(workspace=ws_dir, max_executions=120))
        workspace = CampaignWorkspace(ws_dir)
        hashes = workspace.corpus_path_hashes()
        assert hashes and all(isinstance(h, int) and h > 0 for h in hashes)
        metas = workspace._load_corpus_entries()
        assert all(meta["edges_touched"] > 0 for meta in metas)
        # one coverage-journal line per valuable seed
        with open(os.path.join(ws_dir, "coverage.jsonl")) as handle:
            lines = [json.loads(raw) for raw in handle if raw.strip()]
        assert [line["exec"] for line in lines] == \
            [meta["execution_index"] for meta in metas]


class TestKillAndResumeDeterminism:
    """The subsystem's headline guarantee, on a crashing and a clean
    target and for both engines."""

    @pytest.mark.parametrize("engine_name,target_name,stop_after", [
        ("peach-star", "lib60870", 137),   # crashes + puzzle corpus state
        ("peach-star", "libmodbus", 77),   # crashes, different protocol
        ("peach", "iec104", 133),          # baseline engine, no corpus
    ])
    def test_killed_campaign_resumes_bit_identical(
            self, tmp_path, engine_name, target_name, stop_after):
        spec = get_target(target_name)
        full_dir = str(tmp_path / "full")
        killed_dir = str(tmp_path / "killed")

        full = run_campaign(engine_name, spec, seed=7,
                            config=_config(workspace=full_dir))
        # stop_after is deliberately NOT a checkpoint multiple: resume
        # must rewind to the last checkpoint and re-execute the window
        killed = run_campaign(engine_name, spec, seed=7,
                              config=_config(workspace=killed_dir),
                              stop_after_executions=stop_after)
        assert killed is None  # simulated SIGKILL: no result, no finalize
        assert CampaignWorkspace(killed_dir).load_result() is None

        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)
        # the workspaces converge too: same persisted path-hash set and
        # crash ledger
        assert CampaignWorkspace(killed_dir).corpus_path_hashes() == \
            CampaignWorkspace(full_dir).corpus_path_hashes()
        assert CampaignWorkspace(killed_dir).crash_times() == \
            CampaignWorkspace(full_dir).crash_times()

    def test_resume_matches_workspace_free_run(self, tmp_path):
        spec = get_target("lib60870")
        plain = run_campaign("peach-star", spec, seed=7, config=_config())
        ws_dir = str(tmp_path / "ws")
        run_campaign("peach-star", spec, seed=7,
                     config=_config(workspace=ws_dir),
                     stop_after_executions=190)
        resumed = resume_campaign(ws_dir)
        assert _signature(resumed) == _signature(plain)

    def test_resume_finished_campaign_reproduces_result(self, tmp_path):
        spec = get_target("libmodbus")
        ws_dir = str(tmp_path / "ws")
        first = run_campaign("peach-star", spec, seed=11,
                             config=_config(workspace=ws_dir,
                                            max_executions=150))
        again = resume_campaign(ws_dir)
        assert _signature(again) == _signature(first)

    def test_double_kill_still_converges(self, tmp_path):
        """Kill, resume, kill again, resume again."""
        spec = get_target("lib60870")
        full = run_campaign("peach-star", spec, seed=9, config=_config())
        ws_dir = str(tmp_path / "ws")
        assert run_campaign("peach-star", spec, seed=9,
                            config=_config(workspace=ws_dir),
                            stop_after_executions=90) is None
        assert resume_campaign(ws_dir, stop_after_executions=260) is None
        resumed = resume_campaign(ws_dir)
        assert _signature(resumed) == _signature(full)


class TestAtomicWriteDurability:
    """The fsync contract of _atomic_write (crash-durability bugfix)."""

    def test_crash_before_replace_preserves_old_contents(
            self, tmp_path, monkeypatch):
        """Fault injection: die between the tmp write and os.replace.

        The file under the final name must still hold its previous
        contents — the half-written update only ever exists under the
        .tmp name.
        """
        import repro.store.workspace as ws_mod

        path = str(tmp_path / "state.json")
        ws_mod._atomic_write(path, "old\n")

        def crash_replace(src, dst):
            raise RuntimeError("simulated crash before rename")

        monkeypatch.setattr(ws_mod.os, "replace", crash_replace)
        with pytest.raises(RuntimeError):
            ws_mod._atomic_write(path, "new\n")
        monkeypatch.undo()
        with open(path) as handle:
            assert handle.read() == "old\n"
        # the interrupted attempt left only the tmp file; retrying
        # clobbers it and completes normally
        assert os.path.exists(path + ".tmp")
        ws_mod._atomic_write(path, "new\n")
        with open(path) as handle:
            assert handle.read() == "new\n"

    def test_fsync_file_then_replace_then_fsync_dir(
            self, tmp_path, monkeypatch):
        """The durability ordering: flush+fsync the tmp file BEFORE the
        rename, fsync the directory after — otherwise a power loss can
        leave an empty file despite the atomic replace."""
        import repro.store.workspace as ws_mod

        events = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            events.append("fsync")
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            real_replace(src, dst)

        monkeypatch.setattr(ws_mod.os, "fsync", spy_fsync)
        monkeypatch.setattr(ws_mod.os, "replace", spy_replace)
        ws_mod._atomic_write(str(tmp_path / "state.json"), "payload\n")
        assert events == ["fsync", "replace", "fsync"]
