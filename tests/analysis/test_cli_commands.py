"""CLI tests for the heavier sub-commands (tiny budgets)."""

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["targets"])
        assert args.command == "targets"
        for command in (["fuzz", "iec104"], ["compare", "iec104"],
                        ["crack", "iec104", "00"],
                        ["table1"]):
            assert build_parser().parse_args(command).command == command[0]

    def test_engine_choices_enforced(self):
        import pytest
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "iec104", "--engine", "afl"])


class TestCompareCommand:
    def test_compare_prints_panel(self, capsys):
        assert main(["compare", "iec104", "--repetitions", "1",
                     "--hours", "1", "--max-execs", "80"]) == 0
        out = capsys.readouterr().out
        assert "paths covered on iec104" in out
        assert "final paths" in out


class TestFuzzVerbose:
    def test_verbose_prints_reports_when_crashing(self, capsys):
        assert main(["fuzz", "libiccp", "--engine", "peach-star",
                     "--hours", "24", "--max-execs", "500",
                     "--verbose", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "unique crashes:" in out
