"""Unit tests for the XML pit loader."""

import pytest

from repro.model import ParseError, load_pit_string
from repro.model.pit import PitError

DEMO_PIT = """
<Pit name="demo">
  <DataModel name="demo.packet">
    <Number name="id" size="8" default="1" token="true"/>
    <Number name="size" size="16" endian="big">
      <Relation type="size" of="data"/>
    </Number>
    <Block name="data">
      <Number name="code" size="8" values="1,2,3" semantic="opcode"/>
      <Blob name="payload" maxLength="64" default="aabb"/>
    </Block>
    <Number name="crc" size="32">
      <Fixup algorithm="crc32" over="id,size,data"/>
    </Number>
  </DataModel>
  <DataModel name="demo.other" weight="0.5">
    <Number name="id" size="8" default="2" token="true"/>
    <String name="name" default="hello"/>
  </DataModel>
</Pit>
"""


class TestLoadPit:
    def test_loads_models(self):
        pit = load_pit_string(DEMO_PIT)
        assert pit.name == "demo"
        assert len(pit) == 2
        assert pit.model("demo.other").weight == 0.5

    def test_built_packet_roundtrips(self):
        pit = load_pit_string(DEMO_PIT)
        model = pit.model("demo.packet")
        raw = model.build_bytes()
        tree = model.parse(raw, verify_fixups=True)
        assert tree.find("id").value == 1
        assert tree.find("size").value == len(tree.find("data").raw)

    def test_values_and_semantic_attributes(self):
        pit = load_pit_string(DEMO_PIT)
        code = pit.model("demo.packet").root.child("data").child("code")
        assert code.values == (1, 2, 3)
        assert code.signature().semantic == "opcode"

    def test_hex_blob_default(self):
        pit = load_pit_string(DEMO_PIT)
        payload = pit.model("demo.packet").root.child("data").child("payload")
        assert payload.default == b"\xaa\xbb"

    def test_token_parse_enforced(self):
        pit = load_pit_string(DEMO_PIT)
        model = pit.model("demo.packet")
        raw = bytearray(model.build_bytes())
        raw[0] = 9
        with pytest.raises(ParseError):
            model.parse(bytes(raw))


class TestChoiceRepeatElements:
    def test_choice_and_repeat(self):
        pit = load_pit_string("""
        <Pit name="cr">
          <DataModel name="cr.m">
            <Number name="count" size="8">
              <Relation type="count" of="items"/>
            </Number>
            <Repeat name="items" minCount="0" maxCount="5">
              <Number name="item" size="16" default="7"/>
            </Repeat>
            <Choice name="tail">
              <Number name="a" size="8" default="1" token="true"/>
              <Number name="b" size="8" default="2" token="true"/>
            </Choice>
          </DataModel>
        </Pit>
        """)
        model = pit.model("cr.m")
        raw = model.build_bytes()
        tree = model.parse(raw)
        assert tree.find("count").value == len(tree.find("items").children)


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(PitError):
            load_pit_string("<Pit><unclosed>")

    def test_wrong_root_element(self):
        with pytest.raises(PitError):
            load_pit_string("<NotAPit/>")

    def test_unknown_element(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m"><Widget name="w"/>
            </DataModel></Pit>""")

    def test_missing_required_attribute(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m"><Number size="8"/>
            </DataModel></Pit>""")

    def test_non_octet_number_size(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m"><Number name="n" size="12"/>
            </DataModel></Pit>""")

    def test_unknown_relation_type(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m">
            <Number name="n" size="8"><Relation type="offset" of="p"/></Number>
            <Blob name="p"/></DataModel></Pit>""")

    def test_unknown_fixup_algorithm(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m">
            <Number name="n" size="8"><Fixup algorithm="md5" over="p"/></Number>
            <Blob name="p"/></DataModel></Pit>""")

    def test_empty_data_model(self):
        with pytest.raises(PitError):
            load_pit_string('<Pit name="x"><DataModel name="m"/></Pit>')

    def test_repeat_needs_single_child(self):
        with pytest.raises(PitError):
            load_pit_string("""
            <Pit name="x"><DataModel name="m">
            <Repeat name="r"><Number name="a" size="8"/>
            <Number name="b" size="8"/></Repeat>
            </DataModel></Pit>""")


class TestFileLoading:
    def test_load_from_file(self, tmp_path):
        from repro.model import load_pit_file
        path = tmp_path / "demo.xml"
        path.write_text(DEMO_PIT)
        pit = load_pit_file(str(path))
        assert len(pit) == 2
