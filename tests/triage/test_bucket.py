"""Crash bucketing, severity classification, call-site contexts."""

from repro.sanitizer.report import CrashReport, context_hash
from repro.triage import SEVERITY_ORDER, bucket_crashes, classify_severity


def _report(kind="SEGV", site="a.c:f", detail="", call_sites=(),
            execution_index=0):
    return CrashReport(kind=kind, site=site, detail=detail, packet=b"\x00",
                       call_sites=tuple(call_sites),
                       execution_index=execution_index)


class TestSeverity:
    def test_kind_ranking(self):
        assert classify_severity(_report(kind="heap-use-after-free")) == \
            "critical"
        assert classify_severity(_report(kind="double-free")) == "critical"
        assert classify_severity(
            _report(kind="heap-buffer-overflow",
                    detail="read of 4 bytes")) == "high"
        assert classify_severity(_report(kind="SEGV")) == "medium"
        assert classify_severity(_report(kind="whatever")) == "low"

    def test_oob_write_escalates_to_critical(self):
        report = _report(kind="heap-buffer-overflow",
                         detail="write of 2 bytes at offset 9")
        assert classify_severity(report) == "critical"

    def test_severity_order_is_exhaustive(self):
        for report in (_report(kind=k) for k in
                       ("heap-use-after-free", "heap-buffer-overflow",
                        "SEGV", "junk")):
            assert classify_severity(report) in SEVERITY_ORDER


class TestContext:
    def test_context_hash_is_order_sensitive(self):
        assert context_hash((1, 2, 3)) != context_hash((3, 2, 1))

    def test_report_without_context_hashes_to_zero(self):
        assert _report().context_hash == 0

    def test_bucket_key_refines_dedup_key(self):
        a = _report(call_sites=(10, 11, 12))
        b = _report(call_sites=(99, 98, 97))
        assert a.dedup_key == b.dedup_key
        assert a.bucket_key != b.bucket_key


class TestBucketing:
    def test_same_context_groups_together(self):
        reports = [_report(call_sites=(1, 2), execution_index=i)
                   for i in range(3)]
        buckets = bucket_crashes(reports)
        assert len(buckets) == 1
        assert buckets[0].count == 3
        assert buckets[0].representative.execution_index == 0

    def test_distinct_contexts_split_same_site(self):
        reports = [_report(call_sites=(1, 2)), _report(call_sites=(3, 4))]
        buckets = bucket_crashes(reports)
        assert len(buckets) == 2
        assert {b.key[:2] for b in buckets} == {("SEGV", "a.c:f")}

    def test_most_severe_first(self):
        reports = [
            _report(kind="SEGV", site="x.c:r", execution_index=1),
            _report(kind="heap-use-after-free", site="y.c:u",
                    execution_index=9),
            _report(kind="heap-buffer-overflow", site="z.c:o",
                    detail="read", execution_index=5),
        ]
        kinds = [b.kind for b in bucket_crashes(reports)]
        assert kinds == ["heap-use-after-free", "heap-buffer-overflow",
                         "SEGV"]

    def test_slug_is_filesystem_safe_and_stable(self):
        bucket = bucket_crashes([_report(site="cs101_asdu.c:CS101_ASDU"
                                              "_getCOT",
                                         call_sites=(7, 8))])[0]
        slug = bucket.slug()
        assert slug == bucket.slug()
        assert "/" not in slug and ":" not in slug
        assert slug.endswith(f"{bucket.context_hash:08x}")
