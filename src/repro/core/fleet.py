"""Fleet orchestration: N shards of one campaign with corpus exchange.

The paper's campaigns are single-process, single-protocol runs; this
module scales one campaign out the way distributed AFL deployments do —
N independently-seeded *shards* of the same (engine, target, config)
fan out over a process pool, and every ``sync_every`` executions each
shard imports the sibling corpus entries whose sparse coverage metadata
reaches bucketed edges its own map has not seen (AFL's sync-dir
protocol, as pure file-level exchange).

Execution is round-based so the exchange is deterministic:

* **round r** drives every unfinished shard from execution
  ``(r-1)*sync_every`` to the boundary ``r*sync_every`` (or to the end
  of its budget), each shard checkpointing into its own
  :class:`~repro.store.workspace.CampaignWorkspace`;
* **sync phase r** (parent process, after the barrier) rebuilds each
  shard's virgin map from its coverage journal and stages every sibling
  seed that would add new bucketed edges into the shard's ``inbox/``;
* **round r+1** starts by absorbing the staged inbox — merge the
  bucketed map, adopt the seed (and crack it into the puzzle corpus
  when the engine uses feedback) — then fuzzes on.

Every shard is deterministic given the sync snapshots it observed, and
the sync snapshots are pure functions of the shard files at the
barrier, so a killed fleet resumed with :func:`resume_fleet` finishes
bit-identical to one that was never interrupted — the same guarantee
:func:`~repro.core.campaign.resume_campaign` gives a single campaign.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.campaign import (
    CampaignConfig, CampaignResult, _drive_campaign, config_to_dict,
    default_worker_count, rebuild_workspace_engine,
    validate_campaign_config,
)
from repro.core.seedpool import ValuableSeed
from repro.core.stats import merge_crash_reports, merge_divergence_reports
from repro.runtime.coverage import GlobalCoverage
from repro.sanitizer.report import CrashDatabase
from repro.store.fleet import FleetWorkspace
from repro.store.workspace import CampaignWorkspace, WorkspaceError


@dataclass
class FleetResult:
    """Outcome of one fleet run: per-shard results plus merged views."""

    engine_name: str
    target_name: str
    workspace: str
    shards: int
    sync_every: int
    #: sync phases completed (rounds run is one more when any shard
    #: fuzzed past the last boundary)
    rounds: int
    shard_results: List[CampaignResult]
    #: per-shard CrashDatabases folded through CrashDatabase.merge —
    #: earliest first-seen wins regardless of shard collection order
    merged_crashes: CrashDatabase
    #: per-shard divergence findings, folded the same way (empty unless
    #: the fleet ran with channel faults / differential oracles)
    merged_divergences: CrashDatabase = field(default_factory=CrashDatabase)

    @property
    def merged_path_hashes(self) -> frozenset:
        """Union of every shard's bucketed path identities."""
        merged = set()
        for result in self.shard_results:
            merged.update(result.path_hashes)
        return frozenset(merged)

    @property
    def merged_paths(self) -> int:
        return len(self.merged_path_hashes)

    @property
    def imported_seeds(self) -> List[int]:
        """Per-shard count of seeds absorbed from siblings."""
        return [result.stats.get("imported_seeds", 0)
                for result in self.shard_results]

    @property
    def time_to_bugs(self) -> Dict[tuple, float]:
        """Earliest simulated hours each unique bug appeared, fleet-wide."""
        return dict(self.merged_crashes.first_seen)


# ---------------------------------------------------------------------------
# shard worker (process-pool entry point)
# ---------------------------------------------------------------------------

#: one schedulable shard round, kept picklable:
#: (shard_dir, pause_at, stop_after_executions, apply_inbox_through)
_ShardTask = Tuple[str, int, Optional[int], int]


def _absorb_imports(engine, workspace: CampaignWorkspace,
                    sync_round: int, entries: List[dict]) -> None:
    """Adopt staged sibling seeds: coverage, seed pool, puzzle corpus."""
    pool = engine.seed_pool
    for meta in entries:
        with open(meta["_bin"], "rb") as handle:
            packet = handle.read()
        bucketed = meta["map"]
        pool.coverage.merge_bucketed(bucketed)
        seed = ValuableSeed(
            packet=packet,
            model_name=meta["model_name"],
            tree=None,
            execution_index=engine.stats.executions,
            sim_time_ms=engine.clock.now_ms,
            edges_touched=meta["edges_touched"],
            path_hash=meta["path_hash"],
        )
        pool.seeds.append(seed)
        engine.stats.imported_seeds += 1
        workspace.record_import(seed, bucketed, sync_round,
                                meta["src_shard"], meta["src_exec"])
        # feedback engines crack the import into the puzzle corpus the
        # same way a local valuable seed is cracked (baseline: no-op)
        engine._on_valuable_seed(seed)


def _fleet_shard_worker(task: _ShardTask) -> Optional[CampaignResult]:
    """Drive one shard for one round: restore, absorb inbox, fuzz.

    Returns the shard's :class:`CampaignResult` when its budget ended
    inside this round, ``None`` when it paused at the boundary (or was
    stopped by the simulated kill).  Workers are stateless — everything
    travels through the shard workspace — so one process pool serves
    every round of the fleet.
    """
    shard_dir, pause_at, stop_after, apply_through = task
    workspace = CampaignWorkspace(shard_dir)
    manifest, config, target_spec, engine, series, crash_times = \
        rebuild_workspace_engine(workspace)
    for sync_round, entries in workspace.load_inbox_rounds(
            workspace.synced_rounds, apply_through):
        _absorb_imports(engine, workspace, sync_round, entries)
        workspace.synced_rounds = sync_round
        workspace.checkpoint(engine)
    return _drive_campaign(manifest["engine"], target_spec,
                           manifest["seed"], engine, config, workspace,
                           series, crash_times, stop_after,
                           pause_after_executions=pause_at)


def _map_shard_tasks(tasks: List[_ShardTask],
                     pool: Optional[ProcessPoolExecutor]
                     ) -> List[Optional[CampaignResult]]:
    """Fan one round's shard tasks out (``pool`` None = in-process)."""
    if pool is None or len(tasks) <= 1:
        return [_fleet_shard_worker(task) for task in tasks]
    return list(pool.map(_fleet_shard_worker, tasks))


# ---------------------------------------------------------------------------
# sync phase (parent side)
# ---------------------------------------------------------------------------

class _ShardSyncState:
    """Parent-side incremental view of one shard's coverage journal.

    Rebuilding every shard's virgin map and export list from scratch at
    every barrier would make sync cost grow with campaign length; the
    journal is append-only between barriers, so the parent keeps a byte
    offset and folds only the new lines in.  A cold cache (fleet
    resume) replays the whole journal and lands on the same state —
    bucket-bit merging is idempotent, so re-reading a line (including
    an import the selection already folded in) never diverges.
    """

    __slots__ = ("offset", "coverage", "exports")

    def __init__(self):
        self.offset = 0
        #: accumulated bucketed map — the shard's virgin map as importer
        self.coverage = GlobalCoverage()
        #: locally-discovered (meta, map) pairs — the shard as exporter
        self.exports: List[tuple] = []

    def refresh(self, fleet: FleetWorkspace, shard: int) -> None:
        self.offset, lines = fleet.read_journal(shard, self.offset)
        for line in lines:
            self.coverage.merge_bucketed(line["map"])
            if "sync_round" in line:
                continue  # imports are not relayed: every shard scans
                # every sibling directly, so forwarding only duplicates
            meta = fleet.local_corpus_meta(shard, line["exec"])
            if meta is not None:
                self.exports.append((meta, line["map"]))


def _sync_phase(fleet: FleetWorkspace, manifest: dict, sync_round: int,
                states: Dict[int, _ShardSyncState]) -> None:
    """Stage cross-shard seeds for *sync_round* into every inbox.

    Selection is a pure function of the shard files at the boundary:
    for each unfinished shard, sibling seeds (source shard then
    discovery order) whose bucketed map adds new state to the shard's
    virgin map are staged; each accepted map is folded in before the
    next candidate is judged, so the staged set carries no redundant
    entries.  Redoing an interrupted phase rewrites the same files,
    which is what lets a killed fleet resume exactly.
    """
    shards = manifest["shards"]
    for shard in range(shards):
        states[shard].refresh(fleet, shard)
    for shard in range(shards):
        workspace = fleet.shard_workspace(shard)
        if workspace.load_result() is not None:
            continue  # finished shards never fuzz again: no inbox
        coverage = states[shard].coverage
        for src in range(shards):
            if src == shard:
                continue
            for meta, bucketed in states[src].exports:
                if not coverage.merge_bucketed(bucketed):
                    continue
                with open(meta["_bin"], "rb") as handle:
                    packet = handle.read()
                workspace.write_inbox_entry(
                    sync_round, src, meta["execution_index"], packet, {
                        "src_shard": src,
                        "src_exec": meta["execution_index"],
                        "model_name": meta["model_name"],
                        "path_hash": meta["path_hash"],
                        "edges_touched": meta["edges_touched"],
                        "map": [list(pair) for pair in bucketed],
                    })


# ---------------------------------------------------------------------------
# the round loop (shared by run_fleet and resume_fleet)
# ---------------------------------------------------------------------------

def _make_pool(shards: int,
               max_workers: Optional[int]
               ) -> Optional[ProcessPoolExecutor]:
    """One process pool for the whole fleet, or ``None`` for serial
    (same fallback contract as
    :func:`~repro.core.campaign.run_campaign_batch`)."""
    if max_workers is None:
        max_workers = default_worker_count()
    if shards <= 1 or max_workers <= 1:
        return None
    try:
        return ProcessPoolExecutor(max_workers=min(max_workers, shards))
    except OSError:
        return None  # platforms without process pools degrade to serial


def _round_loop(fleet: FleetWorkspace, *,
                max_workers: Optional[int],
                stop_after_rounds: Optional[int],
                kill_shards_at_executions: Optional[int]
                ) -> Optional[FleetResult]:
    manifest = fleet.load_manifest()
    shards = manifest["shards"]
    sync_every = manifest["sync_every"]
    results: Dict[int, CampaignResult] = {}
    states = {shard: _ShardSyncState() for shard in range(shards)}
    pool = _make_pool(shards, max_workers)
    try:
        while True:
            current_round = fleet.synced_rounds + 1
            pause_at = current_round * sync_every
            killing = kill_shards_at_executions is not None and \
                kill_shards_at_executions <= pause_at
            pending = [shard for shard in range(shards)
                       if shard not in results]
            tasks: List[_ShardTask] = [
                (fleet.shard_dir(shard), pause_at,
                 kill_shards_at_executions if killing else None,
                 fleet.synced_rounds)
                for shard in pending]
            outcomes = _map_shard_tasks(tasks, pool)
            if killing:
                return None  # simulated fleet-wide SIGKILL mid-round
            for shard, outcome in zip(pending, outcomes):
                if outcome is not None:
                    results[shard] = outcome
            if len(results) == shards:
                break
            if stop_after_rounds is not None and \
                    current_round >= stop_after_rounds:
                return None  # simulated kill at the round barrier
            _sync_phase(fleet, manifest, current_round, states)
            fleet.record_sync_round(current_round)
    finally:
        if pool is not None:
            pool.shutdown()
    ordered = [results[shard] for shard in range(shards)]
    return FleetResult(
        engine_name=manifest["engine"],
        target_name=manifest["target"],
        workspace=fleet.root,
        shards=shards,
        sync_every=sync_every,
        rounds=fleet.synced_rounds,
        shard_results=ordered,
        merged_crashes=merge_crash_reports(ordered),
        merged_divergences=merge_divergence_reports(ordered),
    )


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------

def run_fleet(engine_name: str, target_spec, *, shards: int,
              workspace_dir: str, seed: int = 0, sync_every: int = 200,
              config: Optional[CampaignConfig] = None,
              max_workers: Optional[int] = None,
              stop_after_rounds: Optional[int] = None,
              kill_shards_at_executions: Optional[int] = None
              ) -> Optional[FleetResult]:
    """Run *shards* synced shards of one campaign config as a fleet.

    Each shard is seeded ``seed + 1000*shard`` (the repetition scheme of
    :func:`~repro.core.campaign.run_repetitions`) and persists into
    ``<workspace_dir>/shards/<n>/``.  *stop_after_executions*-style kill
    switches (*stop_after_rounds* at a barrier,
    *kill_shards_at_executions* mid-round) abandon the fleet with
    ``None``; :func:`resume_fleet` carries it to the same final state an
    uninterrupted run reaches.
    """
    config = config if config is not None else CampaignConfig()
    validate_campaign_config(engine_name, target_spec, config)
    fleet = FleetWorkspace(workspace_dir)
    fleet.initialize(engine_name, target_spec.name, seed, shards,
                     sync_every,
                     config_to_dict(replace(config, workspace=None)))
    for shard in range(shards):
        shard_config = replace(config, workspace=fleet.shard_dir(shard))
        fleet.shard_workspace(shard).initialize(
            engine_name, target_spec.name, seed + 1000 * shard,
            config_to_dict(shard_config))
    return _round_loop(fleet, max_workers=max_workers,
                       stop_after_rounds=stop_after_rounds,
                       kill_shards_at_executions=kill_shards_at_executions)


def resume_fleet(workspace_dir: str, *,
                 max_workers: Optional[int] = None,
                 stop_after_rounds: Optional[int] = None,
                 kill_shards_at_executions: Optional[int] = None
                 ) -> Optional[FleetResult]:
    """Continue a killed (or finished) fleet shard-by-shard.

    Every shard is rewound to its last checkpoint and re-driven through
    the remaining rounds; completed sync phases are never redone (their
    inboxes are already on disk), an interrupted one is redone
    idempotently.  The finished fleet is bit-identical to one that was
    never killed.
    """
    fleet = FleetWorkspace(workspace_dir)
    if not fleet.exists:
        raise WorkspaceError(f"{os.path.abspath(workspace_dir)} is not a "
                             "fleet workspace (no fleet.json)")
    return _round_loop(fleet, max_workers=max_workers,
                       stop_after_rounds=stop_after_rounds,
                       kill_shards_at_executions=kill_shards_at_executions)
