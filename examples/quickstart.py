#!/usr/bin/env python3
"""Quickstart: fuzz the Modbus target with Peach* for two simulated hours.

Demonstrates the three-line public API — pick a target, run a campaign,
inspect the results — plus what the coverage feedback produced: paths,
puzzle corpus size and any crashes with their ASan-style reports.

Run:  python examples/quickstart.py
"""

from repro import CampaignConfig, get_target, run_campaign


def main() -> None:
    spec = get_target("libmodbus")
    print(f"target: {spec.paper_project} — {spec.description}")

    config = CampaignConfig(budget_hours=2.0)
    result = run_campaign("peach-star", spec, seed=1, config=config)

    print(f"\nexecutions        : {result.executions}")
    print(f"paths covered     : {result.final_paths}")
    print(f"distinct edges    : {result.final_edges}")
    print(f"semantic packets  : {result.stats['semantic_executions']}")
    print(f"puzzle corpus size: {result.stats['puzzles']}")

    print(f"\nunique crashes: {len(result.unique_crashes)}")
    for report in result.unique_crashes:
        hours = result.crash_times.get(report.dedup_key, 0.0)
        print(f"\n--- first seen at {hours:.2f} simulated hours ---")
        print(report.render())

    print("\npaths over time (simulated hours -> paths):")
    step = max(1, len(result.series) // 10)
    for hours, paths in result.series[::step]:
        print(f"  {hours:6.2f}h  {paths:4d}")


if __name__ == "__main__":
    main()
