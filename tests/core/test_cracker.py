"""Unit tests for the File Cracker (paper Alg. 2)."""

from repro.core import FileCracker, PuzzleCorpus
from repro.model import Blob, Block, DataModel, Number, Pit, size_of


def _two_model_pit():
    """Two packet types sharing the 'address' construction rule."""
    def _model(name, opcode):
        return DataModel(name, Block(f"{name}.root", [
            Number("opcode", 1, default=opcode, token=True,
                   semantic="opcode"),
            Number("address", 2, default=0, semantic="address"),
            size_of(Number("size", 1), "payload"),
            Blob("payload", default=b"\x2a", semantic=f"{name}_payload"),
        ]))
    return Pit("p", [_model("alpha", 1), _model("beta", 2)])


class TestCrack:
    def test_crack_deposits_own_tree_puzzles(self):
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        model = pit.model("alpha")
        tree = model.build_default()
        added = cracker.crack(tree.raw, tree)
        assert added > 0
        address_rule = Number("x", 2, semantic="address")
        assert corpus.donors(address_rule)

    def test_crack_without_tree_parses_all_models(self):
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        raw = pit.model("alpha").build_default().raw
        cracker.crack(raw)
        assert cracker.models_matched == 1  # beta's opcode token rejects it

    def test_cross_model_donation_via_shared_semantics(self):
        """An 'alpha' seed's address chunk is available when generating
        'beta' packets — the paper's cross-opcode donation."""
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        alpha = pit.model("alpha")

        class Pin:
            def leaf_value(self, field, path):
                return 0x0BAD if field.name == "address" else None

            def choose_option(self, choice, path):
                return 0

            def repeat_count(self, repeat, path):
                return 1

        tree = alpha.build(Pin())
        cracker.crack(tree.raw, tree)
        beta_address = pit.model("beta").root.child("address")
        assert b"\x0b\xad" in corpus.donors(beta_address)

    def test_relation_and_fixup_chunks_skipped(self):
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        model = pit.model("alpha")
        tree = model.build_default()
        cracker.crack(tree.raw, tree)
        size_rule = model.root.child("size")
        assert corpus.donors(size_rule) == ()

    def test_token_chunks_skipped(self):
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        model = pit.model("alpha")
        tree = model.build_default()
        cracker.crack(tree.raw, tree)
        opcode_rule = model.root.child("opcode")
        assert corpus.donors(opcode_rule) == ()

    def test_illegal_seed_deposits_nothing(self):
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        added = cracker.crack(b"\xff\xff\xff")
        assert added == 0
        assert corpus.is_empty

    def test_internal_node_puzzles_deposited(self):
        """Alg. 2 collects sub-tree joints, not only leaves."""
        pit = _two_model_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        model = pit.model("alpha")
        tree = model.build_default()
        cracker.crack(tree.raw, tree)
        root_rule = model.root  # block signature
        assert corpus.donors(root_rule) == (tree.raw,)

    def test_statistics_tracked(self):
        pit = _two_model_pit()
        cracker = FileCracker(pit, PuzzleCorpus())
        tree = pit.model("alpha").build_default()
        cracker.crack(tree.raw, tree)
        cracker.crack(tree.raw, tree)  # duplicates rejected second time
        assert cracker.seeds_cracked == 2
        assert cracker.puzzles_deposited >= 1
