"""Peach pit for the libiec_iccp_mod target.

Models for associate, transfer-set / data-value reads, data-value writes
and information messages.  Object-name chunks share the ``object_name``
semantic across models, and reference numbers share ``reference`` — the
cross-model donor routes for this protocol.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model import (
    Blob, Block, DataModel, Field, Number, Pit, Str, size_of,
)
from repro.protocols.iccp import codec
from repro.state.model import State, StateModel, Transition


def _tlv(prefix: str, tag: int, content: Sequence[Field], *,
         tag_semantic: str = "ber_tag") -> List[Field]:
    block = Block(f"{prefix}_content", list(content))
    return [
        Number(f"{prefix}_tag", 1, default=tag, token=True,
               semantic=tag_semantic),
        size_of(Number(f"{prefix}_len", 1, semantic="ber_length"),
                f"{prefix}_content"),
        block,
    ]


def _name_tlv(prefix: str, default: str) -> List[Field]:
    return [
        Number(f"{prefix}_tag", 1, default=codec.TAG_NAME, token=True,
               semantic="name_tag"),
        size_of(Number(f"{prefix}_len", 1, semantic="ber_length"),
                f"{prefix}_value"),
        Str(f"{prefix}_value", default=default, semantic="object_name"),
    ]


def _ref_tlv(prefix: str, tag: int, default: int) -> List[Field]:
    return [
        Number(f"{prefix}_tag", 1, default=tag, token=True,
               semantic="ref_tag"),
        Number(f"{prefix}_len", 1, default=2, token=True,
               semantic="ber_length"),
        Number(f"{prefix}_value", 2, default=default, semantic="reference"),
    ]


def _invoke() -> List[Field]:
    return [
        Number("invoke_tag", 1, default=0x02, token=True,
               semantic="invoke_tag"),
        Number("invoke_len", 1, default=1, token=True,
               semantic="ber_length"),
        Number("invoke_value", 1, default=1, semantic="invoke_id"),
    ]


def _frame(name: str, mms_fields: Sequence[Field],
           weight: float = 1.0) -> DataModel:
    root = Block(f"{name}.frame", [
        Number("tpkt_version", 1, default=codec.TPKT_VERSION, token=True,
               semantic="tpkt_version"),
        Number("tpkt_reserved", 1, default=0, semantic="tpkt_reserved"),
        size_of(Number("tpkt_length", 2, semantic="tpkt_length"), "rest",
                adjust=4),
        Block("rest", [
            Number("cotp_length", 1, default=2, token=True,
                   semantic="cotp_length"),
            Number("cotp_type", 1, default=codec.COTP_DT, token=True,
                   semantic="cotp_type"),
            Number("cotp_eot", 1, default=codec.COTP_EOT,
                   semantic="cotp_eot"),
            Block("mms", list(mms_fields)),
        ]),
    ])
    return DataModel(f"iccp.{name}", root, weight=weight)


def _confirmed(name: str, service_tag: int, service_fields: Sequence[Field],
               weight: float = 1.0) -> DataModel:
    service = _tlv("svc", service_tag, service_fields,
                   tag_semantic="service_tag")
    pdu = _tlv("pdu", codec.MMS_CONFIRMED_REQUEST, _invoke() + service,
               tag_semantic="pdu_tag")
    return _frame(name, pdu, weight=weight)


def make_pit() -> Pit:
    """Build the libiec_iccp_mod pit (8 data models)."""
    models = [
        _frame("associate", _tlv(
            "pdu", codec.MMS_INITIATE_REQUEST,
            [Number("blt_tag", 1, default=0x80, token=True,
                    semantic="blt_tag"),
             size_of(Number("blt_len", 1, semantic="ber_length"),
                     "blt_value"),
             Str("blt_value", default=codec.BILATERAL_TABLE_ID,
                 semantic="bilateral_table")],
            tag_semantic="pdu_tag"), weight=0.6),
        _confirmed("read_transfer_set", codec.SVC_READ,
                   _name_tlv("name", codec.TRANSFER_SETS[0])),
        _confirmed("read_data_value", codec.SVC_READ,
                   _name_tlv("name", codec.DATA_VALUES[0])),
        _confirmed("read_data_value_indexed", codec.SVC_READ,
                   _name_tlv("name", codec.DATA_VALUES[0]) + [
                       Number("index_tag", 1, default=codec.TAG_INDEX,
                              token=True, semantic="index_tag"),
                       Number("index_len", 1, default=2, token=True,
                              semantic="ber_length"),
                       Number("index_value", 2, default=0,
                              semantic="element_index"),
                   ]),
        _confirmed("write_data_value", codec.SVC_WRITE,
                   _name_tlv("name", codec.DATA_VALUES[1]) + [
                       Number("data_tag", 1,
                              default=codec.TAG_DATA_OCTETS, token=True,
                              semantic="data_tag"),
                       size_of(Number("data_len", 1,
                                      semantic="ber_length"),
                               "data_value"),
                       Blob("data_value", default=b"\x10\x20\x30\x40",
                            max_length=96, semantic="dv_octets"),
                   ]),
        _frame("info_report", _tlv(
            "pdu", codec.MMS_UNCONFIRMED,
            _tlv("svc", codec.SVC_INFO_REPORT,
                 _ref_tlv("info_ref", codec.TAG_INFO_REF, 1)
                 + _ref_tlv("local_ref", codec.TAG_LOCAL_REF, 1)
                 + _ref_tlv("msg_id", codec.TAG_MSG_ID, 1)
                 + [Number("content_tag", 1, default=codec.TAG_CONTENT,
                           token=True, semantic="content_tag"),
                    size_of(Number("content_len", 1,
                                   semantic="ber_length"),
                            "content_value"),
                    Blob("content_value", default=b"alarm",
                         max_length=48, semantic="im_content")],
                 tag_semantic="service_tag"),
            tag_semantic="pdu_tag")),
        _confirmed("read_next_set", codec.SVC_READ,
                   _name_tlv("name", "Next_DSTransfer_Set"), weight=0.5),
        # coarse model: raw MMS payload behind valid framing
        _frame("raw_mms", [
            Blob("mms_blob", default=bytes((0xA0, 0x05, 0x02, 0x01, 0x01,
                                            0xA4, 0x00)),
                 max_length=64, semantic="raw_mms"),
        ], weight=0.6),
    ]
    return Pit("iccp", models)


def make_state_model() -> StateModel:
    """Session state machine for the libiec_iccp_mod target.

    Tracks the bilateral-table association the single-packet loop
    resets away: an associate carrying the wrong bilateral table id
    drops the endpoint into the unassociated state, where every
    confirmed service is answered with the association error — a
    response class (and error path) no single packet can observe,
    because ``reset()`` restores the association before each execution.
    The rejected associate is forced deterministically by *pinning* the
    ``blt_value`` leaf of the shared associate model (the SizeOf
    relation over the name keeps the framing honest), so no dedicated
    data model is needed.

    Transfer-set / data-value state (a ``write_data_value`` changing
    what a later indexed read returns) also persists across a session's
    packets.  No captures: responses are confirmed-RESPONSE/ERROR PDUs
    the request-direction models do not parse.
    """
    associated = State("associated", (
        Transition("iccp.read_transfer_set", "associated"),
        Transition("iccp.read_data_value", "associated"),
        Transition("iccp.read_data_value_indexed", "associated",
                   weight=0.8),
        Transition("iccp.write_data_value", "associated", weight=0.8),
        Transition("iccp.info_report", "associated", weight=0.6),
        Transition("iccp.read_next_set", "associated", weight=0.4),
        Transition("iccp.raw_mms", "associated", weight=0.5),
        Transition("iccp.associate", "associated", weight=0.3),
        Transition("iccp.associate", "unassociated", weight=0.8,
                   pin={"blt_value": "DENY-TBL"}),
    ))
    unassociated = State("unassociated", (
        Transition("iccp.associate", "associated", weight=1.2),
        Transition("iccp.read_data_value", "unassociated"),
        Transition("iccp.write_data_value", "unassociated", weight=0.5),
        Transition("iccp.info_report", "unassociated", weight=0.4),
        Transition("iccp.associate", "unassociated", weight=0.3,
                   pin={"blt_value": "DENY-TBL"}),
    ))
    return StateModel("iccp.session", "associated",
                      (associated, unassociated))
