"""Shared protocol plumbing: BER/TLV codec and target registry types."""

from repro.protocols.common.ber import (
    BerError, collect_children, decode_integer, decode_length, decode_tlv,
    encode_integer, encode_length, encode_tlv, encode_visible_string,
    iter_tlvs,
)

__all__ = [
    "BerError", "collect_children", "decode_integer", "decode_length",
    "decode_tlv", "encode_integer", "encode_length", "encode_tlv",
    "encode_visible_string", "iter_tlvs",
]
