"""Persistent campaign state: on-disk workspaces for resumable fuzzing.

The paper's campaigns are one-shot, in-memory affairs; the production
north star (long-running services, many scenarios) needs campaigns that
survive their process.  :class:`CampaignWorkspace` persists a running
campaign — seed corpus, crash inputs, sparse coverage journal, stats
series, config and RNG snapshots — so ``peachstar resume <dir>``
continues a killed campaign bit-identically.  :class:`FleetWorkspace`
stacks N shard workspaces under one manifest with AFL-style sync-dir
corpus exchange between them (see :mod:`repro.core.fleet`).
"""

from repro.store.fleet import FleetWorkspace, is_fleet_workspace
from repro.store.workspace import (
    STATE_FORMAT, CampaignWorkspace, WorkspaceError,
)

__all__ = ["STATE_FORMAT", "CampaignWorkspace", "FleetWorkspace",
           "WorkspaceError", "is_fleet_workspace"]
