"""Campaign driver: run an engine against a target under a time budget.

Reproduces the paper's experimental procedure (§V-B): each fuzzer runs
against each project for a 24-hour budget, repeated N times, recording
the number of paths covered over time.  Time is the simulated clock of
:mod:`repro.runtime.clock`; both engines are measured with the same
path-coverage framework (a tracing collector on the target), exactly as
the paper instruments both Peach and Peach* for measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import GenerationFuzzer, PeachStar
from repro.model.mutators import GenerationPolicy
from repro.runtime.clock import CostModel, SimulatedClock
from repro.runtime.instrument import TracingCollector
from repro.runtime.target import Target
from repro.sanitizer.report import CrashReport


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    engine_name: str
    target_name: str
    seed: int
    series: List[Tuple[float, int]]          # (sim hours, paths covered)
    final_paths: int
    final_edges: int
    executions: int
    unique_crashes: List[CrashReport]
    crash_times: Dict[Tuple[str, str], float]  # dedup key -> sim hours
    stats: dict

    def paths_at(self, hours: float) -> int:
        """Paths covered at simulated time *hours* (step interpolation)."""
        best = 0
        for when, paths in self.series:
            if when > hours:
                break
            best = paths
        return best

    def time_to_paths(self, paths: int) -> Optional[float]:
        """Simulated hours until *paths* paths were covered, or None."""
        for when, count in self.series:
            if count >= paths:
                return when
        return None


def default_campaign_policy() -> GenerationPolicy:
    """The generation policy used throughout the evaluation.

    Weaker priors than the unit-test default: valid values mostly have to
    be *discovered*, which is exactly the regime the paper targets ("the
    random and pointless generation strategy makes it less likely to
    produce high-quality inputs", §I).
    """
    return GenerationPolicy(default_prob=0.15, legal_value_prob=0.10,
                            edge_case_prob=0.15)


@dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    budget_hours: float = 24.0
    max_executions: int = 200_000           # hard safety bound
    record_every: int = 25                  # sample the series every N execs
    policy: Optional[GenerationPolicy] = field(
        default_factory=default_campaign_policy)
    semantic_batch: int = 16
    semantic_ratio: float = 0.5
    pin_prob: float = 0.5
    crack_enabled: bool = True
    semantic_enabled: bool = True
    hang_budget: int = 120_000


def make_engine(engine_name: str, target_spec, seed: int,
                config: Optional[CampaignConfig] = None) -> GenerationFuzzer:
    """Build a ready-to-run engine ("peach" or "peach-star") for a target.

    Both engines get a tracing collector so path coverage is *measured*
    identically; only Peach* pays the coverage-feedback overhead on the
    simulated clock and actually uses the feedback.
    """
    config = config if config is not None else CampaignConfig()
    rng = random.Random(seed)
    collector = TracingCollector(
        module_prefixes=("repro/protocols",),
        hang_budget=config.hang_budget)
    target = Target(target_spec.make_server, collector)
    clock = SimulatedClock(target_spec.cost_model)
    pit = target_spec.make_pit()
    if engine_name == "peach":
        return GenerationFuzzer(pit, target, rng, clock,
                                policy=config.policy)
    if engine_name == "peach-star":
        return PeachStar(pit, target, rng, clock, policy=config.policy,
                         semantic_batch=config.semantic_batch,
                         semantic_ratio=config.semantic_ratio,
                         pin_prob=config.pin_prob,
                         crack_enabled=config.crack_enabled,
                         semantic_enabled=config.semantic_enabled)
    raise ValueError(f"unknown engine {engine_name!r}; "
                     "choices: peach, peach-star")


def run_campaign(engine_name: str, target_spec, seed: int = 0,
                 config: Optional[CampaignConfig] = None) -> CampaignResult:
    """Run one budgeted campaign and collect its result."""
    config = config if config is not None else CampaignConfig()
    engine = make_engine(engine_name, target_spec, seed, config)
    budget_ms = config.budget_hours * 3_600_000.0
    series: List[Tuple[float, int]] = [(0.0, 0)]
    crash_times: Dict[Tuple[str, str], float] = {}
    while engine.clock.now_ms < budget_ms and \
            engine.stats.executions < config.max_executions:
        outcome = engine.iterate()
        if outcome.new_unique_crash:
            key = outcome.result.crash.dedup_key
            crash_times[key] = engine.clock.hours
        if engine.stats.executions % config.record_every == 0:
            series.append((engine.clock.hours, engine.path_count))
    series.append((engine.clock.hours, engine.path_count))
    return CampaignResult(
        engine_name=engine_name,
        target_name=target_spec.name,
        seed=seed,
        series=series,
        final_paths=engine.path_count,
        final_edges=engine.seed_pool.edge_count,
        executions=engine.stats.executions,
        unique_crashes=engine.crashes.unique_reports(),
        crash_times=crash_times,
        stats=engine.stats.as_dict(),
    )


def run_repetitions(engine_name: str, target_spec, *, repetitions: int,
                    base_seed: int = 0,
                    config: Optional[CampaignConfig] = None
                    ) -> List[CampaignResult]:
    """Run N independent repetitions (the paper repeats each 10 times)."""
    return [run_campaign(engine_name, target_spec,
                         seed=base_seed + 1000 * rep, config=config)
            for rep in range(repetitions)]


def average_paths_at(results: Sequence[CampaignResult],
                     hours: float) -> float:
    """Mean paths covered at simulated time *hours* across repetitions."""
    if not results:
        return 0.0
    return sum(result.paths_at(hours) for result in results) / len(results)


def average_series(results: Sequence[CampaignResult],
                   checkpoints: Sequence[float]
                   ) -> List[Tuple[float, float]]:
    """Average paths-over-time curve sampled at *checkpoints* (hours)."""
    return [(hours, average_paths_at(results, hours))
            for hours in checkpoints]
