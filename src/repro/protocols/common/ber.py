"""Minimal BER/TLV codec shared by the MMS-based targets.

libiec61850 and libiec_iccp_mod both speak MMS, which is BER-encoded
ASN.1.  This module provides the small definite-length TLV subset those
stacks actually exercise: context/application/universal tags, one- and
two-byte lengths, nested constructed values.

The *servers* deliberately do not use these safe helpers on their hot
paths — they re-implement C-style decoding against the simulated heap so
that the seeded vulnerabilities live where the paper found them.  The
helpers here serve the data models, codecs, tests and examples.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class BerError(Exception):
    """Raised on malformed TLV structures."""


def encode_length(length: int) -> bytes:
    """Encode a definite BER length (short or two-byte long form)."""
    if length < 0:
        raise BerError(f"negative length {length}")
    if length < 0x80:
        return bytes((length,))
    if length <= 0xFF:
        return bytes((0x81, length))
    if length <= 0xFFFF:
        return bytes((0x82, length >> 8, length & 0xFF))
    raise BerError(f"length {length} too large")


def decode_length(data: bytes, pos: int) -> Tuple[int, int]:
    """Return ``(length, new_pos)`` for the length octets at *pos*."""
    if pos >= len(data):
        raise BerError("truncated length")
    first = data[pos]
    pos += 1
    if first < 0x80:
        return first, pos
    count = first & 0x7F
    if count == 0 or count > 2:
        raise BerError(f"unsupported length-of-length {count}")
    if pos + count > len(data):
        raise BerError("truncated long-form length")
    value = int.from_bytes(data[pos:pos + count], "big")
    return value, pos + count


def encode_tlv(tag: int, value: bytes) -> bytes:
    """Encode one TLV with a single-byte tag."""
    if not 0 <= tag <= 0xFF:
        raise BerError(f"tag {tag:#x} out of range")
    return bytes((tag,)) + encode_length(len(value)) + value


def decode_tlv(data: bytes, pos: int = 0) -> Tuple[int, bytes, int]:
    """Return ``(tag, value, new_pos)`` for the TLV at *pos*."""
    if pos >= len(data):
        raise BerError("truncated tag")
    tag = data[pos]
    length, value_pos = decode_length(data, pos + 1)
    end = value_pos + length
    if end > len(data):
        raise BerError(f"TLV value truncated (need {length} bytes)")
    return tag, data[value_pos:end], end


def iter_tlvs(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Iterate consecutive TLVs covering all of *data*."""
    pos = 0
    while pos < len(data):
        tag, value, pos = decode_tlv(data, pos)
        yield tag, value


def encode_integer(value: int, tag: int = 0x02) -> bytes:
    """BER integer with minimal two's-complement content octets."""
    if value == 0:
        body = b"\x00"
    else:
        length = (value.bit_length() + 8) // 8
        body = value.to_bytes(length, "big", signed=True)
        # strip a redundant leading sign octet
        if len(body) > 1 and body[0] == 0 and body[1] < 0x80:
            body = body[1:]
    return encode_tlv(tag, body)


def decode_integer(value: bytes) -> int:
    if not value:
        raise BerError("empty integer")
    return int.from_bytes(value, "big", signed=True)


def encode_visible_string(text: str, tag: int = 0x1A) -> bytes:
    return encode_tlv(tag, text.encode("latin-1", errors="replace"))


def collect_children(value: bytes) -> List[Tuple[int, bytes]]:
    """Decode a constructed value's immediate children."""
    return list(iter_tlvs(value))
