#!/usr/bin/env python3
"""Walk through the paper's core mechanism by hand.

Steps mirror Fig. 3 / Algorithms 2-3:

1. build a *valuable* packet for one Modbus packet type (a valid
   READ HOLDING REGISTERS request with a rare in-range quantity);
2. crack it against the whole pit (Alg. 2) — its InsTree is shown and
   every sub-tree becomes a puzzle in the corpus;
3. run semantic-aware generation (Alg. 3) for a *different* packet type
   (WRITE MULTIPLE REGISTERS), showing donor values crossing between
   data models — "a valuable seed with one value of the opcode can be
   used to optimize seed generation for other values of the opcode";
4. verify File Fixup re-established the MBAP length relation on every
   spliced packet.

Run:  python examples/crack_and_generate.py
"""

import random

from repro import FileCracker, PuzzleCorpus, SemanticGenerator, get_target
from repro.protocols.modbus import build_read_request


def main() -> None:
    pit = get_target("libmodbus").make_pit()

    # 1. a "valuable" seed: reads 17 registers starting at address 32
    seed = build_read_request(0x03, address=32, quantity=17)
    print(f"valuable seed ({len(seed)} bytes): {seed.hex()}")

    # 2. crack it (paper Alg. 2): PARSE under every model, DFS puzzles
    corpus = PuzzleCorpus(rng=random.Random(0))
    cracker = FileCracker(pit, corpus)
    read_model = pit.model("modbus.read_holding_registers")
    tree = read_model.parse(seed)
    print("\nInstantiation Tree (Definition 1):")
    print(tree.pretty())

    new_puzzles = cracker.crack(seed)
    print(f"\ncracked into {new_puzzles} puzzles across "
          f"{corpus.rule_count()} construction rules "
          f"({cracker.models_matched} data models parsed the seed)")

    # the quantity chunk is now a donor for *other* packet types
    write_model = pit.model("modbus.write_multiple_registers")
    quantity_rule = write_model.root.child("body").child("quantity")
    print(f"\ndonors for {quantity_rule.signature()}: "
          f"{[donor.hex() for donor in corpus.donors(quantity_rule)]}")

    # 3. semantic-aware generation (paper Alg. 3) for the write model
    generator = SemanticGenerator(corpus, random.Random(1), pin_prob=1.0,
                                  batch_limit=4)
    batch = generator.construct(write_model)
    print(f"\nsemantic generation produced {len(batch)} spliced packets "
          "for modbus.write_multiple_registers:")
    for spliced_tree, wire in batch:
        quantity = spliced_tree.find("quantity").value
        address = spliced_tree.find("address").value
        print(f"  addr={address:<6} quantity={quantity:<6} {wire.hex()}")

    # 4. File Fixup check: relations hold on every spliced packet
    for spliced_tree, wire in batch:
        reparsed = write_model.parse(wire)
        assert reparsed.find("length").value == \
            len(reparsed.find("body").raw)
    print("\nFile Fixup verified: MBAP length relation holds on every "
          "spliced packet")


if __name__ == "__main__":
    main()
