"""repro — Peach*: ICS protocol fuzzing with coverage-guided packet
crack and generation (reproduction of Luo et al., DAC 2020).

Quickstart
----------

>>> from repro import get_target, run_campaign, CampaignConfig
>>> spec = get_target("libmodbus")
>>> result = run_campaign("peach-star", spec, seed=1,
...                       config=CampaignConfig(budget_hours=2.0))
>>> result.final_paths > 0
True

Layers
------

* :mod:`repro.model` — Peach-style data models (fields, relations,
  fixups, mutators, XML pits)
* :mod:`repro.runtime` — coverage maps, instrumentation, simulated clock
* :mod:`repro.sanitizer` — simulated heap + ASan-style crash reports
* :mod:`repro.protocols` — the six ICS targets of the paper's evaluation
* :mod:`repro.core` — the Peach* engine (seed pool, cracker, corpus,
  semantic generation, fixup, campaigns)
* :mod:`repro.analysis` — regenerates the paper's figures and tables
"""

from repro.core import (
    CampaignConfig, CampaignResult, FileCracker, GenerationFuzzer,
    PeachStar, PuzzleCorpus, SeedPool, SemanticGenerator,
    default_campaign_policy, make_engine, resume_campaign, run_campaign,
    run_repetitions,
)
from repro.model import (
    Blob, Block, Choice, DataModel, GenerationPolicy, MutatorProvider,
    Number, ParseError, Pit, Repeat, Str, load_pit_file, load_pit_string,
)
from repro.protocols import TargetSpec, all_targets, get_target
from repro.runtime import Target, TracingCollector
from repro.sanitizer import CrashDatabase, MemoryFault, SimHeap
from repro.store import CampaignWorkspace, WorkspaceError
from repro.triage import triage_reports

__version__ = "1.1.0"

__all__ = [
    "Blob", "Block", "CampaignConfig", "CampaignResult",
    "CampaignWorkspace", "Choice", "CrashDatabase", "DataModel",
    "FileCracker", "GenerationFuzzer", "GenerationPolicy", "MemoryFault",
    "MutatorProvider", "Number", "ParseError", "PeachStar", "Pit",
    "PuzzleCorpus", "Repeat", "SeedPool", "SemanticGenerator", "SimHeap",
    "Str", "Target", "TargetSpec", "TracingCollector", "WorkspaceError",
    "all_targets", "default_campaign_policy", "get_target",
    "load_pit_file", "load_pit_string", "make_engine", "resume_campaign",
    "run_campaign", "run_repetitions", "triage_reports", "__version__",
]
