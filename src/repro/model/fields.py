"""Field classes for the Peach-style data-model tree.

A data model (paper Fig. 1) is a tree whose internal nodes are ``Block`` /
``Choice`` / ``Repeat`` fields and whose leaves are ``Number`` / ``Str`` /
``Blob`` fields.  Each field is a *construction rule*: it knows how to
encode a value to bytes, how to decode bytes back to a value, and which
other rules it is compatible with (its :class:`RuleSignature`, used by the
puzzle corpus's ``GETDONOR``).

Fields are declarative and immutable after model construction; per-packet
state lives in :class:`repro.model.instree.InsNode` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.util import fnv1a32


class ModelError(Exception):
    """Raised for malformed data-model definitions."""


class ParseError(Exception):
    """Raised when input bytes do not match the data model (illegal InsTree)."""


@dataclass(frozen=True)
class RuleSignature:
    """Identity of a construction rule, used for donor matching.

    Two chunks are considered to "conform to similar construction rules"
    (paper Fig. 2a) when their signatures are equal: same field kind, same
    encoded width and the same *semantic* tag.  Model authors align the
    semantic tag across data models (e.g. the ``quantity`` field of Modbus
    FC 0x0F and FC 0x10) to declare that donors may flow between them.
    """

    kind: str
    width: int  # encoded width in bytes; 0 when variable
    semantic: str

    def stable_id(self) -> int:
        """32-bit stable identifier of this signature."""
        return fnv1a32(f"{self.kind}/{self.width}/{self.semantic}")

    def __str__(self) -> str:
        width = str(self.width) if self.width else "var"
        return f"{self.kind}[{width}]:{self.semantic}"


class Field:
    """Base class of all data-model fields.

    Parameters
    ----------
    name:
        Field name, unique among its siblings.
    semantic:
        Tag aligning this rule with compatible rules in other data models.
        Defaults to the field name.
    token:
        Token fields (e.g. magic bytes, the function-code of a per-type
        data model) must match their default on parse and are never
        mutated during generation.
    """

    kind = "field"

    def __init__(self, name: str, semantic: Optional[str] = None,
                 token: bool = False):
        if not name:
            raise ModelError("field name must be non-empty")
        self.name = name
        self.semantic = semantic if semantic is not None else name
        self.token = token
        self.relation = None  # set via repro.model.relations
        self.fixup = None     # set via repro.model.fixups

    # -- structure ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return True

    def children(self) -> Sequence["Field"]:
        return ()

    def iter_leaves(self) -> Iterator["Field"]:
        """Yield leaf fields in declaration order (the linear model M_L)."""
        if self.is_leaf:
            yield self
        else:
            for child in self.children():
                yield from child.iter_leaves()

    # -- rule identity -----------------------------------------------------

    def fixed_width(self) -> Optional[int]:
        """Encoded width in bytes when static, else ``None``."""
        return None

    def signature(self) -> RuleSignature:
        width = self.fixed_width() or 0
        return RuleSignature(self.kind, width, self.semantic)

    # -- value codec (leaves override) --------------------------------------

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes):
        raise NotImplementedError

    def decode_lenient(self, data: bytes):
        """Best-effort decode of possibly-truncated bytes (never raises).

        The non-strict parse path uses this when the wire data runs out
        mid-leaf; leaves fall back to their default when even a partial
        decode is impossible.
        """
        try:
            return self.decode(data)
        except ParseError:
            return self.default_value()

    def default_value(self):
        raise NotImplementedError

    def validate(self, value) -> bool:
        """Return True when *value* satisfies this rule's constraints."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Number(Field):
    """Fixed-width integer field.

    Parameters mirror Peach's ``<Number>``: ``width`` is in *bytes*
    (1, 2, 3, 4 or 8), ``endian`` is ``"big"`` or ``"little"``, and the
    optional ``values`` sequence restricts the legal value set (used for
    opcode / function-code fields and enumerations).
    """

    kind = "number"

    def __init__(self, name: str, width: int = 1, *, endian: str = "big",
                 default: int = 0, signed: bool = False,
                 values: Optional[Sequence[int]] = None,
                 minimum: Optional[int] = None, maximum: Optional[int] = None,
                 semantic: Optional[str] = None, token: bool = False):
        super().__init__(name, semantic=semantic, token=token)
        if width not in (1, 2, 3, 4, 8):
            raise ModelError(f"unsupported number width {width} for {name!r}")
        if endian not in ("big", "little"):
            raise ModelError(f"bad endian {endian!r} for {name!r}")
        self.width = width
        self.endian = endian
        self.default = default
        self.signed = signed
        self.values = tuple(values) if values is not None else None
        self.minimum = minimum
        self.maximum = maximum
        if not self.validate(default) and not token:
            raise ModelError(f"default {default} violates constraints of {name!r}")

    def fixed_width(self) -> Optional[int]:
        return self.width

    def default_value(self) -> int:
        return self.default

    def encode(self, value: int) -> bytes:
        bits = self.width * 8
        if self.signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if not lo <= value <= hi:
            value &= (1 << bits) - 1  # wrap like a C integer
            if self.signed and value > hi:
                value -= 1 << bits
        return value.to_bytes(self.width, self.endian, signed=self.signed)

    def decode(self, data: bytes) -> int:
        if len(data) != self.width:
            raise ParseError(
                f"{self.name}: need {self.width} bytes, got {len(data)}")
        return int.from_bytes(data, self.endian, signed=self.signed)

    def decode_lenient(self, data: bytes) -> int:
        if not data:
            return self.default
        return int.from_bytes(data, self.endian, signed=self.signed)

    def validate(self, value: int) -> bool:
        if self.values is not None and value not in self.values:
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


class Str(Field):
    """ASCII string field, optionally fixed-length or null-padded."""

    kind = "string"

    def __init__(self, name: str, *, default: str = "", length: Optional[int] = None,
                 pad: bytes = b"\x00", semantic: Optional[str] = None,
                 token: bool = False):
        super().__init__(name, semantic=semantic, token=token)
        if len(pad) != 1:
            raise ModelError(f"pad must be a single byte for {name!r}")
        self.default = default
        self.length = length
        self.pad = pad

    def fixed_width(self) -> Optional[int]:
        return self.length

    def default_value(self) -> str:
        return self.default

    def encode(self, value: str) -> bytes:
        raw = value.encode("latin-1", errors="replace")
        if self.length is None:
            return raw
        if len(raw) > self.length:
            return raw[:self.length]
        return raw + self.pad * (self.length - len(raw))

    def decode(self, data: bytes) -> str:
        if self.length is not None and len(data) != self.length:
            raise ParseError(
                f"{self.name}: need {self.length} bytes, got {len(data)}")
        return data.decode("latin-1")

    def decode_lenient(self, data: bytes) -> str:
        return data.decode("latin-1")


class Blob(Field):
    """Opaque byte field; ``length=None`` means variable-length.

    A variable-length blob gets its extent either from a ``SizeOf``
    relation on a preceding field or, failing that, greedily consumes the
    remainder of the enclosing block on parse.
    """

    kind = "blob"

    def __init__(self, name: str, *, default: bytes = b"",
                 length: Optional[int] = None,
                 max_length: int = 1024,
                 semantic: Optional[str] = None, token: bool = False):
        super().__init__(name, semantic=semantic, token=token)
        self.default = bytes(default)
        self.length = length
        self.max_length = max_length
        if length is not None and len(self.default) != length:
            self.default = (self.default + b"\x00" * length)[:length]

    def fixed_width(self) -> Optional[int]:
        return self.length

    def default_value(self) -> bytes:
        return self.default

    def encode(self, value: bytes) -> bytes:
        value = bytes(value)
        if self.length is None:
            return value
        if len(value) >= self.length:
            return value[:self.length]
        return value + b"\x00" * (self.length - len(value))

    def decode(self, data: bytes) -> bytes:
        if self.length is not None and len(data) != self.length:
            raise ParseError(
                f"{self.name}: need {self.length} bytes, got {len(data)}")
        return bytes(data)

    def decode_lenient(self, data: bytes) -> bytes:
        return bytes(data)


class Block(Field):
    """Internal node grouping an ordered sequence of child fields."""

    kind = "block"

    def __init__(self, name: str, children: Sequence[Field], *,
                 semantic: Optional[str] = None):
        super().__init__(name, semantic=semantic)
        if not children:
            raise ModelError(f"block {name!r} must have children")
        names = [c.name for c in children]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate child names in block {name!r}: {names}")
        self._children = tuple(children)

    @property
    def is_leaf(self) -> bool:
        return False

    def children(self) -> Sequence[Field]:
        return self._children

    def fixed_width(self) -> Optional[int]:
        total = 0
        for child in self._children:
            width = child.fixed_width()
            if width is None:
                return None
            total += width
        return total

    def child(self, name: str) -> Field:
        for candidate in self._children:
            if candidate.name == name:
                return candidate
        raise ModelError(f"block {self.name!r} has no child {name!r}")


class Choice(Field):
    """Alternation: exactly one child applies.

    On parse the alternatives are tried in declaration order and the first
    one that parses cleanly (including token and value constraints) wins —
    the Peach ``<Choice>`` behaviour.
    """

    kind = "choice"

    def __init__(self, name: str, options: Sequence[Field], *,
                 semantic: Optional[str] = None):
        super().__init__(name, semantic=semantic)
        if not options:
            raise ModelError(f"choice {name!r} must have options")
        self._options = tuple(options)

    @property
    def is_leaf(self) -> bool:
        return False

    def children(self) -> Sequence[Field]:
        return self._options

    def fixed_width(self) -> Optional[int]:
        widths = {opt.fixed_width() for opt in self._options}
        if len(widths) == 1:
            return widths.pop()
        return None


class Repeat(Field):
    """Homogeneous array of a child field.

    The element count comes from a ``CountOf`` relation on a preceding
    number field when present; otherwise parse consumes elements until the
    enclosing extent is exhausted.  ``min_count``/``max_count`` bound
    generation and constrain parse.
    """

    kind = "repeat"

    def __init__(self, name: str, element: Field, *, min_count: int = 0,
                 max_count: int = 64, semantic: Optional[str] = None):
        super().__init__(name, semantic=semantic)
        if max_count < min_count:
            raise ModelError(f"repeat {name!r}: max_count < min_count")
        self.element = element
        self.min_count = min_count
        self.max_count = max_count

    @property
    def is_leaf(self) -> bool:
        return False

    def children(self) -> Sequence[Field]:
        return (self.element,)
