"""lib60870-analog target: full CS104 slave, codec and pit."""

from repro.protocols.lib60870.codec import (
    ELEMENT_SIZE, SUPPORTED_TYPES, build_apci_i, build_asdu, build_object,
    build_u_frame, cp56time,
)
from repro.protocols.lib60870.model import make_pit, make_state_model
from repro.protocols.lib60870.server import Lib60870Server

__all__ = [
    "ELEMENT_SIZE", "Lib60870Server", "SUPPORTED_TYPES", "build_apci_i",
    "build_asdu", "build_object", "build_u_frame", "cp56time", "make_pit",
    "make_state_model",
]
