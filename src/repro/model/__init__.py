"""Peach-style data-model substrate: fields, relations, fixups, pits.

This package is the generation-based fuzzing substrate the paper builds
Peach* on: rule trees (paper Fig. 1), type-aware mutators (paper §II),
size/count relations and checksum fixups, packet build/parse, and an XML
pit loader.
"""

from repro.model.datamodel import (
    DEFAULT_PROVIDER, DataModel, Pit, Transformer, ValueProvider,
)
from repro.model.fields import (
    Blob, Block, Choice, Field, ModelError, Number, ParseError, Repeat,
    RuleSignature, Str,
)
from repro.model.fixups import (
    Crc16ModbusFixup, Crc32Fixup, Dnp3CrcFixup, Fixup, Lrc8Fixup, Sum8Fixup,
    Xor8Fixup, attach_fixup, crc16_modbus, crc_dnp3, lrc8, sum8, xor8,
)
from repro.model.generation import analyze, choose_model, generate_packet
from repro.model.instree import InsNode, InsTree
from repro.model.mutators import (
    GenerationPolicy, MutatorProvider, number_edge_cases,
)
from repro.model.pit import PitError, load_pit_file, load_pit_string
from repro.model.relations import (
    CountOf, Relation, SizeOf, attach_relation, count_of, size_of,
)

__all__ = [
    "Blob", "Block", "Choice", "CountOf", "Crc16ModbusFixup", "Crc32Fixup",
    "DataModel", "DEFAULT_PROVIDER", "Dnp3CrcFixup", "Field", "Fixup",
    "GenerationPolicy", "InsNode", "InsTree", "Lrc8Fixup", "ModelError",
    "MutatorProvider", "Number", "ParseError", "Pit", "PitError", "Relation",
    "Repeat", "RuleSignature", "SizeOf", "Str", "Sum8Fixup", "Transformer",
    "ValueProvider", "Xor8Fixup", "analyze", "attach_fixup",
    "attach_relation", "choose_model", "count_of", "crc16_modbus",
    "crc_dnp3", "generate_packet", "load_pit_file", "load_pit_string",
    "lrc8", "number_edge_cases", "size_of", "sum8", "xor8",
]
