"""Trace representation: ordered packets with models, states and bindings.

A trace is the session-mode unit of fuzzing: an ordered list of
:class:`TraceStep`, each carrying the wire bytes *as generated*, the
data model that produced them, the state-model state reached after the
step, and the binding/capture declarations copied from the transition
that emitted it.  Bindings are applied at execution time (see
:class:`~repro.state.binder.TraceBinder`), so the stored bytes of a
prefix stay valid even when an earlier step's mutation changes what the
server replies.

``encode_trace``/``decode_trace`` give traces a deterministic canonical
byte form (compact sorted-key JSON), which is what lets the rest of the
system treat them as ordinary corpus entries: the campaign workspace
persists them as one ``.bin`` per trace, fleet sync ships them between
shards unchanged, and kill-and-resume rebuilds the trace pool from the
corpus directory byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: corpus-entry model-name prefix marking an encoded trace
TRACE_MODEL_PREFIX = "session:"

#: bump when the encoded layout changes incompatibly
TRACE_FORMAT = 1

_MAGIC = b'{"fmt": '


class TraceError(ValueError):
    """Raised for blobs that do not decode as a trace."""


@dataclass
class TraceStep:
    """One packet of a session trace.

    ``tree`` is only populated for steps generated in the current
    iteration (the cracker consumes it); replayed or restored steps
    carry ``None`` and are re-parsed on demand.
    """

    model_name: str
    packet: bytes
    #: state-model state reached after this step (walk continuation)
    state: str = ""
    #: outgoing leaf name -> session variable (applied at execution)
    bind: Dict[str, str] = field(default_factory=dict)
    #: session variable <- response leaf name
    capture: Dict[str, str] = field(default_factory=dict)
    #: data model the response is parsed under for capture
    expect: Optional[str] = None
    tree: Optional[object] = None
    #: packet came from donor splicing (statistics only, not encoded)
    semantic: bool = False


def trace_model_name(state_model_name: str) -> str:
    """Corpus ``model_name`` for traces of one state model."""
    return TRACE_MODEL_PREFIX + state_model_name


def is_trace_blob(blob: bytes) -> bool:
    """Cheap structural test: does *blob* look like an encoded trace?"""
    return blob.startswith(_MAGIC)


def encode_trace(steps: Sequence[TraceStep]) -> bytes:
    """Canonical deterministic byte form of a trace.

    Compact JSON with sorted keys: identical steps always produce
    identical bytes, which the resume-determinism and fleet-sync
    machinery rely on.
    """
    payload = {
        "fmt": TRACE_FORMAT,
        "steps": [
            {
                "b": dict(step.bind),
                "c": dict(step.capture),
                "e": step.expect,
                "m": step.model_name,
                "p": step.packet.hex(),
                "s": step.state,
            }
            for step in steps
        ],
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(", ", ": ")).encode("ascii")


def decode_trace(blob: bytes) -> List[TraceStep]:
    """Inverse of :func:`encode_trace`."""
    try:
        payload = json.loads(blob.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceError(f"not an encoded trace: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("fmt") != TRACE_FORMAT:
        raise TraceError(
            f"unsupported trace format {payload.get('fmt')!r}"
            if isinstance(payload, dict) else "not an encoded trace")
    steps = []
    try:
        for blob_step in payload["steps"]:
            steps.append(TraceStep(
                model_name=blob_step["m"],
                packet=bytes.fromhex(blob_step["p"]),
                state=blob_step.get("s", ""),
                bind=dict(blob_step.get("b", {})),
                capture=dict(blob_step.get("c", {})),
                expect=blob_step.get("e"),
            ))
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        # callers tolerate foreign/corrupt corpus entries by catching
        # TraceError — a malformed payload must not leak anything else
        raise TraceError(f"malformed trace payload: {exc!r}") from exc
    return steps
