"""Fleet summary rendering: per-shard and merged paths/crashes.

The operator-facing view of a :class:`~repro.core.fleet.FleetResult`:
one row per shard (executions, locally-discovered vs imported paths,
crashes) and the merged fleet-wide totals folded through
``CrashDatabase.merge``.
"""

from __future__ import annotations

from typing import List

from repro.core.fleet import FleetResult


def render_fleet_table(fleet: FleetResult) -> str:
    """One row per shard, then the merged fleet line."""
    lines: List[str] = [
        f"FLEET: {fleet.engine_name} on {fleet.target_name} — "
        f"{fleet.shards} shards, sync every {fleet.sync_every} execs, "
        f"{fleet.rounds} sync round{'s' if fleet.rounds != 1 else ''}",
        f"{'shard':>5} {'execs':>7} {'paths':>6} {'imported':>8} "
        f"{'edges':>6} {'crashes':>7} {'hours':>6}",
        "-" * 50,
    ]
    learning = any(result.stats.get("learned_states", 0)
                   for result in fleet.shard_results)
    for shard, result in enumerate(fleet.shard_results):
        imported = result.stats.get("imported_seeds", 0)
        hours = result.series[-1][0] if result.series else 0.0
        row = (
            f"{shard:>5} {result.executions:>7} {result.final_paths:>6} "
            f"{imported:>8} {result.final_edges:>6} "
            f"{len(result.unique_crashes):>7} {hours:>6.1f}")
        if learning:
            # each shard of a --learn-states fleet grows its own
            # automaton from the responses it observed
            row += f"  ({result.stats.get('learned_states', 0)} states)"
        lines.append(row)
    lines.append("-" * 50)
    merged_line = (
        f"merged: {fleet.merged_paths} unique paths, "
        f"{fleet.merged_crashes.unique_count()} unique "
        f"crash{'es' if fleet.merged_crashes.unique_count() != 1 else ''}")
    divergences = fleet.merged_divergences.unique_count()
    if divergences:
        merged_line += f", {divergences} unique divergence" \
                       f"{'s' if divergences != 1 else ''}"
    lines.append(merged_line)
    for key, hours in sorted(fleet.time_to_bugs.items(),
                             key=lambda item: item[1]):
        kind, site = key
        lines.append(f"  [{hours:5.1f}h] {kind} {site}")
    return "\n".join(lines)
