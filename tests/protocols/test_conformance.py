"""Cross-protocol conformance matrix: one suite, all six stacks.

Before this matrix only a subset of the protocols had direct codec
tests; these invariants now run uniformly over every data model of
every bundled pit (modbus, dnp3, iec104, iec61850, iccp, lib60870):

* **wire round-trip** — ``parse(to_wire(tree))`` reproduces the wire
  bytes bit-for-bit, and so does rebuilding the parsed tree through the
  Relation/Fixup pipeline (the repair path donor splicing relies on);
* **truncation tolerance** — ``parse(strict=False)`` never raises on a
  truncated packet, for every cut point of every model (the triage
  subsystem cracks crashing mutants through this path);
* **fuzzability** — a short seeded Peach* campaign against the bundled
  server finds at least one path without the harness failing;
* **trace round-trip** — for every target (since PR 5 **all six** ship
  a session state model), a default-packet walk over the whole machine
  encodes/decodes bit-identically, every step parses strictly under
  its model (transition pins included), and the trace replays through
  the session executor with bindings applied.
"""

import random

import pytest

from repro.channel import DirectChannel
from repro.core import (
    CampaignConfig, make_engine, resume_campaign, run_campaign,
)
from repro.core.fixup_engine import TreeEchoProvider
from repro.protocols import TARGET_NAMES, all_targets, get_target
from repro.runtime.target import Target
from repro.state import (
    TraceBinder, TraceStep, apply_pins, decode_trace, encode_trace,
)

#: one pit per target, built once — model construction is pure
_PITS = {spec.name: spec.make_pit() for spec in all_targets()}


def _models():
    """Every (target, model) pair of the evaluation, as test ids."""
    params = []
    for name in TARGET_NAMES:
        for model in _PITS[name]:
            params.append(pytest.param(name, model.name,
                                       id=f"{name}-{model.name}"))
    return params


@pytest.mark.parametrize("target_name,model_name", _models())
class TestWireRoundTrip:
    def test_parse_reproduces_wire_bit_for_bit(self, target_name,
                                               model_name):
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        parsed = model.parse(wire)
        assert model.to_wire(parsed) == wire

    def test_relation_fixup_rebuild_is_bit_identical(self, target_name,
                                                     model_name):
        """The repair pipeline must be a fixpoint on legal packets:
        parse, then rebuild through build()'s relation/fixup passes."""
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        parsed = model.parse(wire)
        rebuilt = model.build(TreeEchoProvider(parsed))
        assert model.to_wire(rebuilt) == wire

    def test_fixups_verify_on_default_packet(self, target_name,
                                             model_name):
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        model.parse(wire, verify_fixups=True)  # must not raise


@pytest.mark.parametrize("target_name,model_name", _models())
def test_lenient_parse_never_raises_on_truncation(target_name,
                                                  model_name):
    """Every prefix of a legal packet yields a best-effort InsTree."""
    model = _PITS[target_name].model(model_name)
    wire = model.to_wire(model.build_default())
    for cut in range(len(wire)):
        tree = model.parse(wire[:cut], strict=False)
        assert tree.model_name == model.name


SESSION_TARGETS = tuple(spec.name for spec in all_targets()
                        if spec.supports_sessions)


def test_every_target_ships_a_state_model():
    """PR 5 closed the modelling gap: the trace round-trip rows below
    run for the full evaluation set, not a subset."""
    assert SESSION_TARGETS == TARGET_NAMES


def _default_walk(spec, seed: int = 0x5E55):
    """A default-packet trace touching every state of the state model.

    Transition pins are applied exactly as the session engine applies
    them (through the Relation/Fixup rebuild), so the walk actually
    drives the machine — e.g. the ICCP bad-bilateral-table associate.
    """
    state_model = spec.make_state_model()
    pit = _PITS[spec.name]
    rng = random.Random(seed)
    steps = []
    state = state_model.initial
    visited = {state}
    for _ in range(32):
        transition = state_model.pick_transition(state, rng)
        model = pit.model(transition.send)
        tree = model.build_default()
        if transition.pin:
            tree, packet = apply_pins(model, tree, transition.pin)
        else:
            packet = model.to_wire(tree)
        steps.append(TraceStep(
            model_name=transition.send, packet=packet,
            state=transition.to, bind=dict(transition.bind),
            capture=dict(transition.capture), expect=transition.expect))
        state = transition.to
        visited.add(state)
        if len(visited) == len(state_model.states()) and len(steps) >= 6:
            break
    assert len(visited) == len(state_model.states()), \
        f"walk never left {visited} on {spec.name}"
    return steps


@pytest.mark.parametrize("target_name", SESSION_TARGETS)
class TestTraceRoundTrip:
    def test_state_model_references_resolve(self, target_name):
        spec = get_target(target_name)
        spec.make_state_model().validate_against(_PITS[target_name])

    def test_default_walk_encodes_bit_identically(self, target_name):
        steps = _default_walk(get_target(target_name))
        blob = encode_trace(steps)
        assert encode_trace(decode_trace(blob)) == blob

    def test_every_step_parses_strictly_under_its_model(self, target_name):
        pit = _PITS[target_name]
        for step in _default_walk(get_target(target_name)):
            model = pit.model(step.model_name)
            assert model.to_wire(model.parse(step.packet)) == step.packet

    def test_default_walk_replays_through_the_session_executor(
            self, target_name):
        spec = get_target(target_name)
        steps = _default_walk(spec)
        binder = TraceBinder(_PITS[target_name], steps)
        target = Target(spec.make_server, None)
        result = target.run_trace(
            [(step.packet, step.model_name) for step in steps], binder)
        # default packets never fault a bug-free walk... except through
        # seeded sites, which would be a typed crash — not a harness
        # escape; what must hold is that every step executed
        assert result.steps_executed == len(steps) or result.crashed
        # bound packets still parse under their models after binding
        pit = _PITS[target_name]
        for step, wire in zip(steps, result.sent):
            pit.model(step.model_name).parse(wire, strict=False)


def _campaign_signature(result):
    """Everything a campaign result observably is (workspace path aside)."""
    return (result.series, result.final_paths, result.final_edges,
            result.executions,
            sorted(report.dedup_key for report in result.unique_crashes),
            sorted(report.dedup_key for report in result.unique_divergences),
            result.crash_times, result.stats, result.path_hashes)


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_direct_channel_campaign_is_bit_identical(target_name):
    """The channel seam itself must not perturb anything: a campaign
    through the pinned DirectChannel passthrough is bit-identical to a
    channel-less one, on every stack."""
    spec = get_target(target_name)
    config = CampaignConfig(budget_hours=24.0, max_executions=120,
                            record_every=20)
    plain = run_campaign("peach-star", spec, seed=42, config=config)
    engine = make_engine("peach-star", spec, 42, config)
    engine.target.channel = DirectChannel()
    piped = run_campaign("peach-star", spec, seed=42, config=config,
                         engine=engine)
    assert _campaign_signature(piped) == _campaign_signature(plain)


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_faulted_campaign_kill_resume_is_bit_identical(target_name,
                                                       tmp_path):
    """The fault RNG checkpoints with the workspace: a seeded faulting
    campaign killed mid-run and resumed finishes bit-identical to one
    that was never killed — divergence findings included."""
    spec = get_target(target_name)

    def config(workspace):
        return CampaignConfig(budget_hours=24.0, max_executions=120,
                              record_every=20, checkpoint_every=40,
                              channel_faults=0.2, workspace=workspace)

    full = run_campaign("peach-star", spec, seed=42,
                        config=config(str(tmp_path / "full")))
    assert full.stats["channel_faults"] > 0
    killed_dir = str(tmp_path / "killed")
    assert run_campaign("peach-star", spec, seed=42,
                        config=config(killed_dir),
                        stop_after_executions=73) is None
    resumed = resume_campaign(killed_dir)
    assert _campaign_signature(resumed) == _campaign_signature(full)


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_short_campaign_finds_paths_without_harness_faults(target_name):
    """The full loop stays healthy on every stack: generation, wire
    codec, server, sanitizer and coverage measurement."""
    spec = get_target(target_name)
    config = CampaignConfig(budget_hours=24.0, max_executions=120,
                            record_every=20)
    result = run_campaign("peach-star", spec, seed=42, config=config)
    assert result.final_paths >= 1
    assert result.executions > 0
    # crashes, if any, are *typed* faults at seeded sites — never an
    # escape of the harness (which would have raised out of iterate())
    seeded = {site for _kind, site in spec.seeded_bug_sites}
    for report in result.unique_crashes:
        assert report.site in seeded
