"""``peachstar serve``: expose a simulated protocol server on a TCP port.

The labrad device-server idiom — many concurrent sessions multiplexed
over one event loop, one server process — applied to the six protocol
targets.  Each accepted connection is one *session*: it gets a private
:class:`~repro.runtime.target.ProtocolServer` instance and simulated
heap (so sessions are isolated, like per-connection state in a real
daemon), or — in **shared-state** mode — every connection races one
server instance and one heap, which is what makes two interleaved
sessions a genuinely new scenario class.

Two dialects per port:

* ``peachstar`` framing — the length-prefixed harness envelope
  (:mod:`repro.net.framing`): DATA dispatches one fuzzed frame and
  answers response/none/crash/hang; RESET re-arms the session (fresh
  server state + heap), which is how the remote side reproduces the
  in-process ``Target.run`` / ``run_trace`` reset semantics exactly.
* ``raw`` framing — the protocol's own stream framing, what an external
  client (or an external fuzzer) would speak.  A sanitizer fault closes
  the connection, the way a crashed real server drops its clients; a
  hang simply never answers.

The app object is the asyncio plumbing only — dispatch is synchronous
in-process execution, so a loopback client wrapping its event-loop turns
in the instrumentation collector observes coverage identical to the
in-process path.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.net.framing import (
    MSG_ACK, MSG_CRASH, MSG_DATA, MSG_HANG, MSG_NONE, MSG_RESET,
    MSG_RESPONSE, encode_envelope, framer_for, read_envelope,
)
from repro.runtime.instrument import (
    HangBudgetExceeded, capture_crash_context,
)
from repro.sanitizer.errors import MemoryFault
from repro.sanitizer.heap import SimHeap
from repro.sanitizer.report import report_from_fault


class _Session:
    """One session's server + heap (private, or the shared pair)."""

    __slots__ = ("server", "heap")

    def __init__(self, make_server):
        self.server = make_server()
        self.heap = SimHeap()

    def reset(self) -> None:
        self.server.reset()
        self.heap = SimHeap()


class ServeApp:
    """The connection handler behind ``peachstar serve`` and loopback.

    Parameters
    ----------
    spec:
        The :class:`~repro.protocols.TargetSpec` to serve.
    collector:
        Optional instrumentation collector consulted for crash
        call-site context.  The loopback harness passes the *same*
        collector the client wraps executions in, so remote crash
        reports carry the exact call sites the in-process path would;
        a standalone ``peachstar serve`` runs without one.
    shared_state:
        All connections share one server instance and one heap.
    framing:
        ``"peachstar"`` (harness envelope) or ``"raw"`` (the protocol's
        own stream framing, from ``spec.framing``).
    """

    def __init__(self, spec, *, collector=None, shared_state: bool = False,
                 framing: str = "peachstar"):
        self.spec = spec
        self.collector = collector
        self.shared_state = shared_state
        self.framing = framing
        self.connections = 0
        self.executions = 0
        self._shared: Optional[_Session] = \
            _Session(spec.make_server) if shared_state else None

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, session: _Session, frame: bytes
                  ) -> Tuple[bytes, bytes]:
        """Run one frame; (envelope kind, payload) of the outcome."""
        self.executions += 1
        try:
            response = session.server.handle_packet(session.heap, frame)
        except MemoryFault as fault:
            report = report_from_fault(
                fault, frame,
                call_sites=capture_crash_context(self.collector, fault))
            payload = json.dumps({
                "kind": report.kind,
                "site": report.site,
                "detail": report.detail,
                "call_sites": list(report.call_sites),
            }).encode("utf-8")
            return MSG_CRASH, payload
        except HangBudgetExceeded:
            return MSG_HANG, b""
        if response is None:
            return MSG_NONE, b""
        return MSG_RESPONSE, response

    # -- connection handlers ----------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            if self.framing == "raw":
                await self._raw_session(reader, writer)
            else:
                await self._envelope_session(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _session(self) -> _Session:
        if self._shared is not None:
            return self._shared
        return _Session(self.spec.make_server)

    async def _envelope_session(self, reader, writer) -> None:
        session = self._session()
        while True:
            message = await read_envelope(reader)
            if message is None:
                return
            kind, payload = message
            if kind == MSG_RESET:
                session.reset()
                writer.write(encode_envelope(MSG_ACK))
            elif kind == MSG_DATA:
                out_kind, out_payload = self._dispatch(session, payload)
                writer.write(encode_envelope(out_kind, out_payload))
            else:
                return  # protocol violation: drop the session
            await writer.drain()

    async def _raw_session(self, reader, writer) -> None:
        session = self._session()
        framer = framer_for(self.spec.framing)
        while True:
            data = await reader.read(4096)
            if not data:
                return
            for frame in framer.feed(data):
                kind, payload = self._dispatch(session, frame)
                if kind == MSG_CRASH:
                    # a crashed server drops its clients mid-session
                    return
                if kind == MSG_RESPONSE:
                    writer.write(payload)
                    await writer.drain()
                # MSG_NONE / MSG_HANG: a real server just stays silent


async def start_serving(spec, host: str = "127.0.0.1", port: int = 0, *,
                        collector=None, shared_state: bool = False,
                        framing: str = "peachstar"
                        ) -> Tuple[ServeApp, asyncio.AbstractServer]:
    """Bind *spec*'s server on (host, port); port 0 picks an ephemeral one."""
    app = ServeApp(spec, collector=collector, shared_state=shared_state,
                   framing=framing)
    server = await asyncio.start_server(app.handle_connection, host, port)
    return app, server


def bound_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    host, port = server.sockets[0].getsockname()[:2]
    return host, port


def serve_forever(spec, host: str = "127.0.0.1", port: int = 2404, *,
                  shared_state: bool = False,
                  framing: str = "peachstar") -> None:
    """Blocking entry point for ``peachstar serve`` (Ctrl-C to stop)."""

    async def _main() -> None:
        app, server = await start_serving(
            spec, host, port, shared_state=shared_state, framing=framing)
        bind_host, bind_port = bound_address(server)
        mode = "shared-state" if shared_state else "per-connection"
        print(f"serving {spec.name} on tcp://{bind_host}:{bind_port} "
              f"(framing={framing}, sessions={mode})")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("serve stopped")
