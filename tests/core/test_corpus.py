"""Unit tests for the puzzle corpus (GETDONOR semantics)."""

import random

from repro.core import PuzzleCorpus
from repro.model import Number, Str


def _rule(semantic="address", width=2):
    return Number("f", width, semantic=semantic)


class TestDeposit:
    def test_add_new_puzzle(self):
        corpus = PuzzleCorpus()
        assert corpus.add(_rule().signature(), b"\x00\x05")
        assert corpus.puzzle_count() == 1

    def test_duplicate_reinforces_instead_of_adding(self):
        corpus = PuzzleCorpus()
        sig = _rule().signature()
        assert corpus.add(sig, b"\x00\x05")
        assert not corpus.add(sig, b"\x00\x05")
        assert corpus.puzzle_count() == 1
        assert corpus.deposit_count(_rule(), b"\x00\x05") == 2

    def test_rules_keyed_by_signature_not_name(self):
        corpus = PuzzleCorpus()
        a = Number("address", 2, semantic="address")
        b = Number("read_address", 2, semantic="address")
        corpus.add(a.signature(), b"\x00\x09")
        assert corpus.donors(b) == (b"\x00\x09",)

    def test_different_widths_do_not_cross(self):
        corpus = PuzzleCorpus()
        corpus.add(_rule(width=2).signature(), b"\x00\x09")
        assert corpus.donors(_rule(width=4)) == ()

    def test_bounded_with_least_deposited_eviction(self):
        corpus = PuzzleCorpus(max_per_rule=4)
        sig = _rule().signature()
        keeper = b"\x00\x01"
        corpus.add(sig, keeper)
        for _ in range(10):
            corpus.add(sig, keeper)  # heavily reinforced
        for i in range(2, 50):
            corpus.add(sig, i.to_bytes(2, "big"))
        donors = corpus.donors(_rule())
        assert len(donors) == 4
        assert keeper in donors  # the reinforced entry survived

    def test_add_all(self):
        corpus = PuzzleCorpus()
        added = corpus.add_all([(_rule().signature(), b"\x00\x01"),
                                (_rule().signature(), b"\x00\x02"),
                                (_rule().signature(), b"\x00\x01")])
        assert added == 2


class TestSampling:
    def test_sample_returns_distinct_donors(self):
        corpus = PuzzleCorpus(rng=random.Random(1))
        sig = _rule().signature()
        for i in range(20):
            corpus.add(sig, i.to_bytes(2, "big"))
        sample = corpus.sample_donors(_rule(), 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_weighted_toward_frequent(self):
        corpus = PuzzleCorpus(rng=random.Random(2))
        sig = _rule().signature()
        hot = b"\x00\xAA"
        for _ in range(200):
            corpus.add(sig, hot)
        for i in range(30):
            corpus.add(sig, i.to_bytes(2, "big"))
        hits = sum(1 for _ in range(100)
                   if hot in corpus.sample_donors(_rule(), 3))
        assert hits > 80  # overwhelmingly sampled

    def test_sample_small_bucket_returns_all(self):
        corpus = PuzzleCorpus()
        sig = _rule().signature()
        corpus.add(sig, b"\x00\x01")
        corpus.add(sig, b"\x00\x02")
        assert sorted(corpus.sample_donors(_rule(), 10)) == \
            [b"\x00\x01", b"\x00\x02"]

    def test_pick_donor_none_when_empty(self):
        corpus = PuzzleCorpus()
        assert corpus.pick_donor(_rule()) is None

    def test_pick_donor_returns_member(self):
        corpus = PuzzleCorpus(rng=random.Random(3))
        corpus.add(_rule().signature(), b"\x00\x07")
        assert corpus.pick_donor(_rule()) == b"\x00\x07"


class TestIntrospection:
    def test_empty_flags(self):
        corpus = PuzzleCorpus()
        assert corpus.is_empty
        assert len(corpus) == 0
        corpus.add(_rule().signature(), b"\x00\x01")
        assert not corpus.is_empty

    def test_rule_count_counts_signatures(self):
        corpus = PuzzleCorpus()
        corpus.add(_rule("address").signature(), b"\x00\x01")
        corpus.add(_rule("quantity").signature(), b"\x00\x01")
        corpus.add(Str("name", semantic="name").signature(), b"abc")
        assert corpus.rule_count() == 3

    def test_has_donors(self):
        corpus = PuzzleCorpus()
        assert not corpus.has_donors(_rule())
        corpus.add(_rule().signature(), b"\x00\x01")
        assert corpus.has_donors(_rule())


class TestEvictionDeterminism:
    """Least-deposited eviction with RNG tie-breaks must be a pure
    function of (deposit order, RNG seed) — the resume subsystem relies
    on replaying it exactly."""

    @staticmethod
    def _fill(seed, max_per_rule=4, puzzles=12):
        corpus = PuzzleCorpus(rng=random.Random(seed),
                              max_per_rule=max_per_rule)
        sig = _rule().signature()
        for i in range(puzzles):
            corpus.add(sig, i.to_bytes(2, "big"))  # all deposit count 1
        return corpus

    def test_tied_eviction_is_deterministic_under_fixed_rng(self):
        survivors = self._fill(0xDAC2020).donors(_rule())
        assert survivors == self._fill(0xDAC2020).donors(_rule())

    def test_tie_breaks_actually_consume_the_rng(self):
        """Different seeds resolve the all-tied eviction differently."""
        outcomes = {self._fill(seed).donors(_rule()) for seed in range(6)}
        assert len(outcomes) > 1

    def test_reinforced_entry_survives_any_seed(self):
        for seed in range(5):
            corpus = PuzzleCorpus(rng=random.Random(seed), max_per_rule=4)
            sig = _rule().signature()
            keeper = b"\xbe\xef"
            for _ in range(3):
                corpus.add(sig, keeper)
            for i in range(40):
                corpus.add(sig, i.to_bytes(2, "big"))
            assert keeper in corpus.donors(_rule()), seed

    def test_identical_histories_leave_identical_rng_streams(self):
        """After the same adds, the next sampling decisions agree too —
        i.e. eviction consumed exactly the same number of draws."""
        first = self._fill(7, puzzles=20)
        second = self._fill(7, puzzles=20)
        for _ in range(5):
            assert first.sample_donors(_rule(), 3) == \
                second.sample_donors(_rule(), 3)
