"""Peach-style mutators: type-aware random instantiation of rules.

Paper §II: "Mutator generates data in these ways: random generation,
mutation on default value and mutation on existing chunks."  The
:class:`MutatorProvider` below implements exactly those three strategies,
per data type, and plugs into :meth:`DataModel.build` as a
:class:`~repro.model.datamodel.ValueProvider`.

This module is the *inherent* generation strategy shared by the baseline
Peach engine and by Peach* (which falls back to it for chunks that have
no donors, paper Alg. 3 lines 14-15).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.model.datamodel import ValueProvider
from repro.model.fields import Blob, Choice, Field, Number, Repeat, Str


@dataclass
class GenerationPolicy:
    """Tunables of the inherent generation strategy.

    The probabilities describe how a leaf value is chosen; they sum to at
    most 1, the remainder going to plain random generation.
    """

    default_prob: float = 0.35     # mutation on / reuse of default value
    legal_value_prob: float = 0.30  # pick from the field's legal value set
    edge_case_prob: float = 0.15   # boundary values (0, 1, MAX, ...)
    history_prob: float = 0.0      # mutation on existing chunks (opt-in)
    token_fuzz_prob: float = 0.0   # corrupt token fields (off: Peach keeps
    # tokens intact so packets stay well-formed)
    max_string_len: int = 32
    max_blob_len: int = 96
    history_limit: int = 64        # chunks remembered per rule signature


#: (width, signed) -> edge-case list; pure in those two attributes, and
#: rebuilding it per draw was measurable in the batched-pipeline profiles
_EDGE_CASE_CACHE: Dict[tuple, List[int]] = {}


def number_edge_cases(field: Number) -> List[int]:
    """Boundary values for a number field (AFL/Peach "interesting" values)."""
    key = (field.width, field.signed)
    cached = _EDGE_CASE_CACHE.get(key)
    if cached is not None:
        return cached
    bits = field.width * 8
    unsigned_max = (1 << bits) - 1
    cases = [0, 1, unsigned_max, unsigned_max - 1, unsigned_max >> 1,
             (unsigned_max >> 1) + 1]
    for shift in (7, 8, 15, 16, 31):
        if shift < bits:
            cases.extend(((1 << shift) - 1, 1 << shift, (1 << shift) + 1))
    if field.signed:
        cases.extend((-1, -(1 << (bits - 1)), (1 << (bits - 1)) - 1))
    seen = set()
    out = []
    for case in cases:
        if case not in seen:
            seen.add(case)
            out.append(case)
    _EDGE_CASE_CACHE[key] = out
    return out


class MutatorProvider(ValueProvider):
    """Random, type-aware value provider (the GENERATE of paper Alg. 1).

    Parameters
    ----------
    rng:
        Seeded :class:`random.Random`; all decisions flow through it so a
        campaign is reproducible.
    policy:
        Strategy weights, see :class:`GenerationPolicy`.
    """

    def __init__(self, rng: random.Random,
                 policy: Optional[GenerationPolicy] = None):
        self.rng = rng
        self.policy = policy if policy is not None else GenerationPolicy()
        # rule-signature id -> recent concrete values ("existing chunks")
        self._history: Dict[int, List[object]] = {}

    # -- history ("mutation on existing chunks") -----------------------------

    def remember(self, field: Field, value) -> None:
        """Record a generated chunk so later packets may mutate it."""
        if self.policy.history_prob <= 0:
            return
        bucket = self._history.setdefault(field.signature().stable_id(), [])
        bucket.append(value)
        if len(bucket) > self.policy.history_limit:
            del bucket[0]

    def _from_history(self, field: Field):
        bucket = self._history.get(field.signature().stable_id())
        if not bucket:
            return None
        return self.rng.choice(bucket)

    # -- ValueProvider hooks -------------------------------------------------

    def leaf_value(self, field: Field, path: str):
        if field.token:
            if self.policy.token_fuzz_prob > 0 and \
                    self.rng.random() < self.policy.token_fuzz_prob:
                return self._random_value(field)
            return None  # keep the token's default
        value = self._pick_value(field)
        self.remember(field, value)
        return value

    def choose_option(self, choice: Choice, path: str) -> int:
        return self.rng.randrange(len(choice.children()))

    def repeat_count(self, repeat: Repeat, path: str) -> int:
        roll = self.rng.random()
        if roll < 0.30:
            return max(repeat.min_count, 1)
        if roll < 0.45:
            return repeat.min_count
        if roll < 0.55:
            return repeat.max_count
        return self.rng.randint(repeat.min_count, repeat.max_count)

    # -- per-type strategies ---------------------------------------------------

    def _pick_value(self, field: Field):
        policy = self.policy
        roll = self.rng.random()
        threshold = policy.history_prob
        if roll < threshold:
            existing = self._from_history(field)
            if existing is not None:
                return self._mutate_existing(field, existing)
        threshold += policy.default_prob
        if roll < threshold:
            return self._mutate_default(field)
        threshold += policy.legal_value_prob
        if roll < threshold:
            legal = self._legal_value(field)
            if legal is not None:
                return legal
        threshold += policy.edge_case_prob
        if roll < threshold and isinstance(field, Number):
            return self.rng.choice(number_edge_cases(field))
        return self._random_value(field)

    def _legal_value(self, field: Field):
        if isinstance(field, Number):
            if field.values:
                return self.rng.choice(field.values)
            if field.minimum is not None and field.maximum is not None:
                return self.rng.randint(field.minimum, field.maximum)
        return None

    def _mutate_default(self, field: Field):
        default = field.default_value()
        if isinstance(field, Number):
            if self.rng.random() < 0.5:
                return default
            delta = self.rng.choice((-2, -1, 1, 2, 0x10, 0x100))
            return default + delta
        if isinstance(field, Str):
            if not default or self.rng.random() < 0.5:
                return default
            pos = self.rng.randrange(len(default))
            replacement = chr(self.rng.randrange(32, 127))
            return default[:pos] + replacement + default[pos + 1:]
        if isinstance(field, Blob):
            if not default or self.rng.random() < 0.5:
                return default
            data = bytearray(default)
            pos = self.rng.randrange(len(data))
            data[pos] ^= 1 << self.rng.randrange(8)
            return bytes(data)
        return default

    def _mutate_existing(self, field: Field, existing):
        if isinstance(field, Number) and isinstance(existing, int):
            if self.rng.random() < 0.6:
                return existing
            return existing + self.rng.choice((-1, 1))
        return existing

    def _random_value(self, field: Field):
        if isinstance(field, Number):
            bits = field.width * 8
            return self.rng.getrandbits(bits)
        if isinstance(field, Str):
            length = field.length if field.length is not None else \
                self.rng.randrange(self.policy.max_string_len + 1)
            return "".join(chr(self.rng.randrange(32, 127))
                           for _ in range(length))
        if isinstance(field, Blob):
            if field.length is not None:
                length = field.length
            else:
                cap = min(self.policy.max_blob_len, field.max_length)
                length = self.rng.randrange(cap + 1)
            return bytes(self.rng.getrandbits(8) for _ in range(length))
        return field.default_value()
