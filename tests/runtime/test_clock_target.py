"""Unit tests for the simulated clock and the target harness."""

from repro.protocols.iccp import IccpServer, build_read, build_write
from repro.protocols.modbus import ModbusServer, build_read_request
from repro.runtime import Target, TracingCollector
from repro.runtime.clock import CostModel, SimulatedClock


class TestSimulatedClock:
    def test_execution_charges_base_cost(self):
        clock = SimulatedClock(CostModel(exec_cost_ms=1000,
                                         coverage_overhead_ms=100))
        clock.charge_execution(instrumented=False)
        assert clock.now_ms == 1000

    def test_instrumented_execution_pays_overhead(self):
        clock = SimulatedClock(CostModel(exec_cost_ms=1000,
                                         coverage_overhead_ms=100))
        clock.charge_execution(instrumented=True)
        assert clock.now_ms == 1100

    def test_crack_and_semantic_costs(self):
        clock = SimulatedClock(CostModel(crack_cost_ms=10,
                                         semantic_gen_cost_ms=2,
                                         fixup_cost_ms=1))
        clock.charge_crack()
        clock.charge_semantic_generation(seeds=5)
        clock.charge_fixup()
        assert clock.now_ms == 10 + 10 + 1

    def test_hours_property(self):
        clock = SimulatedClock(CostModel(exec_cost_ms=3_600_000))
        clock.charge_execution(instrumented=False)
        assert clock.hours == 1.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge_execution(instrumented=False)
        clock.reset()
        assert clock.now_ms == 0.0


class TestTargetHarness:
    def test_normal_execution_returns_response(self):
        target = Target(ModbusServer,
                        TracingCollector(("repro/protocols",)))
        result = target.run(build_read_request(3, 0, 2))
        assert result.response is not None
        assert not result.crashed
        assert not result.hang
        assert result.coverage is not None

    def test_crash_is_captured_not_raised(self):
        target = Target(IccpServer, TracingCollector(("repro/protocols",)))
        result = target.run(build_read(1, ""))  # ts_name_tail SEGV
        assert result.crashed
        assert result.crash.kind == "SEGV"
        assert result.crash.site == "tase2_ts.c:ts_name_tail"
        assert result.coverage is not None  # coverage kept for triage

    def test_uninstrumented_run_has_no_coverage(self):
        target = Target(ModbusServer, collector=None)
        result = target.run(build_read_request(3, 0, 2))
        assert result.coverage is None
        assert result.response is not None

    def test_fresh_heap_per_execution_makes_crashes_deterministic(self):
        target = Target(IccpServer, TracingCollector(("repro/protocols",)))
        crash_packet = build_write(1, "DV_B", b"A" * 90)
        for _ in range(3):
            result = target.run(crash_packet)
            assert result.crash.site == "iccp_dv.c:dv_write_copy"

    def test_execution_counter(self):
        target = Target(ModbusServer, collector=None)
        for _ in range(5):
            target.run(b"")
        assert target.executions == 5

    def test_model_name_attached_to_crash_report(self):
        target = Target(IccpServer, TracingCollector(("repro/protocols",)))
        result = target.run(build_read(1, ""), model_name="iccp.read")
        assert result.crash.model_name == "iccp.read"
