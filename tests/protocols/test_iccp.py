"""Tests for the libiec_iccp_mod-analog TASE.2 target and its four bugs."""

import pytest

from repro.model import choose_model, generate_packet
from repro.protocols.iccp import (
    IccpServer, build_associate, build_info_report, build_read,
    build_tpkt_cotp, build_write, codec, make_pit,
)
from repro.sanitizer import (
    HeapBufferOverflow, MemoryFault, SimHeap, SimSegv,
)


@pytest.fixture
def server():
    return IccpServer()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


class TestAssociation:
    def test_correct_bilateral_table_accepted(self, server):
        response = _exec(server, build_associate())
        assert response is not None
        assert codec.MMS_INITIATE_RESPONSE in response

    def test_wrong_bilateral_table_rejected(self, server):
        response = _exec(server, build_associate("BLT-99"))
        assert response is not None
        assert not server.associated

    def test_overlong_bilateral_table_rejected(self, server):
        response = _exec(server, build_associate("X" * 40))
        assert response is not None  # error PDU, no crash

    def test_unassociated_confirmed_requests_rejected(self, server):
        _exec(server, build_associate("BLT-99"))
        response = _exec(server, build_read(1, "TSet_1"))
        assert codec.MMS_CONFIRMED_ERROR in response


class TestTransferSets:
    def test_read_transfer_set(self, server):
        response = _exec(server, build_read(1, "TSet_1"))
        assert b"TSet_1" in response

    def test_all_named_sets_readable(self, server):
        for name in codec.TRANSFER_SETS:
            assert b"TSet" in _exec(server, build_read(1, name))

    def test_unknown_object_error(self, server):
        response = _exec(server, build_read(1, "Whatever"))
        assert codec.MMS_CONFIRMED_ERROR in response

    def test_overlong_name_rejected_safely(self, server):
        response = _exec(server, build_read(1, "N" * 33))
        assert codec.MMS_CONFIRMED_ERROR in response


class TestDataValues:
    def test_read_data_value(self, server):
        response = _exec(server, build_read(1, "DV_A"))
        assert b"DV_A" in response

    def test_indexed_read_within_bounds(self, server):
        for index in range(4):
            assert _exec(server, build_read(1, "DV_A", index=index))

    def test_write_then_read_roundtrip(self, server):
        _exec(server, build_write(1, "DV_B", b"\x11\x22\x33\x44"))
        response = _exec(server, build_read(1, "DV_B"))
        assert b"\x11\x22\x33\x44" in response

    def test_write_unknown_name_error(self, server):
        response = _exec(server, build_write(1, "DV_Z", b"\x00"))
        assert codec.MMS_CONFIRMED_ERROR in response

    def test_write_exactly_64_bytes_ok(self, server):
        response = _exec(server, build_write(1, "DV_C", b"\x55" * 64))
        assert codec.MMS_CONFIRMED_ERROR not in response


class TestInformationMessages:
    def test_valid_info_report_silent(self, server):
        assert _exec(server, build_info_report(1, 1, 1, b"alarm")) is None

    def test_in_table_refs_safe(self, server):
        for ref in (0, 15, 31):
            _exec(server, build_info_report(ref, 1, 1, b"x"))

    def test_huge_ref_caught_by_sanity_bound(self, server):
        assert _exec(server, build_info_report(5000, 1, 1, b"x")) is None

    def test_missing_content_ignored(self, server):
        from repro.protocols.common.ber import encode_tlv
        body = encode_tlv(codec.TAG_INFO_REF, (1).to_bytes(2, "big"))
        service = encode_tlv(codec.SVC_INFO_REPORT, body)
        frame = build_tpkt_cotp(encode_tlv(codec.MMS_UNCONFIRMED, service))
        assert _exec(server, frame) is None


class TestSeededBugs:
    def test_im_lookup_segv(self, server):
        """Table I libiec_iccp_mod: SEGV #1 — refs past the 32-entry
        table but under the lax 1024 sanity bound."""
        with pytest.raises(SimSegv) as exc:
            _exec(server, build_info_report(500, 1, 1, b"x"))
        assert exc.value.site == "iccp_im.c:im_lookup"

    def test_im_lookup_boundary(self, server):
        _exec(server, build_info_report(31, 1, 1, b"x"))  # last valid
        with pytest.raises(SimSegv):
            server.reset()
            _exec(server, build_info_report(32, 1, 1, b"x"))  # first bad

    def test_ts_name_tail_segv_on_empty_name(self, server):
        """SEGV #2 — name[len-1] with len == 0."""
        with pytest.raises(SimSegv) as exc:
            _exec(server, build_read(1, ""))
        assert exc.value.site == "tase2_ts.c:ts_name_tail"

    def test_dv_element_segv_on_wild_index(self, server):
        """SEGV #3 — element address computed from the packet index."""
        with pytest.raises(SimSegv) as exc:
            _exec(server, build_read(1, "DV_A", index=2000))
        assert exc.value.site == "iccp_dv.c:dv_element"

    def test_dv_write_copy_overflow(self, server):
        """Heap-buffer-overflow — 64-byte entry, declared-length copy."""
        with pytest.raises(HeapBufferOverflow) as exc:
            _exec(server, build_write(1, "DV_A", b"A" * 80))
        assert exc.value.site == "iccp_dv.c:dv_write_copy"

    def test_exactly_four_seeded_sites_under_fuzzing(self, server, rng):
        pit = make_pit()
        sites = set()
        for _ in range(2000):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            server.reset()
            try:
                _exec(server, wire)
            except MemoryFault as fault:
                sites.add((fault.kind, fault.site))
        allowed = {
            ("SEGV", "iccp_im.c:im_lookup"),
            ("SEGV", "tase2_ts.c:ts_name_tail"),
            ("SEGV", "iccp_dv.c:dv_element"),
            ("heap-buffer-overflow", "iccp_dv.c:dv_write_copy"),
        }
        assert sites <= allowed


class TestPit:
    def test_pit_defaults_valid_and_safe(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            server.reset()
            _exec(server, raw)

    def test_object_name_semantic_shared(self):
        pit = make_pit()
        read_ts = pit.model("iccp.read_transfer_set")
        write_dv = pit.model("iccp.write_data_value")
        name_a = [f for f in read_ts.linear() if f.name == "name_value"][0]
        name_b = [f for f in write_dv.linear() if f.name == "name_value"][0]
        assert name_a.signature() == name_b.signature()
