"""Tests for the honest cost accounting between the two engines.

The paper's comparison charges Peach* for its instrumentation feedback
and crack/splice work; these tests pin that the simulated clock actually
bills those surcharges, so the Fig. 4 time axis is not biased toward
Peach*.
"""

import random

from repro.core import GenerationFuzzer, PeachStar
from repro.protocols import get_target
from repro.runtime import Target, TracingCollector
from repro.runtime.clock import CostModel, SimulatedClock


def _engine(engine_cls, seed=1):
    spec = get_target("libmodbus")
    target = Target(spec.make_server,
                    TracingCollector(("repro/protocols",)))
    clock = SimulatedClock(CostModel(
        exec_cost_ms=1000.0, coverage_overhead_ms=100.0,
        crack_cost_ms=500.0, semantic_gen_cost_ms=10.0, fixup_cost_ms=5.0))
    return engine_cls(spec.make_pit(), target, random.Random(seed),
                      clock=clock)


class TestCostAccounting:
    def test_baseline_pays_base_cost_only(self):
        engine = _engine(GenerationFuzzer)
        for _ in range(10):
            engine.iterate()
        assert engine.clock.now_ms == 10 * 1000.0

    def test_peachstar_pays_coverage_overhead(self):
        engine = _engine(PeachStar)
        engine.iterate()
        # at least base + overhead; crack cost added if seed was valuable
        assert engine.clock.now_ms >= 1000.0 + 100.0

    def test_peachstar_pays_crack_cost_per_valuable_seed(self):
        engine = _engine(PeachStar)
        for _ in range(50):
            engine.iterate()
        execs = engine.stats.executions
        valuable = engine.stats.valuable_seeds
        base = execs * (1000.0 + 100.0)
        assert engine.clock.now_ms >= base + valuable * 500.0

    def test_same_budget_means_fewer_peachstar_executions(self):
        """Under a fixed time budget the instrumented fuzzer runs fewer
        packets — the overhead the paper's speed numbers include."""
        budget_ms = 60_000.0
        counts = {}
        for engine_cls in (GenerationFuzzer, PeachStar):
            engine = _engine(engine_cls)
            while engine.clock.now_ms < budget_ms:
                engine.iterate()
            counts[engine_cls.__name__] = engine.stats.executions
        assert counts["PeachStar"] < counts["GenerationFuzzer"]
