"""Unit tests for the AFL-style coverage map and global virgin map."""

from repro.runtime.coverage import (
    MAP_SIZE, CoverageMap, GlobalCoverage, bucket_count,
)


class TestBucketing:
    def test_zero_maps_to_zero(self):
        assert bucket_count(0) == 0

    def test_afl_bucket_boundaries(self):
        expected = {1: 1, 2: 2, 3: 4, 4: 8, 5: 8, 7: 8, 8: 16, 15: 16,
                    16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 255: 128}
        for count, bit in expected.items():
            assert bucket_count(count) == bit, count

    def test_buckets_are_single_bits(self):
        for count in range(1, 256):
            bit = bucket_count(count)
            assert bit and (bit & (bit - 1)) == 0  # power of two


class TestCoverageMap:
    def test_visit_implements_paper_snippet(self):
        cov = CoverageMap()
        cov.visit(0x1234)
        # first transition: prev=0, so index = cur ^ 0
        assert cov.counts[0x1234 & (MAP_SIZE - 1)] == 1
        cov.visit(0x1234)
        # second: prev = cur >> 1
        index = (0x1234 ^ (0x1234 >> 1)) & (MAP_SIZE - 1)
        assert cov.counts[index] == 1

    def test_edge_direction_matters(self):
        a, b = 0x100, 0x200
        forward = CoverageMap()
        forward.visit(a)
        forward.visit(b)
        backward = CoverageMap()
        backward.visit(b)
        backward.visit(a)
        assert sorted(i for i, _c in forward.iter_hits()) != \
            sorted(i for i, _c in backward.iter_hits())

    def test_counts_saturate_at_255(self):
        cov = CoverageMap()
        for _ in range(300):
            cov._prev = 0
            cov.visit(7)
        assert cov.counts[7] == 255

    def test_reset_clears_everything(self):
        cov = CoverageMap()
        cov.visit(1)
        cov.visit(2)
        cov.fast_reset()
        assert cov.edge_count() == 0
        assert cov._prev == 0

    def test_path_hash_distinguishes_paths(self):
        one = CoverageMap()
        one.visit(1)
        one.visit(2)
        two = CoverageMap()
        two.visit(1)
        two.visit(3)
        assert one.path_hash() != two.path_hash()

    def test_path_hash_stable_for_same_path(self):
        def run():
            cov = CoverageMap()
            for block in (5, 9, 5, 11):
                cov.visit(block)
            return cov.path_hash()

        assert run() == run()


class TestGlobalCoverage:
    def _map_with(self, *blocks):
        cov = CoverageMap()
        for block in blocks:
            cov.visit(block)
        return cov

    def test_first_map_is_always_new(self):
        glob = GlobalCoverage()
        assert glob.merge(self._map_with(1, 2, 3))

    def test_identical_map_not_new(self):
        glob = GlobalCoverage()
        glob.merge(self._map_with(1, 2, 3))
        assert not glob.merge(self._map_with(1, 2, 3))

    def test_new_edge_detected(self):
        glob = GlobalCoverage()
        glob.merge(self._map_with(1, 2))
        assert glob.merge(self._map_with(1, 9))

    def test_new_hit_bucket_on_known_edge_detected(self):
        glob = GlobalCoverage()
        once = CoverageMap()
        once.visit(5)
        glob.merge(once)
        thrice = CoverageMap()
        for _ in range(3):
            thrice._prev = 0
            thrice.visit(5)
        assert glob.merge(thrice)  # count bucket 4 is new

    def test_would_be_new_does_not_mutate(self):
        glob = GlobalCoverage()
        probe = self._map_with(1)
        assert glob.would_be_new(probe)
        assert glob.would_be_new(probe)  # still new: nothing merged
        glob.merge(probe)
        assert not glob.would_be_new(probe)

    def test_edge_count_accumulates_distinct_edges(self):
        glob = GlobalCoverage()
        glob.merge(self._map_with(1, 2))
        first = glob.edge_coverage()
        glob.merge(self._map_with(50, 60))
        assert glob.edge_coverage() > first
