"""The generation loop primitives of paper Alg. 1.

These helpers implement CHOOSE / ANALYZE / GENERATE / JOINT: pick a data
model from the pit, instantiate its chunks via the Peach mutators, and
serialize.  Both fuzzing engines drive their packet production through
:func:`generate_packet`; Peach* additionally routes through the semantic
generator when the puzzle corpus is non-empty.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.model.datamodel import DataModel, Pit, ValueProvider
from repro.model.instree import InsTree
from repro.model.mutators import GenerationPolicy, MutatorProvider


def choose_model(pit: Pit, rng: random.Random) -> DataModel:
    """CHOOSE of paper Alg. 1: weighted random pick of a data model."""
    models = pit.models()
    weights = [model.weight for model in models]
    total = sum(weights)
    if total <= 0:
        return models[rng.randrange(len(models))]
    roll = rng.random() * total
    acc = 0.0
    for model, weight in zip(models, weights):
        acc += weight
        if roll < acc:
            return model
    return models[-1]


def analyze(model: DataModel) -> Sequence:
    """ANALYZE of paper Alg. 1: the chunks the model requires, in order."""
    return model.linear()


def generate_packet(model: DataModel, rng: random.Random,
                    policy: Optional[GenerationPolicy] = None,
                    provider: Optional[ValueProvider] = None,
                    ) -> Tuple[InsTree, bytes]:
    """Instantiate *model* into a packet.

    Returns the InsTree (kept so a valuable seed can be cracked without
    re-parsing) and the wire bytes.  When *provider* is given it overrides
    the mutator-based instantiation — the hook used by semantic-aware
    generation.
    """
    if provider is None:
        provider = MutatorProvider(rng, policy)
    tree = model.build(provider)
    return tree, model.to_wire(tree)
