"""Ablations of the design choices DESIGN.md calls out.

Not a paper artifact — these benches isolate which Peach* component
buys what:

* ``crack-only``     — coverage feedback + cracking, but no semantic
  generation (measures the cost of corpus building alone);
* ``literal-alg3``   — pin_prob=1.0, the paper's literal Algorithm 3
  (every donor-bearing position pinned) versus the default subset pinning;
* ``no-fixup-check`` — sanity: spliced packets must carry valid integrity
  fields, demonstrating the File Fixup module is load-bearing.
"""

from __future__ import annotations

import random

from benchmarks.conftest import BENCH_HOURS, bench_config, print_block
from repro.core import CampaignConfig, PeachStar, run_campaign
from repro.protocols import get_target


def _run(target_name, seed=9, **overrides):
    config = bench_config()
    for key, value in overrides.items():
        setattr(config, key, value)
    return run_campaign("peach-star", get_target(target_name), seed=seed,
                        config=config)


def test_ablation_crack_only(benchmark):
    """Semantic generation disabled: corpus builds but is never used."""
    def run():
        full = _run("libmodbus")
        crack_only = _run("libmodbus", semantic_enabled=False)
        return full, crack_only

    full, crack_only = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Ablation: crack-only vs full Peach* (libmodbus)",
        f"  full peach*      : {full.final_paths} paths, "
        f"{full.stats['semantic_executions']} semantic execs\n"
        f"  crack-only       : {crack_only.final_paths} paths, "
        f"{crack_only.stats['semantic_executions']} semantic execs")
    assert crack_only.stats["semantic_executions"] == 0
    assert full.stats["semantic_executions"] > 0


def test_ablation_literal_algorithm3(benchmark):
    """pin_prob=1.0 (the paper's literal Alg. 3) vs subset pinning."""
    def run():
        subset = _run("opendnp3")
        literal = _run("opendnp3", pin_prob=1.0)
        return subset, literal

    subset, literal = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Ablation: donor pinning policy (opendnp3)",
        f"  subset pinning (default) : {subset.final_paths} paths\n"
        f"  literal Alg. 3 (pin all) : {literal.final_paths} paths")
    assert subset.final_paths > 0 and literal.final_paths > 0


def test_fixup_module_is_load_bearing(benchmark):
    """Every spliced packet must still satisfy its model's integrity
    constraints — without File Fixup, CRC/size-guarded targets would
    reject splices at the framing layer."""
    def run():
        from repro.runtime import Target, TracingCollector
        spec = get_target("opendnp3")
        target = Target(spec.make_server,
                        TracingCollector(("repro/protocols",)))
        engine = PeachStar(spec.make_pit(), target, random.Random(3))
        checked = 0
        for _ in range(400):
            outcome = engine.iterate()
            if outcome.semantic:
                model = engine.pit.model(outcome.model_name)
                assert model.matches(outcome.packet), \
                    "spliced packet failed integrity re-parse"
                checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Ablation: File Fixup integrity check (opendnp3)",
        f"  {checked} spliced packets re-parsed with valid CRCs/lengths")
    assert checked > 0
