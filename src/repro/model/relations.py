"""Relations: computed integrity constraints between fields.

A relation attaches to a *number* field and derives its value from another
field of the same data model — Peach's ``<Relation type="size"/"count">``.
The paper's Fig. 1 example uses ``sizeof`` to make the ``Size`` field carry
the byte length of ``Data``; the File Fixup module (paper §IV-D) re-runs
these relations over spliced packets to re-establish integrity.
"""

from __future__ import annotations

from typing import Optional

from repro.model.fields import Field, ModelError, Number


class Relation:
    """Base class: derives the carrier field's value from a target field.

    ``of`` names the target field (searched by name anywhere in the model
    tree); ``adjust`` is added to the computed value on build and
    subtracted on parse (e.g. a length byte that also covers a trailing
    unit-id would use ``adjust=1``).
    """

    type_name = "relation"

    def __init__(self, of: str, adjust: int = 0):
        if not of:
            raise ModelError("relation target name must be non-empty")
        self.of = of
        self.adjust = adjust

    def compute(self, target_raw: bytes, target_count: Optional[int]) -> int:
        """Return the carrier's value given the target's built bytes/count."""
        raise NotImplementedError

    def target_extent(self, carrier_value: int) -> int:
        """Invert :meth:`compute` during parse: carrier value -> extent."""
        return carrier_value - self.adjust

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} of={self.of!r} adjust={self.adjust}>"


class SizeOf(Relation):
    """Carrier value = byte length of the target field (+ adjust)."""

    type_name = "size"

    def compute(self, target_raw: bytes, target_count: Optional[int]) -> int:
        return len(target_raw) + self.adjust


class CountOf(Relation):
    """Carrier value = element count of the target ``Repeat`` (+ adjust)."""

    type_name = "count"

    def compute(self, target_raw: bytes, target_count: Optional[int]) -> int:
        if target_count is None:
            raise ModelError(f"CountOf target {self.of!r} is not a Repeat")
        return target_count + self.adjust


def attach_relation(field: Field, relation: Relation) -> Field:
    """Attach *relation* to a number field and return the field (fluent)."""
    if not isinstance(field, Number):
        raise ModelError(f"relations attach to Number fields, not {field!r}")
    if field.fixup is not None:
        raise ModelError(f"{field.name!r} cannot carry both relation and fixup")
    field.relation = relation
    return field


def size_of(field: Number, of: str, adjust: int = 0) -> Number:
    """Convenience: mark *field* as carrying ``sizeof(of) + adjust``."""
    return attach_relation(field, SizeOf(of, adjust))


def count_of(field: Number, of: str, adjust: int = 0) -> Number:
    """Convenience: mark *field* as carrying ``countof(of) + adjust``."""
    return attach_relation(field, CountOf(of, adjust))
