"""Adversarial transport faults and differential parse oracles.

``repro.channel`` owns the seam between the engine and the simulated
server (:mod:`repro.channel.faults`) and the finding class that seam
makes observable (:mod:`repro.channel.oracle`).
"""

from repro.channel.faults import (
    FAULT_KINDS,
    Channel,
    DirectChannel,
    FaultingChannel,
)
from repro.channel.oracle import (
    DifferentialOracle,
    DivergenceChecker,
    DivergenceReport,
    make_oracle,
    minimize_divergence,
)

__all__ = [
    "FAULT_KINDS",
    "Channel",
    "DirectChannel",
    "FaultingChannel",
    "DifferentialOracle",
    "DivergenceChecker",
    "DivergenceReport",
    "make_oracle",
    "minimize_divergence",
]
