"""CampaignWorkspace: everything a campaign needs to survive its process.

Layout of a workspace directory::

    <root>/
      config.json     campaign manifest: engine, target, seed, config
                      (including the live-network NetConfig, when set —
                      a killed socket campaign resumes with the exact
                      transport scenario it started with: url, framing,
                      timeout/reconnect axes, concurrency degree)
      state.json      atomic checkpoint (RNG/clock/corpus/stats snapshot)
      corpus/         one <exec>.bin + <exec>.json per valuable seed
      crashes/        one <slug>.bin + <slug>.json per unique crash
      divergences/    one <slug>.bin + <slug>.json per unique
                      differential-oracle finding (faulted campaigns)
      coverage.jsonl  sparse coverage journal, one line per valuable seed
      series.jsonl    paths-over-time samples (the Fig. 4 series)
      result.json     final summary, written when the campaign completes
      repro/          triage output (minimized reproducers), if any

``state.json`` is the recovery point: it is rewritten atomically (tmp +
rename) every ``checkpoint_every`` executions and captures *all* mutable
engine state — main and corpus RNG states, the simulated clock, engine
stats, the puzzle-corpus store (order-preserving: donor sampling and
eviction tie-breaks are order-sensitive), cracker counters and the
pending semantic queue.  The append-only files (corpus, crashes,
coverage/series journals) may run ahead of the last checkpoint when the
process is killed; :meth:`CampaignWorkspace.restore` prunes them back to
the checkpoint and the resumed campaign deterministically regenerates
the pruned tail, which is why a killed-and-resumed campaign finishes
bit-identical to an uninterrupted one.

This module deliberately imports nothing from :mod:`repro.core` at
module level (the campaign driver imports it); engine classes are only
touched through attributes and late imports.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.model.datamodel import ValueProvider
from repro.model.fields import Choice, Repeat
from repro.model.instree import InsNode
from repro.runtime.coverage import BUCKET_LUT
from repro.sanitizer.report import CrashReport
from repro.util import fs_slug

#: bump when the on-disk layout changes incompatibly
STATE_FORMAT = 1


class WorkspaceError(RuntimeError):
    """Raised for missing, corrupt or conflicting workspace state."""


def _atomic_write(path: str, payload: str) -> None:
    """Durably replace *path* with *payload*.

    The rename alone is not enough: without flushing and fsyncing the
    tmp file first, a power loss after ``os.replace`` can leave an empty
    or torn file under the final name — the data may still be in page
    cache when the rename hits the journal.  The directory fsync then
    persists the rename itself.
    """
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _rng_state_to_json(state) -> list:
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(blob) -> tuple:
    version, internal, gauss = blob
    return (version, tuple(internal), gauss)


# -- InsTree (de)serialization for the pending semantic queue ---------------
#
# Pending entries are always *built* trees (semantic-generation output),
# so they are exactly reproducible from the build decisions: leaf values
# plus Choice/Repeat shapes, replayed through ``DataModel.build``.  This
# keeps state.json pure JSON — no pickle, so resuming a workspace from an
# untrusted source cannot execute code.

def _value_to_json(value):
    if isinstance(value, bytes):
        return {"b": value.hex()}
    return value


def _value_from_json(blob):
    if isinstance(blob, dict):
        return bytes.fromhex(blob["b"])
    return blob


def _tree_decisions(node: InsNode, prefix: str, leaves: dict,
                    choices: dict, repeats: dict) -> None:
    """Record build decisions, mirroring ``DataModel._build_node`` paths."""
    path = f"{prefix}.{node.name}" if prefix else node.name
    field = node.field
    if node.is_leaf:
        leaves[path] = _value_to_json(node.value)
    elif isinstance(field, Choice):
        chosen = node.children[0].field
        for index, option in enumerate(field.children()):
            if option is chosen:
                choices[path] = index
                break
        _tree_decisions(node.children[0], path, leaves, choices, repeats)
    elif isinstance(field, Repeat):
        repeats[path] = len(node.children)
        for index, child in enumerate(node.children):
            _tree_decisions(child, f"{path}[{index}]", leaves, choices,
                            repeats)
    else:
        for child in node.children:
            _tree_decisions(child, path, leaves, choices, repeats)


class _DecisionProvider(ValueProvider):
    """Replays recorded build decisions through ``DataModel.build``."""

    def __init__(self, blob: dict):
        self._leaves = blob["leaves"]
        self._choices = blob["choices"]
        self._repeats = blob["repeats"]

    def leaf_value(self, field, path):
        value = self._leaves.get(path)
        return _value_from_json(value) if value is not None else None

    def choose_option(self, choice, path):
        return self._choices.get(path, 0)

    def repeat_count(self, repeat, path):
        count = self._repeats.get(path)
        return count if count is not None else max(repeat.min_count, 1)


def _pending_to_json(pending) -> list:
    entries = []
    for tree, packet, model_name in pending:
        leaves: dict = {}
        choices: dict = {}
        repeats: dict = {}
        _tree_decisions(tree.root, "", leaves, choices, repeats)
        entries.append({
            "model": model_name,
            "packet": packet.hex(),
            "leaves": leaves,
            "choices": choices,
            "repeats": repeats,
        })
    return entries


def _pending_from_json(entries: list, pit) -> list:
    pending = []
    for blob in entries:
        model = pit.model(blob["model"])
        tree = model.build(_DecisionProvider(blob))
        packet = model.to_wire(tree)
        if packet != bytes.fromhex(blob["packet"]):
            raise WorkspaceError(
                f"pending packet for model {blob['model']!r} did not "
                "rebuild bit-identically; workspace is corrupt or from "
                "an incompatible version")
        pending.append((tree, packet, blob["model"]))
    return pending


def _report_from_meta(meta: dict, packet: bytes) -> CrashReport:
    """Rebuild a persisted finding (crash or divergence, session
    context included)."""
    trace = meta.get("trace")
    oracle = meta.get("oracle")
    if oracle is not None:
        from repro.channel.oracle import DivergenceReport  # late: layering
        return DivergenceReport(
            kind=meta["kind"], site=meta["site"], detail=meta["detail"],
            packet=packet, model_name=meta["model_name"],
            execution_index=meta["execution_index"],
            oracle=oracle,
        )
    return CrashReport(
        kind=meta["kind"], site=meta["site"], detail=meta["detail"],
        packet=packet, model_name=meta["model_name"],
        execution_index=meta["execution_index"],
        call_sites=tuple(meta["call_sites"]),
        trace=bytes.fromhex(trace) if trace is not None else None,
        crash_step=meta.get("crash_step"),
    )


class CampaignWorkspace:
    """On-disk store for one campaign (create fresh, or attach to resume)."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.corpus_dir = os.path.join(self.root, "corpus")
        self.crashes_dir = os.path.join(self.root, "crashes")
        self.divergences_dir = os.path.join(self.root, "divergences")
        self.repro_dir = os.path.join(self.root, "repro")
        self.inbox_dir = os.path.join(self.root, "inbox")
        self._config_path = os.path.join(self.root, "config.json")
        self._state_path = os.path.join(self.root, "state.json")
        self._coverage_path = os.path.join(self.root, "coverage.jsonl")
        self._series_path = os.path.join(self.root, "series.jsonl")
        self._result_path = os.path.join(self.root, "result.json")
        #: fleet corpus-sync high-water mark: how many sync rounds this
        #: campaign has *applied*.  Persisted with every checkpoint so a
        #: kill between import application and the post-import checkpoint
        #: replays the round instead of double-importing (restore prunes
        #: the orphaned import records).  Always 0 outside a fleet.
        self.synced_rounds = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def has_state(self) -> bool:
        return os.path.exists(self._state_path)

    def initialize(self, engine_name: str, target_name: str, seed: int,
                   config_dict: dict) -> None:
        """Create a fresh workspace; refuses to clobber an existing one."""
        if self.has_state:
            raise WorkspaceError(
                f"workspace {self.root} already holds campaign state; "
                "use `peachstar resume` (or a fresh directory) instead")
        os.makedirs(self.corpus_dir, exist_ok=True)
        os.makedirs(self.crashes_dir, exist_ok=True)
        manifest = {
            "format": STATE_FORMAT,
            "engine": engine_name,
            "target": target_name,
            "seed": seed,
            "config": config_dict,
        }
        _atomic_write(self._config_path,
                      json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    def load_manifest(self) -> dict:
        if not os.path.exists(self._config_path):
            raise WorkspaceError(f"{self.root} is not a campaign workspace "
                                 "(no config.json)")
        with open(self._config_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != STATE_FORMAT:
            raise WorkspaceError(
                f"workspace format {manifest.get('format')!r} is not "
                f"supported (expected {STATE_FORMAT})")
        return manifest

    # ------------------------------------------------------------------
    # incremental records (append-only; may run ahead of the checkpoint)
    # ------------------------------------------------------------------

    def record_sample(self, execution: int, hours: float,
                      paths: int) -> None:
        with open(self._series_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"exec": execution, "hours": hours,
                                     "paths": paths}) + "\n")

    def record_seed(self, seed, coverage_map) -> None:
        """Persist one valuable seed plus its coverage-journal line."""
        stem = os.path.join(self.corpus_dir,
                            f"{seed.execution_index:07d}")
        with open(stem + ".bin", "wb") as handle:
            handle.write(seed.packet)
        meta = {
            "execution_index": seed.execution_index,
            "model_name": seed.model_name,
            "sim_time_ms": seed.sim_time_ms,
            "edges_touched": seed.edges_touched,
            "path_hash": seed.path_hash,
        }
        _atomic_write(stem + ".json",
                      json.dumps(meta, indent=2, sort_keys=True) + "\n")
        bucketed = [[index, BUCKET_LUT[count]]
                    for index, count in coverage_map.iter_hits()]
        with open(self._coverage_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "exec": seed.execution_index,
                "path_hash": seed.path_hash,
                "map": bucketed,
            }) + "\n")

    def record_import(self, seed, bucketed_map: List[List[int]],
                      sync_round: int, src_shard: int,
                      src_exec: int) -> None:
        """Persist one fleet-sync import exactly like a local discovery.

        The stem sorts *after* a local seed of the same execution index
        (``.`` < ``_``), matching the in-memory order: a seed discovered
        at the round boundary precedes the imports applied there.
        """
        stem = os.path.join(
            self.corpus_dir,
            f"{seed.execution_index:07d}_sync_r{sync_round:03d}"
            f"_s{src_shard:03d}_{src_exec:07d}")
        with open(stem + ".bin", "wb") as handle:
            handle.write(seed.packet)
        meta = {
            "execution_index": seed.execution_index,
            "model_name": seed.model_name,
            "sim_time_ms": seed.sim_time_ms,
            "edges_touched": seed.edges_touched,
            "path_hash": seed.path_hash,
            "sync_round": sync_round,
            "src_shard": src_shard,
            "src_exec": src_exec,
        }
        _atomic_write(stem + ".json",
                      json.dumps(meta, indent=2, sort_keys=True) + "\n")
        with open(self._coverage_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "exec": seed.execution_index,
                "path_hash": seed.path_hash,
                "map": [list(pair) for pair in bucketed_map],
                "sync_round": sync_round,
            }) + "\n")

    # ------------------------------------------------------------------
    # fleet sync inbox (written by the fleet driver, consumed on resume)
    # ------------------------------------------------------------------

    def inbox_round_dir(self, sync_round: int) -> str:
        return os.path.join(self.inbox_dir, f"round_{sync_round:03d}")

    def write_inbox_entry(self, sync_round: int, src_shard: int,
                          src_exec: int, packet: bytes,
                          meta: dict) -> None:
        """Stage one selected cross-shard seed for the next round.

        Rewriting an entry is idempotent — a sync phase interrupted and
        redone produces byte-identical files.
        """
        directory = self.inbox_round_dir(sync_round)
        os.makedirs(directory, exist_ok=True)
        stem = os.path.join(directory,
                            f"s{src_shard:03d}_{src_exec:07d}")
        with open(stem + ".bin", "wb") as handle:
            handle.write(packet)
        _atomic_write(stem + ".json",
                      json.dumps(meta, indent=2, sort_keys=True) + "\n")

    def load_inbox_rounds(self, after: int,
                          through: int) -> List[Tuple[int, List[dict]]]:
        """Staged sync rounds in ``(after, through]``, entries in the
        deterministic application order (source shard, source exec)."""
        rounds: List[Tuple[int, List[dict]]] = []
        for sync_round in range(after + 1, through + 1):
            directory = self.inbox_round_dir(sync_round)
            if not os.path.isdir(directory):
                continue
            entries = []
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                with open(path, encoding="utf-8") as handle:
                    meta = json.load(handle)
                meta["_bin"] = path[:-len(".json")] + ".bin"
                entries.append(meta)
            if entries:
                rounds.append((sync_round, entries))
        return rounds

    def crash_stem(self, report: CrashReport) -> str:
        name = fs_slug(f"{report.kind}_{report.site}")
        return os.path.join(self.crashes_dir, name)

    def record_crash(self, report: CrashReport, hours: float) -> None:
        """Persist one *new unique* crash input plus its metadata."""
        stem = self.crash_stem(report)
        with open(stem + ".bin", "wb") as handle:
            handle.write(report.packet)
        meta = {
            "kind": report.kind,
            "site": report.site,
            "detail": report.detail,
            "model_name": report.model_name,
            "execution_index": report.execution_index,
            "hours": hours,
            "call_sites": list(report.call_sites),
        }
        if report.trace is not None:
            # session crash: the provoking step is in .bin; the full
            # trace needed to reproduce it rides along in the metadata
            meta["trace"] = report.trace.hex()
            meta["crash_step"] = report.crash_step
        _atomic_write(stem + ".json",
                      json.dumps(meta, indent=2, sort_keys=True) + "\n")

    def record_divergence(self, report, hours: float) -> None:
        """Persist one *new unique* differential-oracle finding.

        Same .bin/.json pair as crashes, in ``divergences/`` — the
        ``oracle`` meta key is what routes the report back to
        :class:`~repro.channel.oracle.DivergenceReport` on load.
        """
        os.makedirs(self.divergences_dir, exist_ok=True)
        name = fs_slug(f"{report.kind}_{report.site}")
        stem = os.path.join(self.divergences_dir, name)
        # one trace can surface several findings at the same execution
        # index, so the index alone cannot reconstruct discovery order
        # on restore; an explicit sequence number does
        seq = sum(1 for entry in os.listdir(self.divergences_dir)
                  if entry.endswith(".json"))
        with open(stem + ".bin", "wb") as handle:
            handle.write(report.packet)
        meta = {
            "kind": report.kind,
            "site": report.site,
            "detail": report.detail,
            "model_name": report.model_name,
            "execution_index": report.execution_index,
            "seq": seq,
            "hours": hours,
            "oracle": report.oracle,
        }
        _atomic_write(stem + ".json",
                      json.dumps(meta, indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, engine) -> None:
        """Atomically snapshot every piece of mutable engine state."""
        state = {
            "format": STATE_FORMAT,
            "synced_rounds": self.synced_rounds,
            "executions": engine.stats.executions,
            "target_executions": engine.target.executions,
            "clock_ms": engine.clock.now_ms,
            "rng_state": _rng_state_to_json(engine.rng.getstate()),
            "stats": engine.stats.as_dict(),
            "edges_seen": engine.seed_pool.coverage.edges_seen,
        }
        corpus = getattr(engine, "corpus", None)
        if corpus is not None:
            state["puzzle_corpus"] = {
                "rng_state": _rng_state_to_json(corpus.rng.getstate()),
                "max_per_rule": corpus.max_per_rule,
                "total_added": corpus.total_added,
                "total_reinforced": corpus.total_reinforced,
                # order matters twice over: donor sampling walks buckets
                # in insertion order and eviction ties consume RNG per
                # entry visited, so the snapshot is a list, not a map
                "store": [[signature, [[puzzle.hex(), count]
                                       for puzzle, count in bucket.items()]]
                          for signature, bucket in corpus._store.items()],
            }
            state["cracker"] = {
                "seeds_cracked": engine.cracker.seeds_cracked,
                "models_matched": engine.cracker.models_matched,
                "puzzles_deposited": engine.cracker.puzzles_deposited,
            }
            state["pending"] = _pending_to_json(engine._pending)
        state_model = getattr(engine, "state_model", None)
        if state_model is not None and hasattr(state_model, "snapshot"):
            # learned-state campaigns: the automaton is mutable engine
            # state (walks depend on it), so it checkpoints with the RNG
            state["learner"] = state_model.snapshot()
        channel = getattr(engine.target, "channel", None)
        if channel is not None:
            # faulted campaigns: the channel RNG draws per frame, so its
            # state must rewind with the engine RNG (stateless channels
            # snapshot to None and are skipped)
            snap = channel.snapshot()
            if snap is not None:
                state["channel"] = snap
        _atomic_write(self._state_path,
                      json.dumps(state, sort_keys=True) + "\n")

    def load_state(self) -> dict:
        if not self.has_state:
            raise WorkspaceError(f"{self.root} has no state.json to "
                                 "resume from")
        with open(self._state_path, encoding="utf-8") as handle:
            state = json.load(handle)
        if state.get("format") != STATE_FORMAT:
            raise WorkspaceError(
                f"state format {state.get('format')!r} is not supported "
                f"(expected {STATE_FORMAT})")
        return state

    def finalize(self, result_dict: dict) -> None:
        _atomic_write(self._result_path,
                      json.dumps(result_dict, indent=2, sort_keys=True)
                      + "\n")

    def load_result(self) -> Optional[dict]:
        if not os.path.exists(self._result_path):
            return None
        with open(self._result_path, encoding="utf-8") as handle:
            return json.load(handle)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore(self, engine) -> Tuple[List[Tuple[float, int]],
                                       Dict[tuple, float]]:
        """Rewind *engine* to the last checkpoint; returns (series,
        crash_times).

        Append-only records past the checkpoint are pruned — the resumed
        loop re-executes that window and regenerates them identically.
        """
        from repro.core.seedpool import ValuableSeed  # late: avoid cycle

        state = self.load_state()
        exec_limit = state["executions"]
        self.synced_rounds = state.get("synced_rounds", 0)

        engine.rng.setstate(_rng_state_from_json(state["rng_state"]))
        engine.clock.now_ms = state["clock_ms"]
        engine.target.executions = state["target_executions"]
        for name, value in state["stats"].items():
            setattr(engine.stats, name, value)

        # -- valuable seeds + global coverage --------------------------------
        pool = engine.seed_pool
        for meta in self._load_corpus_entries(exec_limit, prune=True,
                                              sync_limit=self.synced_rounds):
            with open(meta["_bin"], "rb") as handle:
                packet = handle.read()
            pool.seeds.append(ValuableSeed(
                packet=packet,
                model_name=meta["model_name"],
                tree=None,  # only consumed at crack time, already done
                execution_index=meta["execution_index"],
                sim_time_ms=meta["sim_time_ms"],
                edges_touched=meta["edges_touched"],
                path_hash=meta["path_hash"],
            ))
        virgin = pool.coverage.virgin
        for line in self._prune_jsonl(self._coverage_path, exec_limit,
                                      sync_limit=self.synced_rounds):
            for index, bucket in line["map"]:
                virgin[index] |= bucket
        pool.coverage.edges_seen = state["edges_seen"]

        # -- crash database ---------------------------------------------------
        crash_times: Dict[tuple, float] = {}
        for meta in self._load_crash_entries(exec_limit, prune=True):
            with open(meta["_bin"], "rb") as handle:
                packet = handle.read()
            report = _report_from_meta(meta, packet)
            engine.crashes.add(report, meta["hours"])
            crash_times[report.dedup_key] = meta["hours"]
        engine.crashes.total_crashes = state["stats"]["crashes_total"]

        # -- divergence database ----------------------------------------------
        for meta in self._load_divergence_entries(exec_limit, prune=True):
            with open(meta["_bin"], "rb") as handle:
                packet = handle.read()
            engine.divergences.add(_report_from_meta(meta, packet),
                                   meta["hours"])
        engine.divergences.total_crashes = \
            state["stats"].get("divergences_total", 0)

        # -- channel RNG -------------------------------------------------------
        if "channel" in state:
            channel = getattr(engine.target, "channel", None)
            if channel is None or not hasattr(channel, "restore"):
                raise WorkspaceError(
                    "workspace checkpoints a faulting channel but the "
                    "rebuilt engine has none; workspace is corrupt or "
                    "from an incompatible version")
            channel.restore(state["channel"])

        # -- Peach*-only state -------------------------------------------------
        corpus = getattr(engine, "corpus", None)
        if corpus is not None and "puzzle_corpus" in state:
            snap = state["puzzle_corpus"]
            corpus.rng.setstate(_rng_state_from_json(snap["rng_state"]))
            corpus.max_per_rule = snap["max_per_rule"]
            corpus.total_added = snap["total_added"]
            corpus.total_reinforced = snap["total_reinforced"]
            corpus._store = {
                signature: {bytes.fromhex(puzzle): count
                            for puzzle, count in bucket}
                for signature, bucket in snap["store"]
            }
            engine.cracker.seeds_cracked = state["cracker"]["seeds_cracked"]
            engine.cracker.models_matched = state["cracker"]["models_matched"]
            engine.cracker.puzzles_deposited = \
                state["cracker"]["puzzles_deposited"]
            engine.stats.puzzles = corpus.puzzle_count()
            engine._pending.clear()
            engine._pending.extend(
                _pending_from_json(state["pending"], engine.pit))

        # -- learned-state automaton ------------------------------------------
        if "learner" in state:
            state_model = getattr(engine, "state_model", None)
            if state_model is None or not hasattr(state_model, "restore"):
                raise WorkspaceError(
                    "workspace checkpoints a learned state automaton but "
                    "the rebuilt engine is not a learning session fuzzer; "
                    "workspace is corrupt or from an incompatible version")
            state_model.restore(state["learner"])

        series = [(line["hours"], line["paths"])
                  for line in self._prune_jsonl(self._series_path,
                                                exec_limit)]
        return series, crash_times

    # ------------------------------------------------------------------
    # readers (used by restore, triage and the analysis layer)
    # ------------------------------------------------------------------

    @staticmethod
    def _load_entries(directory: str, exec_limit: Optional[int] = None,
                      prune: bool = False,
                      sync_limit: Optional[int] = None) -> List[dict]:
        """Metadata (+ ``_bin`` path) of every ``.json``/``.bin`` pair in
        *directory*, sorted by execution index (name-order on ties, so a
        boundary seed precedes the imports applied at the same index);
        entries past *exec_limit* — or from a sync round past
        *sync_limit* — are skipped (and deleted when *prune* — the
        resumed loop regenerates them)."""
        entries = []
        if not os.path.isdir(directory):
            return entries
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(directory, name)
            with open(path, encoding="utf-8") as handle:
                meta = json.load(handle)
            meta["_bin"] = path[:-len(".json")] + ".bin"
            stale = (exec_limit is not None
                     and meta["execution_index"] > exec_limit) or \
                    (sync_limit is not None
                     and meta.get("sync_round", 0) > sync_limit)
            if stale:
                if prune:
                    os.unlink(path)
                    if os.path.exists(meta["_bin"]):
                        os.unlink(meta["_bin"])
                continue
            entries.append(meta)
        # "seq" (divergence entries) breaks intra-execution ties in
        # discovery order; elsewhere it is absent and name order rules
        entries.sort(key=lambda meta: (meta["execution_index"],
                                       meta.get("seq", 0)))
        return entries

    def _load_corpus_entries(self, exec_limit: Optional[int] = None,
                             prune: bool = False,
                             sync_limit: Optional[int] = None) -> List[dict]:
        return self._load_entries(self.corpus_dir, exec_limit, prune,
                                  sync_limit)

    def _load_crash_entries(self, exec_limit: Optional[int] = None,
                            prune: bool = False) -> List[dict]:
        return self._load_entries(self.crashes_dir, exec_limit, prune)

    def _load_divergence_entries(self, exec_limit: Optional[int] = None,
                                 prune: bool = False) -> List[dict]:
        return self._load_entries(self.divergences_dir, exec_limit, prune)

    def _prune_jsonl(self, path: str, exec_limit: int,
                     sync_limit: Optional[int] = None) -> List[dict]:
        """Load a journal, drop entries past the checkpoint, rewrite.

        A record that does not decode is dropped too: a SIGKILL landing
        mid-append leaves a torn final line, which by construction is
        past the last checkpoint — the resumed loop regenerates it.
        """
        if not os.path.exists(path):
            return []
        kept: List[dict] = []
        dropped = False
        with open(path, encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError:
                    dropped = True
                    continue
                if line["exec"] > exec_limit or \
                        (sync_limit is not None
                         and line.get("sync_round", 0) > sync_limit):
                    dropped = True
                    continue
                kept.append(line)
        if dropped:
            _atomic_write(path,
                          "".join(json.dumps(line) + "\n" for line in kept))
        return kept

    def load_crash_reports(self) -> List[CrashReport]:
        """All persisted unique crashes, in discovery order (for triage)."""
        reports = []
        for meta in self._load_crash_entries():
            with open(meta["_bin"], "rb") as handle:
                packet = handle.read()
            reports.append(_report_from_meta(meta, packet))
        return reports

    def load_divergence_reports(self) -> List[CrashReport]:
        """All persisted unique divergences, in discovery order."""
        reports = []
        for meta in self._load_divergence_entries():
            with open(meta["_bin"], "rb") as handle:
                packet = handle.read()
            reports.append(_report_from_meta(meta, packet))
        return reports

    def crash_times(self) -> Dict[tuple, float]:
        return {(meta["kind"], meta["site"]): meta["hours"]
                for meta in self._load_crash_entries()}

    def corpus_path_hashes(self) -> List[int]:
        """path_hash of every persisted valuable seed, discovery order."""
        return [meta["path_hash"] for meta in self._load_corpus_entries()]

    def corpus_packets(self) -> List[bytes]:
        packets = []
        for meta in self._load_corpus_entries():
            with open(meta["_bin"], "rb") as handle:
                packets.append(handle.read())
        return packets
