"""Instrumentation collectors: how basic-block ids reach the coverage map.

The paper compiles targets with ``Peach*-clang`` (an LLVM pass inserting
the edge-count snippet at branch points).  Our targets are Python, so
three collectors are provided:

* :class:`TracingCollector` — zero-modification instrumentation via
  ``sys.settrace``: every executed line of the target's modules becomes a
  basic block whose id is a stable hash of ``(filename, lineno)``.  This
  matches the LLVM pass's granularity closely (one block per branch arm).
* :class:`MonitoringCollector` — the same line granularity via
  ``sys.monitoring`` (PEP 669, CPython 3.12+), which dispatches from the
  interpreter loop without per-frame trace-function plumbing and lets us
  permanently DISABLE out-of-scope code locations instead of re-filtering
  them on every event.
* :class:`ExplicitCollector` — targets call :meth:`ExplicitCollector.hit`
  with a label at interesting points; useful for speed-critical loops and
  for unit-testing the coverage plumbing.

:func:`make_line_collector` picks the fastest available line backend
(``sys.monitoring`` when the interpreter has it, else ``sys.settrace``);
``REPRO_COVERAGE_BACKEND=settrace|monitoring`` forces a choice.

The module also provides :func:`capture_crash_context`: the in-scope
call-site sequence at fault time, used by the triage subsystem to
bucket crashes (a cheap stand-in for an ASan stack hash).  For line
collectors it is derived from the fault's traceback — the actual stack
at the raise, so a crash inside already-visited code gets *its own*
context, not the stale first-touch journal tail — at zero cost on the
hot path; collectors without a scope filter fall back to the journal
tail.

Collectors separate the per-execution map reset
(:meth:`Collector.begin_execution`) from arming the instrumentation
(:meth:`Collector.open_window`/:meth:`Collector.close_window`), so a
harness can rebind ``Collector.map`` (the batched pipeline rotates a
map pool through one collector) or re-arm without paying the other
half.  ``begin()``/``end()`` compose both, preserving the one-execution
context-manager contract.

Both line collectors key their block-id cache by *code object* and then
by line number, so the hot callback does two dict probes on interned
objects instead of allocating a ``(filename, lineno)`` tuple per traced
line.  All feed the same :class:`~repro.runtime.coverage.CoverageMap`
and count executed blocks so the harness can flag hangs (runaway loops).
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, Optional, Tuple

from repro.runtime.coverage import CoverageMap
from repro.util import fnv1a32

_MONITORING = getattr(sys, "monitoring", None)


def monitoring_available() -> bool:
    """True when the interpreter offers ``sys.monitoring`` (PEP 669)."""
    return _MONITORING is not None


def _monitoring_usable() -> bool:
    """True when the coverage tool id is free (or already ours).

    ``coverage.py`` under ``COVERAGE_CORE=sysmon``, debuggers and
    profilers can hold the id; ``auto`` then quietly picks settrace
    instead of blowing up on the first execution.
    """
    if _MONITORING is None:
        return False
    holder = _MONITORING.get_tool(_MONITORING.COVERAGE_ID)
    return holder is None or holder == "repro-coverage"


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a backend request to ``"monitoring"`` or ``"settrace"``.

    ``"auto"`` consults ``REPRO_COVERAGE_BACKEND`` and then prefers
    ``sys.monitoring`` when available, falling back to ``sys.settrace``
    on older interpreters.
    """
    choice = backend or "auto"
    if choice == "auto":
        choice = os.environ.get("REPRO_COVERAGE_BACKEND", "auto") or "auto"
    if choice == "auto":
        return "monitoring" if _monitoring_usable() else "settrace"
    if choice not in ("monitoring", "settrace"):
        raise ValueError(
            f"unknown coverage backend {choice!r}; "
            "choices: auto, monitoring, settrace")
    return choice


class HangBudgetExceeded(Exception):
    """Raised inside a traced execution that exceeded its block budget."""


#: how many trailing journal entries identify a crash context
CRASH_CONTEXT_DEPTH = 16


def capture_crash_context(collector: Optional["Collector"],
                          fault: Optional[BaseException] = None,
                          depth: int = CRASH_CONTEXT_DEPTH
                          ) -> Tuple[int, ...]:
    """The call-site sequence that led into the current fault.

    With *fault* and a scoped line collector, walks the exception's
    traceback and returns the block ids (the same stable
    ``filename:lineno`` hashes the collectors record) of the in-scope
    frames, outermost first — the actual call path into the fault.  The
    old journal-tail heuristic returned the edges *first reached* before
    the crash, so a crash inside already-visited code inherited a stale
    context from much earlier in the execution and bucketed wrongly.

    Without a traceback (hangs, explicit collectors, the dense reference
    map) the journal tail remains the fallback.  Valid only between the
    faulting execution and the next ``begin()``; the harness captures it
    while handling the fault.
    """
    if collector is None:
        return ()
    matches = getattr(collector, "_file_matches", None)
    if fault is not None and matches is not None:
        sites = []
        tb = fault.__traceback__
        while tb is not None:
            filename = tb.tb_frame.f_code.co_filename
            if matches(filename):
                sites.append(fnv1a32(f"{filename}:{tb.tb_lineno}"))
            tb = tb.tb_next
        if sites:
            return tuple(sites[-depth:])
    journal = getattr(collector.map, "journal", None)
    if not journal:
        return ()
    return tuple(journal[-depth:])


class Collector:
    """Common interface: a context manager scoped to one execution.

    ``begin()``/``end()`` bracket one execution.  They decompose into
    :meth:`begin_execution` (reset the map/counters for the next run)
    and :meth:`open_window`/:meth:`close_window` (arm/disarm the
    instrumentation mechanism), so a harness can drive either half
    independently (map swaps, window-only toggles).
    """

    #: which instrumentation mechanism feeds the map (for stats/reports)
    backend_name = "none"

    def __init__(self, coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        self.map = coverage_map if coverage_map is not None else CoverageMap()
        self.hang_budget = hang_budget
        self.blocks_executed = 0

    def begin_execution(self) -> None:
        """Reset per-execution state; the window state is untouched."""
        self.map.fast_reset()
        self.blocks_executed = 0

    def open_window(self) -> None:
        """Arm the instrumentation mechanism (no-op by default)."""

    def close_window(self) -> None:
        """Disarm the instrumentation mechanism (no-op by default)."""

    def begin(self) -> None:
        self.begin_execution()
        self.open_window()

    def end(self) -> None:
        self.close_window()

    def __enter__(self):
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end()
        return False


class ExplicitCollector(Collector):
    """Targets call :meth:`hit` with a stable label at each branch point."""

    backend_name = "explicit"

    def __init__(self, coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        super().__init__(coverage_map, hang_budget)
        self._label_ids: Dict[str, int] = {}

    def hit(self, label: str) -> None:
        """Record entry into the basic block named *label*."""
        block_id = self._label_ids.get(label)
        if block_id is None:
            block_id = fnv1a32(label)
            self._label_ids[label] = block_id
        self.map.visit(block_id)
        self.blocks_executed += 1
        if self.blocks_executed > self.hang_budget:
            raise HangBudgetExceeded(label)


class _LineCollector(Collector):
    """Shared state of the two line-granularity backends."""

    def __init__(self, module_prefixes: Iterable[str],
                 coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        super().__init__(coverage_map, hang_budget)
        self.module_prefixes = tuple(module_prefixes)
        #: code object -> {lineno -> block id}; code objects are cached by
        #: identity so the hot path never rebuilds filename:lineno strings
        self._code_line_ids: Dict[object, Dict[int, int]] = {}
        self._file_match_cache: Dict[str, bool] = {}
        self._visit = self.map.visit

    def _file_matches(self, filename: str) -> bool:
        cached = self._file_match_cache.get(filename)
        if cached is None:
            cached = any(prefix in filename
                         for prefix in self.module_prefixes)
            self._file_match_cache[filename] = cached
        return cached

    # NOTE: both backends inline the block-id lookup in their per-line
    # callback instead of sharing a helper — a method call per traced
    # line is exactly the overhead this layer exists to avoid.  The id
    # scheme is pinned cross-backend by fnv1a32(f"{filename}:{lineno}")
    # and the backend-equivalence test in tests/runtime/test_backends.py.

    def begin_execution(self) -> None:
        super().begin_execution()
        # rebind in case the map object was swapped between executions
        # (the equivalence tests inject the dense reference this way,
        # and the batched pipeline rotates through its map pool)
        self._visit = self.map.visit


class TracingCollector(_LineCollector):
    """``sys.settrace``-based line/edge coverage scoped to target modules.

    Parameters
    ----------
    module_prefixes:
        Only code objects whose ``co_filename`` contains one of these
        substrings are traced; everything else (the fuzzer itself, the
        stdlib) is skipped at call granularity, keeping overhead low.
    """

    backend_name = "settrace"

    def __init__(self, module_prefixes: Iterable[str],
                 coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        super().__init__(module_prefixes, coverage_map, hang_budget)
        self._saved_trace = None

    def open_window(self) -> None:
        self._saved_trace = sys.gettrace()
        sys.settrace(self._global_trace)

    def close_window(self) -> None:
        sys.settrace(self._saved_trace)
        self._saved_trace = None

    # -- trace callbacks -----------------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        if not self._file_matches(frame.f_code.co_filename):
            return None
        return self._local_trace

    def _local_trace(self, frame, event, arg):
        if event != "line":
            return self._local_trace
        code = frame.f_code
        line_ids = self._code_line_ids.get(code)
        if line_ids is None:
            self._code_line_ids[code] = line_ids = {}
        lineno = frame.f_lineno
        block_id = line_ids.get(lineno)
        if block_id is None:
            block_id = fnv1a32(f"{code.co_filename}:{lineno}")
            line_ids[lineno] = block_id
        self._visit(block_id)
        self.blocks_executed += 1
        if self.blocks_executed > self.hang_budget:
            raise HangBudgetExceeded(f"{code.co_filename}:{lineno}")
        return self._local_trace


class MonitoringCollector(_LineCollector):
    """``sys.monitoring`` (PEP 669) line coverage, CPython 3.12+.

    Produces the same block ids as :class:`TracingCollector` (the stable
    ``filename:lineno`` hash), so coverage maps are interchangeable
    between backends.  Out-of-scope code locations are DISABLEd at the
    interpreter level after their first event, so steady-state overhead
    is paid only inside the target modules.

    The tool id and the LINE callback stay registered across executions
    — ``begin``/``end`` merely toggle event delivery for the already-
    registered tool instead of paying the use_tool_id/register_callback/
    free_tool_id churn on every run.  (Delivery *is* switched off
    between executions: in-scope code that runs outside a collection
    window — wire transformers during generation, codecs during
    cracking — must neither record nor pay callback overhead, and it
    can never be DISABLEd.)  DISABLE state survives the toggle, which
    is the cross-execution perf win.  :meth:`release` fully unwinds the
    registration when another tool needs the id.
    """

    backend_name = "monitoring"

    #: scope whose DISABLEd locations currently persist in the
    #: interpreter.  DISABLE state survives callback swaps, which is the
    #: perf win (out-of-scope code stays silent across executions) — but
    #: it must be flushed with restart_events() the moment a collector
    #: with a *different* scope takes over, or that collector would be
    #: blind to everything its predecessor disabled.
    _disabled_scope: Optional[Tuple[str, ...]] = None

    #: tool ids claimed by this process, with the LINE callback
    #: registered; populated lazily on the first begin() per id
    _armed_tools: set = set()
    #: the collector whose bound callback is currently registered per
    #: tool id (re-registration only happens when the collector changes)
    _callback_owner: Dict[int, "MonitoringCollector"] = {}

    def __init__(self, module_prefixes: Iterable[str],
                 coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000,
                 tool_id: Optional[int] = None):
        if _MONITORING is None:
            raise RuntimeError(
                "sys.monitoring is not available on this interpreter "
                f"({sys.version_info.major}.{sys.version_info.minor}); "
                "use TracingCollector or make_line_collector()")
        super().__init__(module_prefixes, coverage_map, hang_budget)
        self._tool_id = (tool_id if tool_id is not None
                         else _MONITORING.COVERAGE_ID)
        self._active = False

    def open_window(self) -> None:
        mon = _MONITORING
        cls = MonitoringCollector
        if self._tool_id not in cls._armed_tools:
            try:
                mon.use_tool_id(self._tool_id, "repro-coverage")
            except ValueError as exc:
                raise RuntimeError(
                    f"sys.monitoring tool id {self._tool_id} is held by "
                    f"{mon.get_tool(self._tool_id)!r}; force the settrace "
                    "backend (REPRO_COVERAGE_BACKEND=settrace)") from exc
            cls._armed_tools.add(self._tool_id)
        if cls._disabled_scope != self.module_prefixes:
            if cls._disabled_scope is not None:
                mon.restart_events()
            cls._disabled_scope = self.module_prefixes
        if cls._callback_owner.get(self._tool_id) is not self:
            mon.register_callback(self._tool_id, mon.events.LINE,
                                  self._on_line)
            cls._callback_owner[self._tool_id] = self
        mon.set_events(self._tool_id, mon.events.LINE)
        self._active = True

    def close_window(self) -> None:
        if not self._active:
            return
        # keep the tool id + callback registered; just stop delivery so
        # nothing fires (or records) between executions
        _MONITORING.set_events(self._tool_id, 0)
        self._active = False

    @classmethod
    def release(cls) -> None:
        """Fully unwind: disable events, free every claimed tool id.

        For handing the COVERAGE_ID back to other tooling (coverage.py,
        debuggers) and for test isolation; normal campaigns never need
        it.
        """
        if _MONITORING is None:
            return
        for tool_id in sorted(cls._armed_tools):
            _MONITORING.set_events(tool_id, 0)
            _MONITORING.register_callback(tool_id,
                                          _MONITORING.events.LINE, None)
            _MONITORING.free_tool_id(tool_id)
        if cls._armed_tools and cls._disabled_scope is not None:
            _MONITORING.restart_events()
        cls._armed_tools.clear()
        cls._callback_owner.clear()
        cls._disabled_scope = None

    def _on_line(self, code, lineno: int):
        if not self._file_matches(code.co_filename):
            return _MONITORING.DISABLE
        line_ids = self._code_line_ids.get(code)
        if line_ids is None:
            self._code_line_ids[code] = line_ids = {}
        block_id = line_ids.get(lineno)
        if block_id is None:
            block_id = fnv1a32(f"{code.co_filename}:{lineno}")
            line_ids[lineno] = block_id
        self._visit(block_id)
        self.blocks_executed += 1
        if self.blocks_executed > self.hang_budget:
            raise HangBudgetExceeded(f"{code.co_filename}:{lineno}")
        return None


def make_line_collector(module_prefixes: Iterable[str], *,
                        coverage_map: Optional[CoverageMap] = None,
                        hang_budget: int = 200_000,
                        backend: str = "auto") -> _LineCollector:
    """Build the fastest line-granularity collector for this interpreter.

    ``backend="auto"`` (or ``REPRO_COVERAGE_BACKEND``) selects
    ``sys.monitoring`` on CPython 3.12+ and falls back to ``sys.settrace``
    on older interpreters; an explicit ``"monitoring"`` request on an
    interpreter without PEP 669 raises so misconfiguration is loud.
    """
    choice = resolve_backend(backend)
    if choice == "monitoring":
        return MonitoringCollector(module_prefixes,
                                   coverage_map=coverage_map,
                                   hang_budget=hang_budget)
    return TracingCollector(module_prefixes, coverage_map=coverage_map,
                            hang_budget=hang_budget)
