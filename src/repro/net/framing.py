"""Wire framing for the live-network layer.

Two framing families live here:

* the **peachstar envelope** — the length-prefixed harness protocol the
  served targets and the :class:`~repro.net.target.SocketTarget` speak
  to each other.  Fuzzed frames are arbitrary bytes (malformed length
  fields are frequently the point), so exact parity with the in-process
  delivery path needs a framing that never re-interprets the payload:
  1 type byte + 4-byte big-endian length + payload.
* the **stream framers** — one per protocol family, slicing a raw TCP
  byte stream into protocol frames the way a real client library does
  (MBAP length prefix, APCI start/length octets, DNP3 link header with
  CRC-expanded blocks, TPKT).  These carry the raw mode that talks to
  external implementations, and resynchronize on garbage the way a
  defensive stream reader would: scan forward to the next plausible
  start byte, or drop the unframeable prefix.

Framer choice is keyed by :attr:`repro.protocols.TargetSpec.framing`
(``mbap``/``apci``/``dnp3``/``tpkt``) via :func:`framer_for`.
"""

from __future__ import annotations

import asyncio
import struct
from typing import List, Optional, Tuple

# -- peachstar envelope -------------------------------------------------------

#: client -> server
MSG_DATA = b"D"      # one fuzzed frame to dispatch
MSG_RESET = b"R"     # reset the session (fresh server state + heap)
#: server -> client
MSG_RESPONSE = b"r"  # the server's reply bytes
MSG_NONE = b"n"      # the server replied nothing (dropped the frame)
MSG_CRASH = b"c"     # sanitizer fault (JSON payload: kind/site/detail/...)
MSG_HANG = b"h"      # hang budget exhausted inside the dispatch
MSG_ACK = b"k"       # reset acknowledged

_HEADER = struct.Struct(">I")
#: hard bound on one envelope payload (a fuzzed frame is never near it)
MAX_ENVELOPE = 1 << 24


class EnvelopeError(Exception):
    """A peer spoke something that is not the peachstar envelope."""


def encode_envelope(kind: bytes, payload: bytes = b"") -> bytes:
    if len(kind) != 1:
        raise EnvelopeError(f"envelope type must be one byte, got {kind!r}")
    if len(payload) > MAX_ENVELOPE:
        raise EnvelopeError(f"envelope payload too large: {len(payload)}")
    return kind + _HEADER.pack(len(payload)) + payload


async def read_envelope(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[bytes, bytes]]:
    """Read one envelope; ``None`` on a clean EOF at a message boundary."""
    try:
        header = await reader.readexactly(5)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    kind, length = header[:1], _HEADER.unpack(header[1:])[0]
    if length > MAX_ENVELOPE:
        raise EnvelopeError(f"envelope length {length} exceeds bound")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return kind, payload


# -- raw stream framers -------------------------------------------------------

class StreamFramer:
    """Slice a growing byte stream into protocol frames.

    ``feed`` appends received bytes and returns every frame completed by
    them; partial frames stay buffered.  Unframeable garbage is resynced
    past (``resync``), mirroring a defensive stream reader.  One framer
    instance per connection — the buffer is the connection's read state.
    """

    name = "stream"

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        frames: List[bytes] = []
        while self._buffer:
            total = self._frame_length(self._buffer)
            if total == 0:          # need more bytes
                break
            if total < 0:           # unframeable prefix: resync
                if not self._resync():
                    break
                continue
            if len(self._buffer) < total:
                break
            frames.append(bytes(self._buffer[:total]))
            del self._buffer[:total]
        return frames

    def reset(self) -> None:
        self._buffer.clear()

    @property
    def pending(self) -> int:
        return len(self._buffer)

    # subclass hooks ------------------------------------------------------

    #: start byte to scan for during resync (None = drop the buffer)
    start_byte: Optional[int] = None

    def _frame_length(self, buf: bytearray) -> int:
        """Total frame size at the head of *buf*.

        Returns 0 when more bytes are needed, -1 when the head cannot
        start a frame (triggers resync).
        """
        raise NotImplementedError

    def _resync(self) -> bool:
        """Skip past an unframeable head; True if the buffer changed."""
        if not self._buffer:
            return False
        if self.start_byte is None:
            self._buffer.clear()
            return False
        cut = self._buffer.find(bytes((self.start_byte,)), 1)
        if cut < 0:
            self._buffer.clear()
            return False
        del self._buffer[:cut]
        return True


class MbapFramer(StreamFramer):
    """Modbus/TCP: 6-byte MBAP header, u16 BE length at offset 4.

    MBAP has no start byte, so there is nothing to resync on — the
    length prefix is trusted, exactly as a real Modbus TCP stack reads.
    """

    name = "mbap"

    def _frame_length(self, buf: bytearray) -> int:
        if len(buf) < 6:
            return 0
        return 6 + int.from_bytes(buf[4:6], "big")


class ApciFramer(StreamFramer):
    """IEC 60870-5-104 APCI: 0x68 start byte + length octet."""

    name = "apci"
    start_byte = 0x68

    def _frame_length(self, buf: bytearray) -> int:
        if buf[0] != self.start_byte:
            return -1
        if len(buf) < 2:
            return 0
        return 2 + buf[1]


class TpktFramer(StreamFramer):
    """TPKT (RFC 1006): 0x03 version + u16 BE total length at offset 2."""

    name = "tpkt"
    start_byte = 0x03

    def _frame_length(self, buf: bytearray) -> int:
        if buf[0] != self.start_byte:
            return -1
        if len(buf) < 4:
            return 0
        total = int.from_bytes(buf[2:4], "big")
        if total < 4:
            return -1
        return total


class Dnp3Framer(StreamFramer):
    """DNP3 link frames: 0x05 0x64 start, CRC-expanded user blocks.

    The length octet counts ctrl+dest+src (5) plus the user data; on
    the wire every 16-byte user block carries a 2-byte CRC, as does the
    8-byte link header.
    """

    name = "dnp3"
    start_byte = 0x05

    def _frame_length(self, buf: bytearray) -> int:
        if buf[0] != 0x05:
            return -1
        if len(buf) < 3:
            return 0
        if buf[1] != 0x64:
            return -1
        length = buf[2]
        if length < 5:
            return -1
        user_len = length - 5
        blocks = (user_len + 15) // 16
        return 8 + 2 + user_len + 2 * blocks


_FRAMERS = {
    "mbap": MbapFramer,
    "apci": ApciFramer,
    "dnp3": Dnp3Framer,
    "tpkt": TpktFramer,
}


def framer_for(framing_name: str) -> StreamFramer:
    """A fresh stream framer for a TargetSpec's ``framing`` key."""
    try:
        return _FRAMERS[framing_name]()
    except KeyError:
        raise ValueError(f"unknown stream framing {framing_name!r}; "
                         f"choices: {sorted(_FRAMERS)}") from None
