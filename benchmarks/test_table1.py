"""Table I: vulnerabilities exposed by Peach* on the three buggy projects.

Prints the table in the paper's layout (project / vulnerability type /
number / status) and the ASan-style report of the lib60870
``CS101_ASDU_getCOT`` SEGV shown in the paper's Listings 1 and 2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_HOURS, BENCH_JOBS, BENCH_REPS, \
    CLAIMS_ENABLED, bench_config, print_block
from repro.analysis import getcot_report, render_table1, run_table1_row
from repro.analysis.tables import BUGGY_TARGETS, expected_counts
from repro.protocols import get_target

_ROWS = {}


def _row(target_name):
    if target_name not in _ROWS:
        _ROWS[target_name] = run_table1_row(
            target_name, repetitions=BENCH_REPS, budget_hours=BENCH_HOURS,
            base_seed=7, config=bench_config(), jobs=BENCH_JOBS)
    return _ROWS[target_name]


@pytest.mark.parametrize("target_name", BUGGY_TARGETS)
def test_table1_project(benchmark, target_name):
    row = benchmark.pedantic(_row, args=(target_name,), rounds=1,
                             iterations=1)
    found = sum(row.found_by_type.values())
    expected = sum(row.expected_by_type.values())
    first_seen = "\n".join(
        f"  [{hours:5.1f}h] {kind} at {site}"
        for (kind, site), hours in sorted(row.first_seen_hours.items(),
                                          key=lambda item: item[1]))
    print_block(
        f"Table I row: {target_name} "
        f"({found}/{expected} unique vulnerabilities)",
        "\n".join(row.render()) + "\nfirst seen:\n" + first_seen)
    if CLAIMS_ENABLED:  # Peach* exposes bugs in every buggy project
        assert found >= 1
    # every found bug is a seeded one (no false sites)
    spec = get_target(target_name)
    for report in row.reports:
        assert report.dedup_key in spec.seeded_bug_sites


def test_table1_full(benchmark):
    """The complete Table I, plus the Listing 1/2 crash report."""
    def rows():
        return [_row(name) for name in BUGGY_TARGETS]

    all_rows = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_block("TABLE I (paper layout)", render_table1(all_rows))
    total = sum(sum(row.found_by_type.values()) for row in all_rows)
    # paper: 9 unique previously-unknown vulnerabilities
    if CLAIMS_ENABLED:
        assert total >= 7, f"only {total}/9 seeded bugs found in budget"

    listing = getcot_report(all_rows)
    if listing is not None:
        print_block(
            "Listing 2 analog: the lib60870 CS101_ASDU_getCOT SEGV",
            listing)
        assert "SUMMARY: AddressSanitizer: SEGV" in listing
