"""Cross-protocol conformance matrix: one suite, all six stacks.

Before this matrix only a subset of the protocols had direct codec
tests; these invariants now run uniformly over every data model of
every bundled pit (modbus, dnp3, iec104, iec61850, iccp, lib60870):

* **wire round-trip** — ``parse(to_wire(tree))`` reproduces the wire
  bytes bit-for-bit, and so does rebuilding the parsed tree through the
  Relation/Fixup pipeline (the repair path donor splicing relies on);
* **truncation tolerance** — ``parse(strict=False)`` never raises on a
  truncated packet, for every cut point of every model (the triage
  subsystem cracks crashing mutants through this path);
* **fuzzability** — a short seeded Peach* campaign against the bundled
  server finds at least one path without the harness failing.
"""

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.core.fixup_engine import TreeEchoProvider
from repro.protocols import TARGET_NAMES, all_targets, get_target

#: one pit per target, built once — model construction is pure
_PITS = {spec.name: spec.make_pit() for spec in all_targets()}


def _models():
    """Every (target, model) pair of the evaluation, as test ids."""
    params = []
    for name in TARGET_NAMES:
        for model in _PITS[name]:
            params.append(pytest.param(name, model.name,
                                       id=f"{name}-{model.name}"))
    return params


@pytest.mark.parametrize("target_name,model_name", _models())
class TestWireRoundTrip:
    def test_parse_reproduces_wire_bit_for_bit(self, target_name,
                                               model_name):
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        parsed = model.parse(wire)
        assert model.to_wire(parsed) == wire

    def test_relation_fixup_rebuild_is_bit_identical(self, target_name,
                                                     model_name):
        """The repair pipeline must be a fixpoint on legal packets:
        parse, then rebuild through build()'s relation/fixup passes."""
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        parsed = model.parse(wire)
        rebuilt = model.build(TreeEchoProvider(parsed))
        assert model.to_wire(rebuilt) == wire

    def test_fixups_verify_on_default_packet(self, target_name,
                                             model_name):
        model = _PITS[target_name].model(model_name)
        wire = model.to_wire(model.build_default())
        model.parse(wire, verify_fixups=True)  # must not raise


@pytest.mark.parametrize("target_name,model_name", _models())
def test_lenient_parse_never_raises_on_truncation(target_name,
                                                  model_name):
    """Every prefix of a legal packet yields a best-effort InsTree."""
    model = _PITS[target_name].model(model_name)
    wire = model.to_wire(model.build_default())
    for cut in range(len(wire)):
        tree = model.parse(wire[:cut], strict=False)
        assert tree.model_name == model.name


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_short_campaign_finds_paths_without_harness_faults(target_name):
    """The full loop stays healthy on every stack: generation, wire
    codec, server, sanitizer and coverage measurement."""
    spec = get_target(target_name)
    config = CampaignConfig(budget_hours=24.0, max_executions=120,
                            record_every=20)
    result = run_campaign("peach-star", spec, seed=42, config=config)
    assert result.final_paths >= 1
    assert result.executions > 0
    # crashes, if any, are *typed* faults at seeded sites — never an
    # escape of the harness (which would have raised out of iterate())
    seeded = {site for _kind, site in spec.seeded_bug_sites}
    for report in result.unique_crashes:
        assert report.site in seeded
