"""Sparse-vs-dense coverage equivalence: the rewrite must be invisible.

The sparse journaled pipeline (`repro.runtime.coverage`) replaces the
seed's dense O(MAP_SIZE) scans.  These tests pin the contract: for the
same executions, every observable — merge decisions, edge counts, path
hashes, whole `CampaignResult`s — is bit-for-bit identical to the dense
reference implementation kept in `repro.runtime._dense_ref`, across all
six protocol targets.  The parallel campaign executor gets the same
treatment against its serial counterpart.
"""

import random

import pytest

from repro.core.campaign import (
    CampaignConfig, make_engine, run_campaign, run_repetitions,
    run_repetitions_parallel,
)
from repro.protocols import TARGET_NAMES, get_target
from repro.runtime._dense_ref import DenseCoverageMap, DenseGlobalCoverage
from repro.runtime.coverage import MAP_SIZE, CoverageMap, GlobalCoverage


def _pair():
    return CoverageMap(), DenseCoverageMap()


def _random_blocks(rng, length):
    return [rng.randrange(1 << 20) for _ in range(length)]


class TestMapEquivalence:
    """Replay identical visit sequences into both implementations."""

    def test_random_visit_sequences_match(self):
        rng = random.Random(1234)
        for trial in range(30):
            sparse, dense = _pair()
            for block in _random_blocks(rng, rng.randrange(0, 400)):
                sparse.visit(block)
                dense.visit(block)
            assert sparse.edge_count() == dense.edge_count(), trial
            assert list(sparse.iter_hits()) == list(dense.iter_hits()), trial
            assert sparse.path_hash() == dense.path_hash(), trial

    def test_hot_loop_saturation_matches(self):
        sparse, dense = _pair()
        for _ in range(300):
            for block in (7, 9, 7):
                sparse.visit(block)
                dense.visit(block)
        assert list(sparse.iter_hits()) == list(dense.iter_hits())
        assert sparse.path_hash() == dense.path_hash()

    def test_reset_variants_match_dense(self):
        rng = random.Random(99)
        for reset_name in ("reset", "fast_reset"):
            sparse, dense = _pair()
            for block in _random_blocks(rng, 200):
                sparse.visit(block)
                dense.visit(block)
            getattr(sparse, reset_name)()
            getattr(dense, reset_name)()
            assert sparse.edge_count() == 0
            assert bytes(sparse.counts) == bytes(MAP_SIZE)
            # and the map is fully reusable afterwards
            for block in (1, 2, 3):
                sparse.visit(block)
                dense.visit(block)
            assert list(sparse.iter_hits()) == list(dense.iter_hits())

    def test_fast_reset_dense_fallback_path(self):
        """Force the journal above the sparse-reset limit."""
        sparse = CoverageMap()
        for index in range(MAP_SIZE // 8):
            sparse._prev = 0
            sparse.visit(index)
        assert sparse.edge_count() == len(set(
            index & (MAP_SIZE - 1) for index in range(MAP_SIZE // 8)))
        sparse.fast_reset()
        assert sparse.edge_count() == 0
        assert bytes(sparse.counts) == bytes(MAP_SIZE)

    def test_merge_decision_stream_matches(self):
        rng = random.Random(4321)
        sparse_glob, dense_glob = GlobalCoverage(), DenseGlobalCoverage()
        for trial in range(60):
            sparse, dense = _pair()
            for block in _random_blocks(rng, rng.randrange(0, 120)):
                sparse.visit(block)
                dense.visit(block)
            assert sparse_glob.would_be_new(sparse) == \
                dense_glob.would_be_new(dense), trial
            assert sparse_glob.merge(sparse) == dense_glob.merge(dense), trial
            assert sparse_glob.edge_coverage() == \
                dense_glob.edge_coverage(), trial
        assert bytes(sparse_glob.virgin) == bytes(dense_glob.virgin)


def _short_config():
    return CampaignConfig(budget_hours=24.0, max_executions=140,
                          record_every=10)


def _dense_engine(engine_name, spec, seed, config):
    engine = make_engine(engine_name, spec, seed, config)
    engine.target.collector.map = DenseCoverageMap()
    engine.seed_pool.coverage = DenseGlobalCoverage()
    return engine


def _result_signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
    )


class TestCampaignEquivalence:
    """Whole campaigns agree between sparse and dense pipelines."""

    @pytest.mark.parametrize("target_name", TARGET_NAMES)
    def test_peach_star_campaign_identical(self, target_name):
        spec = get_target(target_name)
        config = _short_config()
        sparse = run_campaign("peach-star", spec, seed=11, config=config)
        dense = run_campaign(
            "peach-star", spec, seed=11, config=config,
            engine=_dense_engine("peach-star", spec, 11, config))
        assert _result_signature(sparse) == _result_signature(dense)

    def test_baseline_engine_campaign_identical(self):
        spec = get_target("libmodbus")
        config = _short_config()
        sparse = run_campaign("peach", spec, seed=5, config=config)
        dense = run_campaign(
            "peach", spec, seed=5, config=config,
            engine=_dense_engine("peach", spec, 5, config))
        assert _result_signature(sparse) == _result_signature(dense)


class TestParallelEquivalence:
    """The process-pool executor returns exactly the serial results."""

    def test_parallel_matches_serial(self):
        spec = get_target("libmodbus")
        config = CampaignConfig(budget_hours=24.0, max_executions=90,
                                record_every=10)
        serial = run_repetitions("peach-star", spec, repetitions=3,
                                 base_seed=42, config=config)
        parallel = run_repetitions_parallel(
            "peach-star", spec, repetitions=3, base_seed=42, config=config,
            max_workers=2)
        assert [_result_signature(r) for r in serial] == \
            [_result_signature(r) for r in parallel]
        assert [r.seed for r in parallel] == [42, 1042, 2042]

    def test_single_worker_stays_in_process(self):
        spec = get_target("iec104")
        config = CampaignConfig(budget_hours=24.0, max_executions=60)
        serial = run_repetitions("peach", spec, repetitions=2,
                                 base_seed=3, config=config)
        inline = run_repetitions_parallel(
            "peach", spec, repetitions=2, base_seed=3, config=config,
            max_workers=1)
        assert [_result_signature(r) for r in serial] == \
            [_result_signature(r) for r in inline]
