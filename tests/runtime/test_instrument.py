"""Unit tests for the instrumentation collectors."""

import pytest

from repro.runtime.instrument import (
    ExplicitCollector, HangBudgetExceeded, TracingCollector,
)
from repro.protocols.modbus import ModbusServer, build_read_request
from repro.sanitizer import SimHeap


class TestExplicitCollector:
    def test_hits_recorded(self):
        collector = ExplicitCollector()
        with collector:
            collector.hit("block-a")
            collector.hit("block-b")
        assert collector.map.edge_count() == 2
        assert collector.blocks_executed == 2

    def test_labels_have_stable_ids(self):
        one = ExplicitCollector()
        two = ExplicitCollector()
        with one:
            one.hit("x")
        with two:
            two.hit("x")
        assert list(one.map.iter_hits()) == list(two.map.iter_hits())

    def test_hang_budget_enforced(self):
        collector = ExplicitCollector(hang_budget=10)
        with pytest.raises(HangBudgetExceeded):
            with collector:
                for _ in range(20):
                    collector.hit("loop")

    def test_begin_resets_between_executions(self):
        collector = ExplicitCollector()
        with collector:
            collector.hit("a")
        with collector:
            collector.hit("b")
        assert collector.map.edge_count() == 1


class TestTracingCollector:
    def _run_modbus(self, collector, packet):
        server = ModbusServer()
        with collector:
            server.handle_packet(SimHeap(), packet)

    def test_traces_target_module_lines(self):
        collector = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(collector, build_read_request(3, 0, 2))
        assert collector.map.edge_count() > 10
        assert collector.blocks_executed > 10

    def test_ignores_out_of_scope_modules(self):
        collector = TracingCollector(module_prefixes=("no/such/prefix",))
        self._run_modbus(collector, build_read_request(3, 0, 2))
        assert collector.map.edge_count() == 0

    def test_different_function_codes_differ_in_coverage(self):
        first = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(first, build_read_request(0x01, 0, 2))
        second = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(second, build_read_request(0x03, 0, 2))
        assert first.map.path_hash() != second.map.path_hash()

    def test_same_packet_same_coverage(self):
        packet = build_read_request(3, 0, 5)
        hashes = []
        for _ in range(2):
            collector = TracingCollector(
                module_prefixes=("repro/protocols",))
            self._run_modbus(collector, packet)
            hashes.append(collector.map.path_hash())
        assert hashes[0] == hashes[1]

    def test_loop_iterations_bump_counts(self):
        """A larger read quantity executes the register loop more times —
        the hit-count bucketing must be able to tell the difference."""
        small = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(small, build_read_request(3, 0, 1))
        large = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(large, build_read_request(3, 0, 40))
        assert large.blocks_executed > small.blocks_executed
        assert small.map.path_hash() != large.map.path_hash()

    def test_trace_hook_restored_after_execution(self):
        import sys
        before = sys.gettrace()
        collector = TracingCollector(module_prefixes=("repro/protocols",))
        self._run_modbus(collector, build_read_request(3, 0, 1))
        assert sys.gettrace() is before
