"""Unit tests for the Peach-style mutators."""

import random

import pytest

from repro.model import (
    Blob, Block, Choice, DataModel, GenerationPolicy, MutatorProvider,
    Number, Repeat, Str, number_edge_cases,
)


@pytest.fixture
def provider(rng):
    return MutatorProvider(rng)


class TestEdgeCases:
    def test_u8_edge_cases_within_width(self):
        cases = number_edge_cases(Number("n", 1))
        assert 0 in cases and 1 in cases and 255 in cases
        assert all(-256 < c <= 255 for c in cases)

    def test_u16_includes_byte_boundaries(self):
        cases = number_edge_cases(Number("n", 2))
        assert {0xFF, 0x100, 0x101, 0x7FFF, 0x8000, 0xFFFF} <= set(cases)

    def test_signed_includes_extremes(self):
        cases = number_edge_cases(Number("n", 2, signed=True))
        assert -1 in cases and -(1 << 15) in cases and (1 << 15) - 1 in cases

    def test_no_duplicates(self):
        cases = number_edge_cases(Number("n", 4))
        assert len(cases) == len(set(cases))


class TestTokenHandling:
    def test_tokens_never_mutated_by_default(self, rng):
        provider = MutatorProvider(rng)
        field = Number("magic", 1, default=0x68, token=True)
        for _ in range(200):
            assert provider.leaf_value(field, "p") is None  # keep default

    def test_token_fuzzing_opt_in(self, rng):
        policy = GenerationPolicy(token_fuzz_prob=1.0)
        provider = MutatorProvider(rng, policy)
        field = Number("magic", 1, default=0x68, token=True)
        values = {provider.leaf_value(field, "p") for _ in range(100)}
        assert values != {None}


class TestValueDistribution:
    def test_default_prob_one_always_yields_defaultish(self, rng):
        policy = GenerationPolicy(default_prob=1.0, legal_value_prob=0,
                                  edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Number("n", 2, default=100)
        values = [provider.leaf_value(field, "p") for _ in range(200)]
        # mutation-on-default stays near the default
        assert all(abs(v - 100) <= 0x100 for v in values)
        assert 100 in values

    def test_legal_values_drawn_from_value_set(self, rng):
        policy = GenerationPolicy(default_prob=0, legal_value_prob=1.0,
                                  edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Number("fc", 1, default=1, values=(1, 3, 16))
        values = {provider.leaf_value(field, "p") for _ in range(200)}
        assert values <= {1, 3, 16}

    def test_min_max_range_respected_by_legal_strategy(self, rng):
        policy = GenerationPolicy(default_prob=0, legal_value_prob=1.0,
                                  edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Number("q", 2, default=5, minimum=1, maximum=125)
        values = [provider.leaf_value(field, "p") for _ in range(200)]
        assert all(1 <= v <= 125 for v in values)

    def test_random_strings_are_printable(self, rng):
        policy = GenerationPolicy(default_prob=0, legal_value_prob=0,
                                  edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Str("s", default="x")
        for _ in range(100):
            value = provider.leaf_value(field, "p")
            assert all(32 <= ord(ch) < 127 for ch in value)

    def test_random_blob_respects_policy_cap(self, rng):
        policy = GenerationPolicy(default_prob=0, legal_value_prob=0,
                                  edge_case_prob=0, max_blob_len=16)
        provider = MutatorProvider(rng, policy)
        field = Blob("b", default=b"")
        assert all(len(provider.leaf_value(field, "p")) <= 16
                   for _ in range(100))

    def test_fixed_length_string_random_has_exact_length(self, rng):
        policy = GenerationPolicy(default_prob=0, legal_value_prob=0,
                                  edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Str("s", default="abcd", length=4)
        for _ in range(50):
            assert len(provider.leaf_value(field, "p")) == 4


class TestHistory:
    def test_history_disabled_by_default(self, provider):
        field = Number("n", 2, default=1)
        provider.remember(field, 1234)
        assert provider._from_history(field) is None

    def test_history_reuse_when_enabled(self, rng):
        policy = GenerationPolicy(history_prob=1.0, default_prob=0,
                                  legal_value_prob=0, edge_case_prob=0)
        provider = MutatorProvider(rng, policy)
        field = Number("n", 2, default=1)
        provider.remember(field, 777)
        values = {provider.leaf_value(field, "p") for _ in range(100)}
        # mutation-on-existing: drifts in ±1 steps around the remembered
        # chunk (each mutated value is itself remembered)
        assert all(abs(v - 777) <= 10 for v in values)
        assert 777 in values

    def test_history_bounded(self, rng):
        policy = GenerationPolicy(history_prob=0.5, history_limit=4)
        provider = MutatorProvider(rng, policy)
        field = Number("n", 2, default=1)
        for value in range(100):
            provider.remember(field, value)
        bucket = provider._history[field.signature().stable_id()]
        assert len(bucket) == 4
        assert bucket == [96, 97, 98, 99]


class TestStructuralDecisions:
    def test_choice_option_in_range(self, provider, rng):
        choice = Choice("c", [Number("a", 1), Number("b", 1),
                              Number("c2", 1)])
        for _ in range(100):
            assert 0 <= provider.choose_option(choice, "p") < 3

    def test_repeat_count_within_bounds(self, provider):
        repeat = Repeat("r", Number("x", 1), min_count=2, max_count=9)
        for _ in range(200):
            assert 2 <= provider.repeat_count(repeat, "p") <= 9

    def test_generation_is_deterministic_under_seed(self):
        model = DataModel("m", Block("root", [
            Number("a", 2, default=1), Str("s", default="hi"),
            Blob("b", default=b"\x00"),
        ]))
        first = [model.build(MutatorProvider(random.Random(5))).raw
                 for _ in range(10)]
        second = [model.build(MutatorProvider(random.Random(5))).raw
                  for _ in range(10)]
        assert first == second
