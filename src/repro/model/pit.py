"""XML pit loader: a subset of the Peach Pit schema.

The paper uses "the existing pit file of Peach, which specifies the input
format and is a requisition for Peach execution" (§V-A).  Our protocol
pits are defined programmatically in ``repro.protocols.*.model``, but this
loader lets users bring their own format specifications as XML, mirroring
the Peach workflow:

.. code-block:: xml

    <Pit name="demo">
      <DataModel name="demo.packet">
        <Number name="id" size="8" default="1" token="true"/>
        <Number name="size" size="16" endian="big">
          <Relation type="size" of="data"/>
        </Number>
        <Block name="data">
          <Number name="code" size="8" values="1,2,3"/>
          <Blob name="payload" maxLength="64"/>
        </Block>
        <Number name="crc" size="32">
          <Fixup algorithm="crc32" over="id,size,data"/>
        </Number>
      </DataModel>
    </Pit>

Supported elements: ``Pit``, ``DataModel``, ``Block``, ``Choice``,
``Repeat``, ``Number``, ``String``, ``Blob``, ``Relation`` (size/count)
and ``Fixup`` (crc32, crc16-modbus, crc16-dnp, sum8, xor8, lrc8).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.model.datamodel import DataModel, Pit
from repro.model.fields import (
    Blob, Block, Choice, Field, ModelError, Number, Repeat, Str,
)
from repro.model.fixups import (
    Crc16ModbusFixup, Crc32Fixup, Dnp3CrcFixup, Lrc8Fixup, Sum8Fixup,
    Xor8Fixup, attach_fixup,
)
from repro.model.relations import CountOf, SizeOf, attach_relation

_FIXUPS: Dict[str, type] = {
    "crc32": Crc32Fixup,
    "crc16-modbus": Crc16ModbusFixup,
    "crc16-dnp": Dnp3CrcFixup,
    "sum8": Sum8Fixup,
    "xor8": Xor8Fixup,
    "lrc8": Lrc8Fixup,
}


class PitError(ModelError):
    """Raised for malformed pit XML."""


def load_pit_string(text: str) -> Pit:
    """Parse a pit from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PitError(f"invalid pit XML: {exc}") from exc
    return _build_pit(root)


def load_pit_file(path: str) -> Pit:
    """Parse a pit from an XML file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_pit_string(handle.read())


def _build_pit(root: ET.Element) -> Pit:
    if root.tag != "Pit":
        raise PitError(f"root element must be <Pit>, got <{root.tag}>")
    name = root.get("name", "pit")
    models: List[DataModel] = []
    for element in root:
        if element.tag != "DataModel":
            raise PitError(f"unexpected <{element.tag}> under <Pit>")
        models.append(_build_model(element))
    return Pit(name, models)


def _build_model(element: ET.Element) -> DataModel:
    name = _require(element, "name")
    children = [_build_field(child) for child in element
                if child.tag not in ("Relation", "Fixup")]
    if not children:
        raise PitError(f"data model {name!r} is empty")
    root = Block(name + ".root", children)
    weight = float(element.get("weight", "1.0"))
    return DataModel(name, root, weight=weight)


def _build_field(element: ET.Element) -> Field:
    builders = {
        "Number": _build_number,
        "String": _build_string,
        "Blob": _build_blob,
        "Block": _build_block,
        "Choice": _build_choice,
        "Repeat": _build_repeat,
    }
    builder = builders.get(element.tag)
    if builder is None:
        raise PitError(f"unsupported element <{element.tag}>")
    field = builder(element)
    _apply_relation_and_fixup(field, element)
    return field


def _apply_relation_and_fixup(field: Field, element: ET.Element) -> None:
    for child in element:
        if child.tag == "Relation":
            rel_type = _require(child, "type")
            target = _require(child, "of")
            adjust = int(child.get("adjust", "0"))
            if rel_type == "size":
                attach_relation(field, SizeOf(target, adjust))
            elif rel_type == "count":
                attach_relation(field, CountOf(target, adjust))
            else:
                raise PitError(f"unknown relation type {rel_type!r}")
        elif child.tag == "Fixup":
            algorithm = _require(child, "algorithm")
            over = [part.strip() for part in
                    _require(child, "over").split(",") if part.strip()]
            fixup_cls = _FIXUPS.get(algorithm)
            if fixup_cls is None:
                raise PitError(f"unknown fixup algorithm {algorithm!r}")
            attach_fixup(field, fixup_cls(over))


def _common_kwargs(element: ET.Element) -> dict:
    kwargs = {}
    semantic = element.get("semantic")
    if semantic:
        kwargs["semantic"] = semantic
    if element.get("token", "false").lower() in ("true", "1", "yes"):
        kwargs["token"] = True
    return kwargs


def _build_number(element: ET.Element) -> Number:
    name = _require(element, "name")
    size_bits = int(element.get("size", "8"))
    if size_bits % 8 != 0:
        raise PitError(f"number {name!r}: size must be a multiple of 8 bits")
    values = None
    values_attr = element.get("values")
    if values_attr:
        values = [int(part, 0) for part in values_attr.split(",")]
    default_attr = element.get("default")
    if default_attr is not None:
        default = int(default_attr, 0)
    elif values:
        default = values[0]  # enum without explicit default: first member
    else:
        default = 0
    return Number(
        name,
        width=size_bits // 8,
        endian=element.get("endian", "big"),
        default=default,
        signed=element.get("signed", "false").lower() in ("true", "1"),
        values=values,
        minimum=_opt_int(element, "min"),
        maximum=_opt_int(element, "max"),
        **_common_kwargs(element),
    )


def _build_string(element: ET.Element) -> Str:
    return Str(
        _require(element, "name"),
        default=element.get("default", ""),
        length=_opt_int(element, "length"),
        **_common_kwargs(element),
    )


def _build_blob(element: ET.Element) -> Blob:
    default_hex = element.get("default", "")
    default = bytes.fromhex(default_hex) if default_hex else b""
    return Blob(
        _require(element, "name"),
        default=default,
        length=_opt_int(element, "length"),
        max_length=int(element.get("maxLength", "1024")),
        **_common_kwargs(element),
    )


def _build_block(element: ET.Element) -> Block:
    name = _require(element, "name")
    children = [_build_field(child) for child in element
                if child.tag not in ("Relation", "Fixup")]
    if not children:
        raise PitError(f"block {name!r} is empty")
    kwargs = {}
    semantic = element.get("semantic")
    if semantic:
        kwargs["semantic"] = semantic
    return Block(name, children, **kwargs)


def _build_choice(element: ET.Element) -> Choice:
    name = _require(element, "name")
    options = [_build_field(child) for child in element
               if child.tag not in ("Relation", "Fixup")]
    if not options:
        raise PitError(f"choice {name!r} is empty")
    return Choice(name, options)


def _build_repeat(element: ET.Element) -> Repeat:
    name = _require(element, "name")
    children = [_build_field(child) for child in element
                if child.tag not in ("Relation", "Fixup")]
    if len(children) != 1:
        raise PitError(f"repeat {name!r} needs exactly one element child")
    return Repeat(
        name, children[0],
        min_count=int(element.get("minCount", "0")),
        max_count=int(element.get("maxCount", "64")),
    )


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise PitError(f"<{element.tag}> missing required "
                       f"attribute {attribute!r}")
    return value


def _opt_int(element: ET.Element, attribute: str) -> Optional[int]:
    value = element.get(attribute)
    return int(value, 0) if value is not None else None
