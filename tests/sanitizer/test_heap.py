"""Unit tests for the simulated heap (the ASan analog)."""

import pytest

from repro.sanitizer import (
    DoubleFree, HeapBufferOverflow, HeapUseAfterFree, NullDeref, SimHeap,
    SimSegv,
)


class TestBasicAllocation:
    def test_malloc_read_write_roundtrip(self):
        heap = SimHeap()
        ptr = heap.malloc(8, "buf")
        heap.write(ptr, 0, b"\x01\x02\x03")
        assert heap.read(ptr, 0, 3) == b"\x01\x02\x03"
        assert heap.read(ptr, 3, 5) == b"\x00" * 5

    def test_malloc_from_initializes(self):
        heap = SimHeap()
        ptr = heap.malloc_from(b"hello")
        assert heap.read(ptr, 0, 5) == b"hello"
        assert heap.size_of(ptr) == 5

    def test_typed_reads(self):
        heap = SimHeap()
        ptr = heap.malloc_from(b"\x01\x02\x03\x04")
        assert heap.read_u8(ptr, 0) == 1
        assert heap.read_u16(ptr, 0) == 0x0102
        assert heap.read_u16(ptr, 0, endian="little") == 0x0201
        assert heap.read_u32(ptr, 0) == 0x01020304

    def test_typed_writes(self):
        heap = SimHeap()
        ptr = heap.malloc(4)
        heap.write_u16(ptr, 0, 0xBEEF)
        heap.write_u8(ptr, 2, 0x7F)
        assert heap.read(ptr, 0, 3) == b"\xbe\xef\x7f"

    def test_pointer_offset_arithmetic(self):
        heap = SimHeap()
        ptr = heap.malloc_from(b"abcdef")
        shifted = ptr.offset(2)
        assert heap.read(shifted, 0, 2) == b"cd"
        assert shifted.address == ptr.address + 2

    def test_allocations_do_not_overlap(self):
        heap = SimHeap()
        a = heap.malloc(16)
        b = heap.malloc(16)
        assert b.address >= a.address + 16

    def test_live_allocation_count(self):
        heap = SimHeap()
        a = heap.malloc(4)
        heap.malloc(4)
        assert heap.live_allocations() == 2
        heap.free(a)
        assert heap.live_allocations() == 1


class TestFaults:
    def test_read_past_end_is_heap_buffer_overflow(self):
        heap = SimHeap()
        ptr = heap.malloc(4, "small")
        with pytest.raises(HeapBufferOverflow) as exc:
            heap.read(ptr, 2, 4, "site-x")
        assert exc.value.site == "site-x"
        assert exc.value.kind == "heap-buffer-overflow"

    def test_write_past_end_is_heap_buffer_overflow(self):
        heap = SimHeap()
        ptr = heap.malloc(4)
        with pytest.raises(HeapBufferOverflow):
            heap.write(ptr, 0, b"\x00" * 8, "site-w")

    def test_far_out_of_bounds_is_segv(self):
        heap = SimHeap()
        ptr = heap.malloc(4)
        with pytest.raises(SimSegv):
            heap.read(ptr, 5000, 1, "site-far")

    def test_use_after_free_read(self):
        heap = SimHeap()
        ptr = heap.malloc(4, "victim")
        heap.free(ptr)
        with pytest.raises(HeapUseAfterFree) as exc:
            heap.read(ptr, 0, 1, "uaf-site")
        assert "victim" in exc.value.detail

    def test_use_after_free_write(self):
        heap = SimHeap()
        ptr = heap.malloc(4)
        heap.free(ptr)
        with pytest.raises(HeapUseAfterFree):
            heap.write(ptr, 0, b"x", "uaf-w")

    def test_double_free(self):
        heap = SimHeap()
        ptr = heap.malloc(4)
        heap.free(ptr)
        with pytest.raises(DoubleFree):
            heap.free(ptr)

    def test_null_deref(self):
        heap = SimHeap()
        with pytest.raises(NullDeref):
            heap.read(None, 0, 1, "null-site")

    def test_negative_malloc_is_segv(self):
        heap = SimHeap()
        with pytest.raises(SimSegv):
            heap.malloc(-1)

    def test_null_deref_is_a_segv_subclass(self):
        assert issubclass(NullDeref, SimSegv)
        assert NullDeref("s").kind == "SEGV"


class TestDerefRead:
    def test_deref_inside_live_allocation(self):
        heap = SimHeap()
        ptr = heap.malloc_from(b"\xAA\xBB\xCC")
        assert heap.deref_read(ptr.address + 1, 1, "s") == b"\xBB"

    def test_deref_wild_address_is_segv(self):
        heap = SimHeap()
        heap.malloc(4)
        with pytest.raises(SimSegv) as exc:
            heap.deref_read(0xDEAD0000, 1, "wild")
        assert "unknown address" in exc.value.detail

    def test_deref_just_past_allocation_is_segv(self):
        """The CS101_ASDU_getCOT shape: asdu[2] on a 2-byte buffer."""
        heap = SimHeap()
        ptr = heap.malloc_from(b"\x01\x02")
        with pytest.raises(SimSegv):
            heap.deref_read(ptr.address + 2, 1, "getCOT")

    def test_deref_one_before_allocation_is_segv(self):
        """The ts_name_tail shape: name[len-1] with len == 0."""
        heap = SimHeap()
        ptr = heap.malloc(0, "empty-name")
        with pytest.raises(SimSegv):
            heap.deref_read(ptr.address - 1, 1, "tail")

    def test_deref_freed_allocation_is_uaf(self):
        heap = SimHeap()
        ptr = heap.malloc_from(b"xy")
        heap.free(ptr)
        with pytest.raises(HeapUseAfterFree):
            heap.deref_read(ptr.address, 1, "s")

    def test_deref_null_is_segv(self):
        heap = SimHeap()
        with pytest.raises(SimSegv):
            heap.deref_read(0, 1, "null")
