"""Triage summary rendering: the analyst-facing table.

Extends the paper's Table I shape with the triage subsystem's outputs:
severity, refined bucket context, and original → minimized reproducer
sizes.
"""

from __future__ import annotations

from typing import List

from repro.triage.pipeline import TriageReport


def render_triage_table(report: TriageReport) -> str:
    """One row per unique crash bucket, most severe first."""
    lines: List[str] = [
        f"CRASH TRIAGE: {report.target_name} "
        f"({len(report.crashes)} unique bucket"
        f"{'s' if len(report.crashes) != 1 else ''}, "
        f"{report.executions_spent} triage executions)",
        f"{'severity':<9} {'type':<22} {'site':<36} {'ctx':>8} "
        f"{'hits':>4} {'bytes':>11}",
        "-" * 96,
    ]
    for crash in report.crashes:
        bucket = crash.bucket
        confirmed = crash.minimization is not None and \
            crash.minimization.confirmed
        if crash.report.is_session:
            # session crash: compare like with like — the encoded trace
            # the minimizer actually worked on, not the one crashing step
            original = len(crash.report.trace)
            minimized = len(crash.final_packet) if confirmed else original
        else:
            original = len(crash.report.packet)
            minimized = len(crash.final_packet)
        if confirmed:
            size = f"{original:>4} ->{minimized:>4}"
        else:
            size = f"{original:>4}  (?)"
        lines.append(
            f"{bucket.severity:<9} {bucket.kind:<22} {bucket.site:<36} "
            f"{bucket.context_hash:08x} {bucket.count:>4} {size:>11}")
    lines.append("-" * 96)
    if report.minimized_count:
        lines.append(f"{report.minimized_count} reproducer(s) strictly "
                     "smaller than the provoking input")
    if report.out_dir:
        lines.append(f"reproducers exported to {report.out_dir}")
    return "\n".join(lines)
