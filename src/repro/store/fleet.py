"""FleetWorkspace: the on-disk layout of a multi-shard campaign fleet.

Layout of a fleet directory::

    <root>/
      fleet.json         fleet manifest: engine, target, shard count,
                         base seed, sync cadence, shared campaign config
      sync_state.json    atomic high-water mark of completed sync phases
      shards/
        000/ … NNN/      one CampaignWorkspace per shard

Each shard is an ordinary :class:`~repro.store.workspace.CampaignWorkspace`
— the same corpus/crash/journal/checkpoint files, the same restore
semantics — plus an ``inbox/`` of cross-shard seeds staged by the fleet
driver's sync phases (AFL-style sync dirs, pure file-level exchange).

``sync_state.json`` is the fleet-level recovery point: the driver bumps
it atomically only after a sync phase has staged every shard's inbox, so
a kill anywhere inside the phase makes the resumed driver redo the whole
phase — inbox writes are deterministic and idempotent, which is what
keeps a killed-and-resumed fleet bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.store.workspace import (
    STATE_FORMAT, CampaignWorkspace, WorkspaceError, _atomic_write,
)


def is_fleet_workspace(root: str) -> bool:
    """True when *root* holds a fleet manifest (vs a single campaign)."""
    return os.path.exists(os.path.join(root, "fleet.json"))


class FleetWorkspace:
    """On-disk store for one fleet: a manifest plus N shard workspaces."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.shards_dir = os.path.join(self.root, "shards")
        self._manifest_path = os.path.join(self.root, "fleet.json")
        self._sync_state_path = os.path.join(self.root, "sync_state.json")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def exists(self) -> bool:
        return os.path.exists(self._manifest_path)

    def initialize(self, engine_name: str, target_name: str, seed: int,
                   shards: int, sync_every: int,
                   config_dict: dict) -> None:
        """Create a fresh fleet; refuses to clobber an existing one."""
        if self.exists:
            raise WorkspaceError(
                f"fleet workspace {self.root} already exists; "
                "use `peachstar resume` (or a fresh directory) instead")
        if shards < 1:
            raise WorkspaceError("a fleet needs at least one shard")
        if sync_every < 1:
            raise WorkspaceError("sync_every must be >= 1 execution")
        os.makedirs(self.shards_dir, exist_ok=True)
        manifest = {
            "format": STATE_FORMAT,
            "engine": engine_name,
            "target": target_name,
            "seed": seed,
            "shards": shards,
            "sync_every": sync_every,
            "config": config_dict,
        }
        _atomic_write(self._manifest_path,
                      json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    def load_manifest(self) -> dict:
        if not self.exists:
            raise WorkspaceError(f"{self.root} is not a fleet workspace "
                                 "(no fleet.json)")
        with open(self._manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != STATE_FORMAT:
            raise WorkspaceError(
                f"fleet format {manifest.get('format')!r} is not "
                f"supported (expected {STATE_FORMAT})")
        return manifest

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------

    def shard_dir(self, shard: int) -> str:
        return os.path.join(self.shards_dir, f"{shard:03d}")

    def shard_workspace(self, shard: int) -> CampaignWorkspace:
        return CampaignWorkspace(self.shard_dir(shard))

    def shard_workspaces(self) -> List[CampaignWorkspace]:
        shards = self.load_manifest()["shards"]
        return [self.shard_workspace(index) for index in range(shards)]

    # ------------------------------------------------------------------
    # sync bookkeeping
    # ------------------------------------------------------------------

    @property
    def synced_rounds(self) -> int:
        """Sync phases completed (inboxes fully staged for that round)."""
        if not os.path.exists(self._sync_state_path):
            return 0
        with open(self._sync_state_path, encoding="utf-8") as handle:
            return json.load(handle)["synced_rounds"]

    def record_sync_round(self, sync_round: int) -> None:
        _atomic_write(self._sync_state_path,
                      json.dumps({"synced_rounds": sync_round}) + "\n")

    # ------------------------------------------------------------------
    # sync-phase readers (the parent-side selection inputs)
    # ------------------------------------------------------------------

    def read_journal(self, shard: int,
                     offset: int) -> Tuple[int, List[dict]]:
        """Complete coverage-journal lines appended since byte *offset*.

        Returns ``(new_offset, lines)``.  Only whole lines (trailing
        newline present) are consumed, and a record that does not
        decode is skipped: a SIGKILL landing mid-append leaves a torn
        tail, which the shard's next restore prunes and regenerates —
        the parent must not trip over it meanwhile.  The driver calls
        this only at round barriers, so between calls the journal is
        append-only and the offset stays valid.
        """
        path = os.path.join(self.shard_dir(shard), "coverage.jsonl")
        if not os.path.exists(path):
            return offset, []
        with open(path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            return offset, []
        lines = []
        for raw in blob[:end].split(b"\n"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except ValueError:
                continue
        return offset + end + 1, lines

    def local_corpus_meta(self, shard: int,
                          exec_index: int) -> Optional[dict]:
        """Metadata (+ ``_bin`` path) of one locally-discovered seed."""
        path = os.path.join(self.shard_dir(shard), "corpus",
                            f"{exec_index:07d}.json")
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["_bin"] = path[:-len(".json")] + ".bin"
        return meta
