"""Unit tests for the File Fixup repair of raw packets."""

from repro.core import integrity_ok, repair
from repro.model import (
    Blob, Block, Crc32Fixup, DataModel, Number, attach_fixup, size_of,
)


def _model():
    return DataModel("m", Block("m.root", [
        Number("id", 1, default=9, token=True),
        size_of(Number("size", 1), "payload"),
        Blob("payload", default=b"\x01\x02"),
        attach_fixup(Number("crc", 4), Crc32Fixup(["id", "size", "payload"])),
    ]))


class TestRepair:
    def test_intact_packet_unchanged(self):
        model = _model()
        raw = model.build_default().raw
        assert repair(model, raw) == raw

    def test_corrupted_crc_repaired(self):
        model = _model()
        raw = bytearray(model.build_default().raw)
        raw[-1] ^= 0xFF
        fixed = repair(model, bytes(raw))
        assert fixed is not None
        assert integrity_ok(model, fixed)
        assert not integrity_ok(model, bytes(raw))

    def test_structurally_alien_packet_unrepairable(self):
        model = _model()
        assert repair(model, b"\x00") is None

    def test_repair_preserves_payload_content(self):
        model = _model()
        raw = bytearray(model.build_default().raw)
        raw[-1] ^= 0xFF
        fixed = repair(model, bytes(raw))
        assert model.parse(fixed).find("payload").value == b"\x01\x02"

    def test_integrity_ok_predicate(self):
        model = _model()
        raw = model.build_default().raw
        assert integrity_ok(model, raw)
        assert not integrity_ok(model, raw[:-1])


class TestRepairWithStructure:
    def test_choice_shape_preserved(self):
        from repro.model import Choice
        model = DataModel("m", Block("m.root", [
            Choice("c", [
                Number("a", 1, default=1, token=True),
                Number("b", 1, default=2, token=True),
            ]),
            attach_fixup(Number("crc", 4), Crc32Fixup(["c"])),
        ]))
        # build the second alternative by hand and corrupt its CRC
        import zlib
        packet = bytearray(b"\x02" + (0).to_bytes(4, "big"))
        fixed = repair(model, bytes(packet))
        assert fixed is not None
        assert fixed[0] == 2
        assert int.from_bytes(fixed[1:], "big") == \
            (zlib.crc32(b"\x02") & 0xFFFFFFFF)

    def test_repeat_count_preserved(self):
        from repro.model import Repeat, count_of
        model = DataModel("m", Block("m.root", [
            count_of(Number("n", 1), "items"),
            Repeat("items", Number("item", 1, default=0), max_count=8),
        ]))
        packet = bytes((3, 10, 11, 12))
        fixed = repair(model, packet)
        assert fixed == packet  # already consistent
