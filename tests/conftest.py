"""Shared fixtures: the paper's Fig. 1 data model and seeded RNGs."""

from __future__ import annotations

import random

import pytest

from repro.model import (
    Blob, Block, Crc32Fixup, DataModel, Number, attach_fixup, size_of,
)


@pytest.fixture
def rng():
    return random.Random(0xDAC2020)


@pytest.fixture
def fig1_model():
    """The paper's Figure 1 model M: ID, Size(sizeof Data), Data, CRC.

    Data contains CompressionCode, SampleRate and ExtraData; Size carries
    sizeof(Data) via a Relation and CRC is a Crc32Fixup over the rest.
    """
    data = Block("Data", [
        Number("CompressionCode", 2, default=1),
        Number("SampleRate", 4, default=44_100),
        Blob("ExtraData", default=b"\x01\x02\x03"),
    ])
    return DataModel("fig1", Block("root", [
        Number("ID", 1, default=0x7F, token=True),
        size_of(Number("Size", 2), "Data"),
        data,
        attach_fixup(Number("CRC", 4), Crc32Fixup(["ID", "Size", "Data"])),
    ]))
