"""libmodbus-analog target: Modbus/TCP server, codec and pit."""

from repro.protocols.modbus.codec import (
    ALL_FUNCTION_CODES, build_diagnostics, build_mask_write, build_mbap,
    build_read_request, build_read_write_multiple, build_write_multiple_coils,
    build_write_multiple_registers, build_write_single, parse_mbap,
    parse_response,
)
from repro.protocols.modbus.model import make_pit, make_state_model
from repro.protocols.modbus.server import ModbusServer

__all__ = [
    "ALL_FUNCTION_CODES", "ModbusServer", "build_diagnostics",
    "build_mask_write", "build_mbap", "build_read_request",
    "build_read_write_multiple", "build_write_multiple_coils",
    "build_write_multiple_registers", "build_write_single", "make_pit",
    "make_state_model", "parse_mbap", "parse_response",
]
