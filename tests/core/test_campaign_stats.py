"""Unit tests for the campaign driver and the headline statistics."""

import pytest

from repro.core import (
    CampaignConfig, average_paths_at, average_series, bugs_found,
    merge_crash_reports, path_increase_pct, run_campaign, run_repetitions,
    speedup_to_reference, time_to_bugs,
)
from repro.core.campaign import CampaignResult
from repro.core.stats import compare
from repro.protocols import get_target
from repro.sanitizer.report import CrashReport


def _quick_config(**kwargs):
    defaults = dict(budget_hours=0.5, max_executions=120, record_every=10)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestRunCampaign:
    def test_budget_respected(self):
        spec = get_target("iec104")
        result = run_campaign("peach", spec, seed=1, config=_quick_config())
        assert result.executions <= 120
        assert result.series[0] == (0.0, 0)
        assert result.series[-1][1] == result.final_paths

    def test_series_monotone_nondecreasing(self):
        spec = get_target("iec104")
        result = run_campaign("peach-star", spec, seed=1,
                              config=_quick_config())
        hours = [h for h, _p in result.series]
        paths = [p for _h, p in result.series]
        assert hours == sorted(hours)
        assert paths == sorted(paths)

    def test_paths_at_interpolates_steps(self):
        result = CampaignResult(
            engine_name="peach", target_name="t", seed=0,
            series=[(0.0, 0), (1.0, 5), (2.0, 9)], final_paths=9,
            final_edges=0, executions=0, unique_crashes=[], crash_times={},
            stats={})
        assert result.paths_at(0.5) == 0
        assert result.paths_at(1.0) == 5
        assert result.paths_at(1.5) == 5
        assert result.paths_at(10.0) == 9

    def test_time_to_paths(self):
        result = CampaignResult(
            engine_name="peach", target_name="t", seed=0,
            series=[(0.0, 0), (1.0, 5), (2.0, 9)], final_paths=9,
            final_edges=0, executions=0, unique_crashes=[], crash_times={},
            stats={})
        assert result.time_to_paths(5) == 1.0
        assert result.time_to_paths(6) == 2.0
        assert result.time_to_paths(100) is None

    def test_repetitions_use_distinct_seeds(self):
        spec = get_target("iec104")
        results = run_repetitions("peach", spec, repetitions=2,
                                  config=_quick_config(max_executions=40))
        assert results[0].seed != results[1].seed


class TestAggregates:
    def _fake(self, series, crash_times=None):
        return CampaignResult(
            engine_name="e", target_name="t", seed=0, series=series,
            final_paths=series[-1][1], final_edges=0, executions=0,
            unique_crashes=[], crash_times=crash_times or {}, stats={})

    def test_average_paths_at(self):
        results = [self._fake([(0.0, 0), (1.0, 10)]),
                   self._fake([(0.0, 0), (1.0, 20)])]
        assert average_paths_at(results, 1.0) == 15.0

    def test_average_series(self):
        results = [self._fake([(0.0, 0), (1.0, 10), (2.0, 20)])]
        assert average_series(results, [1.0, 2.0]) == [(1.0, 10.0),
                                                       (2.0, 20.0)]

    def test_path_increase_pct(self):
        peach = [self._fake([(0.0, 0), (1.0, 100)])]
        star = [self._fake([(0.0, 0), (1.0, 127)])]
        assert path_increase_pct(peach, star, 1.0) == pytest.approx(27.0)

    def test_speedup_to_reference(self):
        star = [self._fake([(0.0, 0), (2.0, 50), (24.0, 80)])]
        # peach needed 24h for 50 paths; star had them at 2h -> 12X
        assert speedup_to_reference(star, 50, 24.0) == pytest.approx(12.0)

    def test_speedup_none_when_unreached(self):
        star = [self._fake([(0.0, 0), (24.0, 10)])]
        assert speedup_to_reference(star, 50, 24.0) is None

    def test_compare_summary(self):
        peach = [self._fake([(0.0, 0), (24.0, 40)])]
        star = [self._fake([(0.0, 0), (6.0, 40), (24.0, 50)])]
        summary = compare(peach, star, 24.0)
        assert summary.path_increase_pct == pytest.approx(25.0)
        assert summary.speedup == pytest.approx(4.0)
        assert "speedup" in summary.row()

    def test_time_to_bugs_takes_earliest(self):
        a = self._fake([(0.0, 0)], {("SEGV", "x"): 5.0})
        b = self._fake([(0.0, 0)], {("SEGV", "x"): 2.0,
                                    ("SEGV", "y"): 9.0})
        earliest = time_to_bugs([a, b])
        assert earliest[("SEGV", "x")] == 2.0
        assert earliest[("SEGV", "y")] == 9.0

    def test_bugs_found_counts_repetitions(self):
        a = self._fake([(0.0, 0)], {("SEGV", "x"): 5.0})
        b = self._fake([(0.0, 0)], {("SEGV", "x"): 2.0})
        assert bugs_found([a, b]) == {("SEGV", "x"): 2}

    def _shard_with_report(self, hours):
        """A shard result whose crash carries both a report and a time
        (the shape real campaigns and fleet shards produce)."""
        report = CrashReport(kind="SEGV", site="x", detail="",
                            packet=b"\x01", execution_index=int(hours * 10))
        return CampaignResult(
            engine_name="e", target_name="t", seed=0,
            series=[(0.0, 0)], final_paths=0, final_edges=0, executions=0,
            unique_crashes=[report],
            crash_times={report.dedup_key: hours},
            stats={"crashes_total": 1})

    def test_time_to_bugs_out_of_order_shards(self):
        """Regression: time_to_bugs now folds through
        CrashDatabase.merge, so the earliest first-seen must win no
        matter what order parallel shard results come back in."""
        shards = [self._shard_with_report(hours)
                  for hours in (7.0, 2.0, 11.0, 4.5)]
        expected = {("SEGV", "x"): 2.0}
        assert time_to_bugs(shards) == expected
        assert time_to_bugs(list(reversed(shards))) == expected
        assert time_to_bugs(shards[2:] + shards[:2]) == expected

    def test_merge_crash_reports_keeps_earliest_representative(self):
        late, early = self._shard_with_report(9.0), \
            self._shard_with_report(1.5)
        merged = merge_crash_reports([late, early])
        assert merged.unique_count() == 1
        assert merged.first_seen[("SEGV", "x")] == 1.5
        # the representative report follows the earliest observation
        assert merged.unique_reports()[0].execution_index == 15
        assert merged.total_crashes == 2
