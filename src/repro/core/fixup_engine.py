"""File Fixup: re-establish packet integrity after splicing (paper §IV-D).

Protocol packets carry integrity constraints — size-of, count-of and
checksums — that donor splicing can break.  Peach* reuses Peach's
Relation/Fixup machinery for repair; in this implementation that
machinery lives in ``DataModel.build``, which the semantic generator
already routes through.  This module exposes the same repair for *raw*
byte strings (e.g. packets assembled outside the model layer, or an
ablation that splices raw puzzles), plus a checker used by tests and the
ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.model.datamodel import DataModel, ValueProvider
from repro.model.fields import Choice, Field, ParseError, Repeat
from repro.model.instree import InsTree


class TreeEchoProvider(ValueProvider):
    """Rebuilds a model from a (possibly inconsistent) parsed tree,
    letting build's relation/fixup passes overwrite the broken carriers."""

    def __init__(self, tree: InsTree):
        self._values = tree.leaf_values()
        self._tree = tree

    def leaf_value(self, field: Field, path: str):
        return self._values.get(path)

    def choose_option(self, choice: Choice, path: str) -> int:
        node = self._tree.find(choice.name)
        if node is not None and node.children:
            chosen = node.children[0].field
            for index, option in enumerate(choice.children()):
                if option is chosen:
                    return index
        return 0

    def repeat_count(self, repeat: Repeat, path: str) -> int:
        node = self._tree.find(repeat.name)
        if node is not None:
            return len(node.children)
        return max(repeat.min_count, 1)


def repair(model: DataModel, packet: bytes) -> Optional[bytes]:
    """Repair *packet*'s relations and fixups under *model*.

    The packet is parsed leniently (fixups unverified), re-built through
    the relation/fixup pipeline, and re-serialized.  Returns ``None``
    when the packet does not even structurally match the model — nothing
    to repair against.
    """
    try:
        tree = model.parse(packet)
    except ParseError:
        return None
    rebuilt = model.build(TreeEchoProvider(tree))
    return model.to_wire(rebuilt)


def integrity_ok(model: DataModel, packet: bytes) -> bool:
    """True when *packet* parses under *model* with all fixups verifying."""
    try:
        model.parse(packet, verify_fixups=True)
    except ParseError:
        return False
    return True
