"""Divergence-aware seed scoring (``--steer-divergence``).

A frame whose parse paths disagree is interesting even when it reaches
no new coverage: the disagreement itself marks territory worth mutating
around.  With steering on, a divergence-bearing execution that the
coverage oracle alone would discard is force-added to the corpus —
without re-folding its map into the virgin bits, so journal-replay
resume stays idempotent.
"""

import pytest

from repro.core import (
    CampaignConfig, make_engine, resume_campaign, run_campaign,
)
from repro.protocols import get_target

_IEC104 = get_target("iec104")


def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=400, record_every=10,
                checkpoint_every=50, channel_faults=0.25,
                steer_divergence=True)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series, result.final_paths, result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        sorted(report.dedup_key for report in result.unique_divergences),
        result.crash_times, result.stats, result.path_hashes,
    )


class TestSteering:
    def test_divergence_bearing_seed_enters_the_corpus(self):
        steered = run_campaign("peach-star", _IEC104, seed=11,
                               config=_config())
        plain = run_campaign("peach-star", _IEC104, seed=11,
                             config=_config(steer_divergence=False))
        assert steered.stats["steered_seeds"] > 0
        assert plain.stats["steered_seeds"] == 0
        # every steered seed is a corpus entry the coverage oracle alone
        # did not admit: the steered path count grows past the baseline
        assert steered.final_paths > plain.final_paths
        assert steered.stats["valuable_seeds"] == steered.final_paths

    def test_steering_applies_in_session_mode(self):
        steered = run_campaign("peach-star", _IEC104, seed=11,
                               config=_config(sessions=True))
        assert steered.stats["steered_seeds"] > 0

    def test_steering_auto_enables_the_differential_oracle(self):
        # steering without an explicit channel-fault rate still needs
        # the oracle running, or there is nothing to steer on
        engine = make_engine("peach-star", _IEC104, 0,
                             _config(channel_faults=0.0))
        assert engine.oracle is not None
        off = make_engine("peach-star", _IEC104, 0,
                          _config(channel_faults=0.0,
                                  steer_divergence=False))
        assert off.oracle is None

    def test_steered_campaign_kill_resume_bit_identical(self, tmp_path):
        full = run_campaign(
            "peach-star", _IEC104, seed=11,
            config=_config(workspace=str(tmp_path / "full")))
        assert full.stats["steered_seeds"] > 0

        killed_dir = str(tmp_path / "killed")
        assert run_campaign("peach-star", _IEC104, seed=11,
                            config=_config(workspace=killed_dir),
                            stop_after_executions=173) is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)
