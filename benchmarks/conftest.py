"""Shared benchmark configuration.

Every benchmark regenerates one artifact of the paper's evaluation and
prints the same rows/series the paper reports.  Scale knobs (all via
environment variables so CI and full runs share code):

* ``REPRO_BENCH_HOURS``  — simulated budget per campaign (default 24,
  the paper's budget; the virtual clock compresses this to ~1.5k-2.4k
  executions per campaign).
* ``REPRO_BENCH_REPS``   — repetitions per engine/target (default 2;
  the paper uses 10).
"""

from __future__ import annotations

import os

import pytest

from repro.core import CampaignConfig

BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "24"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2"))


def bench_config() -> CampaignConfig:
    return CampaignConfig(budget_hours=BENCH_HOURS, record_every=20)


@pytest.fixture
def config():
    return bench_config()


def print_block(title: str, body: str) -> None:
    """Print a labelled report block (visible with -s / benchmark runs)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
