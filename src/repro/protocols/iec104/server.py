"""IEC104-analog server: the small IEC 60870-5-104 target.

Models the simple open-source ``IEC104`` project the paper fuzzes: a
compact state machine handling U/S/I frames with a shallow ASDU decoder
covering interrogation, single command, clock sync and single-point
telegrams.  Smallest code scale of the six targets — the paper's Fig. 4b
shows only dozens of paths for it.  No vulnerabilities are seeded
(Table I lists none for this project); every access is bounds-checked.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.iec104 import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import SimHeap


class Iec104Server(ProtocolServer):
    """Minimal CS104 slave: STARTDT gating plus a shallow ASDU handler."""

    name = "IEC104"

    def __init__(self):
        # The fuzzing harness models an established connection, so data
        # transfer starts enabled (as if STARTDT was exchanged on connect);
        # a STOPDT inside the same execution can still disable it.
        self.started = True
        self.recv_seq = 0
        self.send_seq = 0

    def reset(self) -> None:
        self.started = True
        self.recv_seq = 0
        self.send_seq = 0

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        if len(data) < 6:
            return None
        frame = heap.malloc_from(data, "apci-frame")
        start = heap.read_u8(frame, 0, "iec104.c:start_byte")
        if start != codec.START_BYTE:
            return None
        length = heap.read_u8(frame, 1, "iec104.c:apci_length")
        if length < codec.MIN_LENGTH or length > codec.MAX_LENGTH:
            return None
        if length + 2 != len(data):
            return None
        ctrl1 = heap.read_u8(frame, 2, "iec104.c:ctrl1")
        if ctrl1 & 0x01 == 0:
            return self._handle_i_frame(heap, frame, length)
        if ctrl1 & 0x03 == 0x01:
            return self._handle_s_frame(heap, frame)
        return self._handle_u_frame(ctrl1)

    # -- U-format ------------------------------------------------------------

    def _handle_u_frame(self, ctrl1: int) -> Optional[bytes]:
        if ctrl1 == codec.U_STARTDT_ACT:
            self.started = True
            return codec.build_u_frame(codec.U_STARTDT_CON)
        if ctrl1 == codec.U_STOPDT_ACT:
            self.started = False
            return codec.build_u_frame(codec.U_STOPDT_CON)
        if ctrl1 == codec.U_TESTFR_ACT:
            return codec.build_u_frame(codec.U_TESTFR_CON)
        if ctrl1 in (codec.U_STARTDT_CON, codec.U_STOPDT_CON,
                     codec.U_TESTFR_CON):
            return None  # confirmations are ignored by a slave
        return None

    # -- S-format ------------------------------------------------------------

    def _handle_s_frame(self, heap: SimHeap, frame) -> Optional[bytes]:
        ctrl3 = heap.read_u8(frame, 4, "iec104.c:s_recv_lo")
        ctrl4 = heap.read_u8(frame, 5, "iec104.c:s_recv_hi")
        acked = (ctrl4 << 7) | (ctrl3 >> 1)
        if acked > self.send_seq:
            return None  # ack beyond what we sent: ignored
        return None

    # -- I-format ------------------------------------------------------------

    def _handle_i_frame(self, heap: SimHeap, frame,
                        length: int) -> Optional[bytes]:
        asdu_len = length - codec.APCI_CONTROL_LEN
        if asdu_len < 6:
            return None  # simple implementation drops short ASDUs safely
        self.recv_seq = (self.recv_seq + 1) & 0x7FFF
        type_id = heap.read_u8(frame, 6, "iec104.c:asdu_type")
        vsq = heap.read_u8(frame, 7, "iec104.c:asdu_vsq")
        cot = heap.read_u8(frame, 8, "iec104.c:asdu_cot") & 0x3F
        ca = heap.read_u16(frame, 10, "iec104.c:asdu_ca", endian="little")
        if ca == 0 or ca == 0xFFFF and type_id != codec.C_IC_NA_1:
            return None  # broadcast only valid for interrogation
        if type_id == codec.C_IC_NA_1:
            return self._interrogation(heap, frame, asdu_len, cot, ca)
        if type_id == codec.C_SC_NA_1:
            return self._single_command(heap, frame, asdu_len, cot, ca)
        if type_id == codec.C_CS_NA_1:
            return self._clock_sync(heap, frame, asdu_len, cot, ca)
        if type_id == codec.M_SP_NA_1:
            return None  # monitored data from a peer: logged, no reply
        return self._negative_confirm(type_id, vsq, ca)

    def _interrogation(self, heap: SimHeap, frame, asdu_len: int,
                       cot: int, ca: int) -> Optional[bytes]:
        if not self.started:
            return None
        if cot != 6:  # activation
            return None
        if asdu_len < 10:
            return None
        qoi = heap.read_u8(frame, 15, "iec104.c:qoi")
        if qoi != 20 and not 21 <= qoi <= 36:
            return self._negative_confirm(codec.C_IC_NA_1, 1, ca)
        # activation confirmation followed by one telegram
        asdu = codec.build_asdu(codec.C_IC_NA_1, 1, 7, ca, 0,
                                bytes((qoi,)))
        response = codec.build_i_frame(self.send_seq, self.recv_seq, asdu)
        self.send_seq = (self.send_seq + 1) & 0x7FFF
        return response

    def _single_command(self, heap: SimHeap, frame, asdu_len: int,
                        cot: int, ca: int) -> Optional[bytes]:
        if not self.started:
            return None
        if asdu_len < 10:
            return None
        if cot not in (6, 8):  # activation / deactivation
            return None
        sco = heap.read_u8(frame, 15, "iec104.c:sco")
        select = bool(sco & 0x80)
        asdu = codec.build_asdu(codec.C_SC_NA_1, 1, 7 if select else 10, ca,
                                0, bytes((sco,)))
        response = codec.build_i_frame(self.send_seq, self.recv_seq, asdu)
        self.send_seq = (self.send_seq + 1) & 0x7FFF
        return response

    def _clock_sync(self, heap: SimHeap, frame, asdu_len: int,
                    cot: int, ca: int) -> Optional[bytes]:
        if cot != 6:
            return None
        if asdu_len < 16:
            return None  # CP56Time2a needs 7 octets — checked, unlike lib60870
        milliseconds = heap.read_u16(frame, 15, "iec104.c:cp56_ms",
                                     endian="little")
        minute = heap.read_u8(frame, 17, "iec104.c:cp56_min") & 0x3F
        hour = heap.read_u8(frame, 18, "iec104.c:cp56_hour") & 0x1F
        if minute > 59 or hour > 23 or milliseconds > 59_999:
            return None
        asdu = codec.build_asdu(codec.C_CS_NA_1, 1, 7, ca, 0,
                                bytes(heap.read(frame, 15, 7,
                                                "iec104.c:cp56_echo")))
        response = codec.build_i_frame(self.send_seq, self.recv_seq, asdu)
        self.send_seq = (self.send_seq + 1) & 0x7FFF
        return response

    def _negative_confirm(self, type_id: int, vsq: int,
                          ca: int) -> Optional[bytes]:
        if not self.started:
            return None
        asdu = codec.build_asdu(type_id, vsq, 44 | 0x40, ca, 0)
        response = codec.build_i_frame(self.send_seq, self.recv_seq, asdu)
        self.send_seq = (self.send_seq + 1) & 0x7FFF
        return response
