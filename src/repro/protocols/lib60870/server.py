"""lib60870-analog server: full CS104 slave with three seeded SEGVs.

This target mirrors the packet-processing path of mz-automation's
lib60870-C: APCI demultiplexing, ``CS101_ASDU`` header accessors, and a
per-type information-object decoder feeding slave-side handlers.

Three vulnerabilities are seeded, matching Table I's lib60870 row
(3 × SEGV):

* ``cs101_asdu.c:CS101_ASDU_getCOT`` — the paper's Listing 1: the COT
  accessor reads ``asdu[2]`` without verifying the ASDU buffer actually
  has three bytes; an I-frame whose APCI length admits a 1- or 2-byte
  ASDU makes the computed address fall outside the allocation.
* ``cs101_slave.c:lookup_object`` — setpoint commands resolve the target
  information object via ``table_base + (ioa - base) * entry`` without a
  range check on the packet-supplied IOA (wild address).
* ``cs104_slave.c:handle_clock_sync`` — the clock-sync handler reads the
  7-octet CP56Time2a tag byte-by-byte from a computed offset without
  verifying the ASDU payload is long enough.

Everything else is bounds-checked; malformed traffic is answered with the
negative-confirmation COTs the real library uses.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.lib60870 import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import Pointer, SimHeap

IOA_BASE = codec.IOA_BASE
OBJECT_TABLE_ENTRIES = codec.OBJECT_TABLE_ENTRIES
OBJECT_ENTRY_SIZE = codec.OBJECT_ENTRY_SIZE

_U_CONFIRMS = {0x07: 0x0B, 0x13: 0x23, 0x43: 0x83}


class Lib60870Server(ProtocolServer):
    """CS104 slave with the lib60870 processing pipeline."""

    name = "lib60870"

    def __init__(self):
        self.started = True
        self.recv_seq = 0
        self.send_seq = 0

    def reset(self) -> None:
        self.started = True
        self.recv_seq = 0
        self.send_seq = 0

    # ------------------------------------------------------------------
    # APCI layer
    # ------------------------------------------------------------------

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        if len(data) < 6:
            return None
        frame = heap.malloc_from(data, "apci-frame")
        if heap.read_u8(frame, 0, "cs104_frame.c:start") != codec.START_BYTE:
            return None
        length = heap.read_u8(frame, 1, "cs104_frame.c:length")
        if length < 4 or length + 2 != len(data):
            return None
        ctrl1 = heap.read_u8(frame, 2, "cs104_frame.c:ctrl1")
        if ctrl1 & 0x01 == 0:
            return self._handle_asdu_frame(heap, frame, length)
        if ctrl1 & 0x03 == 0x01:
            return None  # S-frame: sequence bookkeeping only
        confirm = _U_CONFIRMS.get(ctrl1)
        if confirm is None:
            return None
        if ctrl1 == 0x07:
            self.started = True
        elif ctrl1 == 0x13:
            self.started = False
        return codec.build_u_frame(confirm)

    # ------------------------------------------------------------------
    # CS101_ASDU accessors (the paper's Listing 1 lives here)
    # ------------------------------------------------------------------

    def _asdu_get_type(self, heap: SimHeap, asdu: Pointer) -> int:
        return heap.read_u8(asdu, 0, "cs101_asdu.c:CS101_ASDU_getTypeID")

    def _asdu_get_vsq(self, heap: SimHeap, asdu: Pointer) -> int:
        return heap.read_u8(asdu, 1, "cs101_asdu.c:CS101_ASDU_getVSQ")

    def _asdu_get_cot(self, heap: SimHeap, asdu: Pointer) -> int:
        # SEEDED BUG (lib60870 row, SEGV #1 — the paper's Listing 1):
        # return (CauseOfTransmission)(self->asdu[2] & 0x3f) without any
        # length verification.  The read goes through a *computed address*
        # so a 1- or 2-byte ASDU dereferences past the allocation.
        value = heap.deref_read(asdu.address + 2, 1,
                                "cs101_asdu.c:CS101_ASDU_getCOT")[0]
        return value & 0x3F

    def _asdu_get_ca(self, heap: SimHeap, asdu: Pointer, size: int) -> int:
        if size < 6:
            return 0
        return heap.read_u16(asdu, 4, "cs101_asdu.c:CS101_ASDU_getCA",
                             endian="little")

    # ------------------------------------------------------------------
    # ASDU processing
    # ------------------------------------------------------------------

    def _handle_asdu_frame(self, heap: SimHeap, frame: Pointer,
                           length: int) -> Optional[bytes]:
        if not self.started:
            return None
        self.recv_seq = (self.recv_seq + 1) & 0x7FFF
        asdu_size = length - 4
        if asdu_size < 1:
            return None  # empty I-frame payload: dropped at APCI level
        # lib60870 copies the ASDU region into its own buffer of exactly
        # the received size — short ASDUs yield short buffers.
        payload = heap.read(frame, 6, asdu_size, "cs104_slave.c:copy_asdu")
        asdu = heap.malloc_from(payload, "asdu-buffer")
        type_id = self._asdu_get_type(heap, asdu)
        if asdu_size >= 2:
            vsq = self._asdu_get_vsq(heap, asdu)
        else:
            vsq = 0
        cot = self._asdu_get_cot(heap, asdu)  # unchecked: Listing 1
        ca = self._asdu_get_ca(heap, asdu, asdu_size)
        element_size = codec.ELEMENT_SIZE.get(type_id)
        if element_size is None:
            return self._confirm(type_id, vsq, codec.COT_UNKNOWN_TYPE_ID, ca)
        if asdu_size < 6:
            return None  # header incomplete for known types
        count = vsq & 0x7F
        sequence = bool(vsq & 0x80)
        if count == 0:
            return self._confirm(type_id, vsq, codec.COT_UNKNOWN_COT, ca)
        if ca == 0:
            return self._confirm(type_id, vsq, codec.COT_UNKNOWN_CA, ca)
        return self._dispatch_type(heap, asdu, asdu_size, type_id, count,
                                   sequence, cot, ca)

    def _dispatch_type(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                       type_id: int, count: int, sequence: bool, cot: int,
                       ca: int) -> Optional[bytes]:
        if type_id == codec.C_IC_NA_1:
            return self._interrogation(heap, asdu, asdu_size, cot, ca)
        if type_id == codec.C_CI_NA_1:
            return self._counter_interrogation(heap, asdu, asdu_size, cot, ca)
        if type_id == codec.C_CS_NA_1:
            return self._clock_sync(heap, asdu, asdu_size, cot, ca)
        if type_id == codec.C_RD_NA_1:
            return self._read_command(heap, asdu, asdu_size, cot, ca)
        if type_id in (codec.C_SC_NA_1, codec.C_DC_NA_1, codec.C_RC_NA_1):
            return self._simple_command(heap, asdu, asdu_size, type_id,
                                        cot, ca)
        if type_id in (codec.C_SE_NA_1, codec.C_SE_NB_1, codec.C_SE_NC_1):
            return self._setpoint(heap, asdu, asdu_size, type_id, cot, ca)
        # monitor-direction types received by a slave: decode and drop
        return self._monitor_data(heap, asdu, asdu_size, type_id, count,
                                  sequence)

    # -- control-direction handlers -------------------------------------------

    def _interrogation(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                       cot: int, ca: int) -> Optional[bytes]:
        if cot not in (codec.COT_ACTIVATION, codec.COT_DEACTIVATION):
            return self._confirm(codec.C_IC_NA_1, 1, codec.COT_UNKNOWN_COT,
                                 ca)
        if asdu_size < 10:
            return None
        qoi = heap.read_u8(asdu, 9, "cs104_slave.c:qoi")
        if qoi != 20 and not 21 <= qoi <= 36:
            return self._confirm(codec.C_IC_NA_1, 1,
                                 codec.COT_ACTIVATION_CON, ca)
        objects = codec.build_object(0, bytes((qoi,)))
        reply = codec.build_asdu(codec.C_IC_NA_1, 1, False,
                                 codec.COT_ACTIVATION_CON, 0, ca, objects)
        return self._send(reply)

    def _counter_interrogation(self, heap: SimHeap, asdu: Pointer,
                               asdu_size: int, cot: int,
                               ca: int) -> Optional[bytes]:
        if cot != codec.COT_ACTIVATION:
            return self._confirm(codec.C_CI_NA_1, 1, codec.COT_UNKNOWN_COT,
                                 ca)
        if asdu_size < 10:
            return None
        qcc = heap.read_u8(asdu, 9, "cs104_slave.c:qcc")
        freeze = (qcc >> 6) & 0x03
        group = qcc & 0x3F
        if group > 4:
            return self._confirm(codec.C_CI_NA_1, 1,
                                 codec.COT_ACTIVATION_CON, ca)
        objects = codec.build_object(0, bytes((qcc,)))
        cot_out = codec.COT_ACTIVATION_CON if freeze == 0 else \
            codec.COT_ACTIVATION_TERMINATION
        reply = codec.build_asdu(codec.C_CI_NA_1, 1, False, cot_out, 0, ca,
                                 objects)
        return self._send(reply)

    def _clock_sync(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                    cot: int, ca: int) -> Optional[bytes]:
        if cot != codec.COT_ACTIVATION:
            return self._confirm(codec.C_CS_NA_1, 1, codec.COT_UNKNOWN_COT,
                                 ca)
        # SEEDED BUG (lib60870 row, SEGV #3): the handler trusts the type
        # table and reads the 7 CP56Time2a octets from a computed offset
        # without checking the ASDU actually carries them.
        time_octets = []
        for index in range(7):
            octet = heap.deref_read(asdu.address + 9 + index, 1,
                                    "cs104_slave.c:handle_clock_sync")[0]
            time_octets.append(octet)
        minute = time_octets[2] & 0x3F
        hour = time_octets[3] & 0x1F
        if minute > 59 or hour > 23:
            return self._confirm(codec.C_CS_NA_1, 1,
                                 codec.COT_ACTIVATION_CON, ca)
        objects = codec.build_object(0, bytes(time_octets))
        reply = codec.build_asdu(codec.C_CS_NA_1, 1, False,
                                 codec.COT_ACTIVATION_CON, 0, ca, objects)
        return self._send(reply)

    def _read_command(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                      cot: int, ca: int) -> Optional[bytes]:
        if cot != 5:  # request
            return self._confirm(codec.C_RD_NA_1, 1, codec.COT_UNKNOWN_COT,
                                 ca)
        ioa = self._read_ioa(heap, asdu)
        if not IOA_BASE <= ioa < IOA_BASE + OBJECT_TABLE_ENTRIES:
            return self._confirm(codec.C_RD_NA_1, 1, codec.COT_UNKNOWN_IOA,
                                 ca)
        objects = codec.build_object(ioa, bytes((0x00, 0x10, 0x00)))
        reply = codec.build_asdu(codec.M_ME_NB_1, 1, False, 5, 0, ca, objects)
        return self._send(reply)

    def _simple_command(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                        type_id: int, cot: int, ca: int) -> Optional[bytes]:
        if cot not in (codec.COT_ACTIVATION, codec.COT_DEACTIVATION):
            return self._confirm(type_id, 1, codec.COT_UNKNOWN_COT, ca)
        if asdu_size < 10:
            return None
        ioa = self._read_ioa(heap, asdu)
        qualifier = heap.read_u8(asdu, 9, "cs101_slave.c:command_qualifier")
        if not IOA_BASE <= ioa < IOA_BASE + OBJECT_TABLE_ENTRIES:
            return self._confirm(type_id, 1, codec.COT_UNKNOWN_IOA, ca)
        if type_id == codec.C_DC_NA_1 and qualifier & 0x03 in (0, 3):
            # double command state 0/3 is invalid
            return self._confirm(type_id, 1, codec.COT_ACTIVATION_CON, ca)
        select = bool(qualifier & 0x80)
        cot_out = codec.COT_ACTIVATION_CON if not select else \
            codec.COT_ACTIVATION_CON
        objects = codec.build_object(ioa, bytes((qualifier,)))
        reply = codec.build_asdu(type_id, 1, False, cot_out, 0, ca, objects)
        return self._send(reply)

    def _setpoint(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                  type_id: int, cot: int, ca: int) -> Optional[bytes]:
        if cot != codec.COT_ACTIVATION:
            return self._confirm(type_id, 1, codec.COT_UNKNOWN_COT, ca)
        element_size = codec.ELEMENT_SIZE[type_id]  # value octets + QOS
        if asdu_size < 6 + 3 + element_size:
            return None
        ioa = self._read_ioa(heap, asdu)
        qos = heap.read_u8(asdu, 9 + element_size - 1,
                           "cs101_slave.c:setpoint_qos")
        if qos & 0x7F > 31:
            return self._confirm(type_id, 1, codec.COT_ACTIVATION_CON, ca)
        # SEEDED BUG (lib60870 row, SEGV #2): the slave database lookup
        # computes the entry address straight from the packet-supplied IOA.
        table = heap.malloc(OBJECT_TABLE_ENTRIES * OBJECT_ENTRY_SIZE,
                            "object-table")
        entry_address = table.address + (ioa - IOA_BASE) * OBJECT_ENTRY_SIZE
        entry_flags = heap.deref_read(entry_address, 1,
                                      "cs101_slave.c:lookup_object")[0]
        value = heap.read(asdu, 9, element_size - 1,
                          "cs101_slave.c:setpoint_value")
        if entry_flags & 0x01:
            return self._confirm(type_id, 1, codec.COT_ACTIVATION_CON, ca)
        objects = codec.build_object(ioa, value)
        reply = codec.build_asdu(type_id, 1, False,
                                 codec.COT_ACTIVATION_CON, 0, ca, objects)
        return self._send(reply)

    # -- monitor-direction decode ------------------------------------------

    def _monitor_data(self, heap: SimHeap, asdu: Pointer, asdu_size: int,
                      type_id: int, count: int,
                      sequence: bool) -> Optional[bytes]:
        element_size = codec.ELEMENT_SIZE[type_id]
        offset = 6
        decoded = 0
        for index in range(count):
            if sequence and index > 0:
                step = element_size  # IOA omitted after the first object
            else:
                step = 3 + element_size
            if offset + step > asdu_size:
                return None  # truncated object list: dropped (checked!)
            if not sequence or index == 0:
                offset += 3
            if element_size:
                element = heap.read(asdu, offset, element_size,
                                    "cs101_asdu.c:decode_element")
                self._decode_element(type_id, element)
            offset += element_size
            decoded += 1
        return None  # monitor data from a peer produces no reply

    def _decode_element(self, type_id: int, element: bytes) -> None:
        if type_id in (codec.M_SP_NA_1, codec.M_EI_NA_1):
            _value = element[0] & 0x01
        elif type_id == codec.M_DP_NA_1:
            _value = element[0] & 0x03
        elif type_id == codec.M_ST_NA_1:
            _value = element[0] & 0x7F
        elif type_id in (codec.M_ME_NA_1, codec.M_ME_NB_1):
            _value = int.from_bytes(element[0:2], "little", signed=True)
        elif type_id == codec.M_ME_NC_1:
            _value = int.from_bytes(element[0:4], "little")
        elif type_id == codec.M_IT_NA_1:
            _value = int.from_bytes(element[0:4], "little", signed=True)
        elif type_id in (codec.M_BO_NA_1, codec.M_SP_TB_1):
            _value = int.from_bytes(element[0:4], "little")
        else:
            _value = 0

    # -- shared reply plumbing ------------------------------------------------

    def _read_ioa(self, heap: SimHeap, asdu: Pointer) -> int:
        raw = heap.read(asdu, 6, 3, "cs101_asdu.c:read_ioa")
        return int.from_bytes(raw, "little")

    def _confirm(self, type_id: int, vsq: int, cot: int,
                 ca: int) -> Optional[bytes]:
        reply = codec.build_asdu(type_id, vsq & 0x7F or 1, False,
                                 cot | 0x40, 0, ca or 1, b"")
        return self._send(reply)

    def _send(self, asdu: bytes) -> bytes:
        frame = codec.build_apci_i(self.send_seq, self.recv_seq, asdu)
        self.send_seq = (self.send_seq + 1) & 0x7FFF
        return frame
