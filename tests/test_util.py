"""Unit tests for the shared utility helpers."""

from repro.util import clamp, fnv1a32, hexdump


class TestFnv1a32:
    def test_known_vectors(self):
        # standard FNV-1a 32-bit test vectors
        assert fnv1a32(b"") == 0x811C9DC5
        assert fnv1a32(b"a") == 0xE40C292C
        assert fnv1a32(b"foobar") == 0xBF9CF968

    def test_str_and_bytes_agree(self):
        assert fnv1a32("hello") == fnv1a32(b"hello")

    def test_stable_across_calls(self):
        assert fnv1a32("block:modbus.c:42") == fnv1a32("block:modbus.c:42")

    def test_always_32_bit(self):
        for text in ("", "x", "a" * 1000):
            assert 0 <= fnv1a32(text) <= 0xFFFFFFFF

    def test_distinct_for_similar_labels(self):
        assert fnv1a32("modbus.c:41") != fnv1a32("modbus.c:42")


class TestHexdump:
    def test_offsets_and_ascii_column(self):
        text = hexdump(bytes(range(32)))
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("00000000")
        assert lines[1].startswith("00000010")

    def test_printable_ascii_shown(self):
        text = hexdump(b"AB\x00CD")
        assert "|AB.CD|" in text

    def test_empty_input(self):
        assert hexdump(b"") == ""

    def test_custom_width(self):
        text = hexdump(bytes(8), width=4)
        assert len(text.splitlines()) == 2


class TestClamp:
    def test_inside_range(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_degenerate_range(self):
        assert clamp(5, 3, 3) == 3
