"""Unit tests for the seed pool and the two fuzzing engines."""

import random

from repro.core import (
    CampaignConfig, GenerationFuzzer, PeachStar, SeedPool, make_engine,
)
from repro.protocols import get_target
from repro.runtime import Target, TracingCollector
from repro.runtime.coverage import CoverageMap


class TestSeedPool:
    def _map(self, *blocks):
        cov = CoverageMap()
        for block in blocks:
            cov.visit(block)
        return cov

    def test_first_seed_valuable(self):
        pool = SeedPool()
        seed = pool.consider(b"pkt", "m", None, self._map(1, 2), 1, 0.0)
        assert seed is not None
        assert pool.path_count == 1

    def test_duplicate_coverage_not_valuable(self):
        pool = SeedPool()
        pool.consider(b"a", "m", None, self._map(1, 2), 1, 0.0)
        assert pool.consider(b"b", "m", None, self._map(1, 2), 2, 1.0) is None
        assert pool.path_count == 1

    def test_new_edges_grow_pool_and_edge_count(self):
        pool = SeedPool()
        pool.consider(b"a", "m", None, self._map(1), 1, 0.0)
        pool.consider(b"b", "m", None, self._map(9), 2, 1.0)
        assert pool.path_count == 2
        assert pool.edge_count == 2

    def test_seeds_iterable_with_metadata(self):
        pool = SeedPool()
        pool.consider(b"a", "model-x", None, self._map(1), 5, 123.0)
        seed = list(pool)[0]
        assert seed.model_name == "model-x"
        assert seed.execution_index == 5
        assert seed.sim_time_ms == 123.0


def _engine(engine_cls, seed=1, **kwargs):
    spec = get_target("libmodbus")
    target = Target(spec.make_server,
                    TracingCollector(("repro/protocols",)))
    return engine_cls(spec.make_pit(), target, random.Random(seed), **kwargs)


class TestGenerationFuzzer:
    def test_iterations_execute_and_count(self):
        engine = _engine(GenerationFuzzer)
        for _ in range(20):
            engine.iterate()
        assert engine.stats.executions == 20
        assert engine.path_count > 0  # measurement framework active

    def test_baseline_never_marks_semantic(self):
        engine = _engine(GenerationFuzzer)
        outcomes = [engine.iterate() for _ in range(20)]
        assert not any(outcome.semantic for outcome in outcomes)

    def test_clock_advances_per_execution(self):
        engine = _engine(GenerationFuzzer)
        engine.iterate()
        assert engine.clock.now_ms > 0


class TestPeachStar:
    def test_degrades_to_baseline_with_empty_corpus(self):
        """Paper §IV-A: before any valuable seed, the inherent strategy
        is used — the first packet can never be semantic."""
        engine = _engine(PeachStar)
        outcome = engine.iterate()
        assert not outcome.semantic

    def test_corpus_grows_after_valuable_seeds(self):
        engine = _engine(PeachStar)
        for _ in range(60):
            engine.iterate()
        assert not engine.corpus.is_empty
        assert engine.cracker.seeds_cracked == engine.stats.valuable_seeds

    def test_semantic_generation_kicks_in(self):
        engine = _engine(PeachStar)
        outcomes = [engine.iterate() for _ in range(150)]
        assert any(outcome.semantic for outcome in outcomes)
        assert engine.stats.semantic_executions > 0

    def test_crack_disabled_ablation(self):
        engine = _engine(PeachStar, crack_enabled=False)
        for _ in range(80):
            engine.iterate()
        assert engine.corpus.is_empty
        assert engine.stats.semantic_executions == 0

    def test_semantic_disabled_ablation(self):
        engine = _engine(PeachStar, semantic_enabled=False)
        for _ in range(80):
            engine.iterate()
        # corpus still builds (crack on), but no spliced executions
        assert engine.stats.semantic_executions == 0

    def test_crashing_seeds_not_queued(self):
        engine = _engine(PeachStar)
        for _ in range(300):
            outcome = engine.iterate()
            if outcome.result.crash is not None:
                assert not outcome.valuable

    def test_deterministic_under_seed(self):
        def run():
            engine = _engine(PeachStar, seed=99)
            return [engine.iterate().packet for _ in range(40)]

        assert run() == run()


class TestMakeEngine:
    def test_builds_both_engines(self):
        spec = get_target("iec104")
        peach = make_engine("peach", spec, 0, CampaignConfig())
        star = make_engine("peach-star", spec, 0, CampaignConfig())
        assert isinstance(peach, GenerationFuzzer)
        assert isinstance(star, PeachStar)
        assert peach.engine_name == "peach"
        assert star.engine_name == "peach-star"

    def test_unknown_engine_rejected(self):
        import pytest
        spec = get_target("iec104")
        with pytest.raises(ValueError):
            make_engine("afl", spec, 0, CampaignConfig())
