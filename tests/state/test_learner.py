"""Response-learned state machines: classifier, automaton, campaigns.

The PR 5 acceptance gates live here:

* **differential** — on the three PR 4 targets a seeded
  ``--learn-states`` campaign recovers an automaton whose reachable
  state set covers the hand-written model's states (every hand state's
  entry behaviour class is a learned state), and on IEC 104 it reaches
  the same STARTDT-gated session-only edges the PR 4 acceptance pin
  uses;
* **zero-modelling coverage** — on lib60870, which had no hand-written
  state model before this PR, a seeded learning campaign reaches
  state-gated edges a same-budget single-packet campaign cannot reach
  by construction;
* **determinism** — same seed + same target => bit-identical learned
  automaton and campaign results, including a mid-trace kill/resume
  (one landing inside the bootstrap-probe phase) and a 2-shard
  learning fleet.
"""

import json
import os
import random

import pytest

from repro.core import (
    CampaignConfig, resume_campaign, resume_fleet, run_campaign, run_fleet,
)
from repro.core.campaign import make_engine
from repro.protocols import PROTOCOLS_PATH_PREFIX, get_target
from repro.runtime.instrument import make_line_collector
from repro.runtime.target import Target
from repro.state import (
    LearnedStateModel, ResponseClassifier, TraceBinder, TraceStep,
    apply_pins, binding_hints, decode_trace, is_trace_blob,
)
from repro.state.learner import OVERFLOW_STATE, SILENT_STATE
from repro.store import CampaignWorkspace

#: the targets whose hand-written models the learner is diffed against
DIFFERENTIAL_TARGETS = ("iec104", "libmodbus", "opendnp3")


def _learn_config(**overrides):
    base = dict(budget_hours=24.0, max_executions=700, record_every=10,
                checkpoint_every=50, learn_states=True)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        result.path_hashes,
    )


def _learned_engine(spec, seed, config):
    """Run a learning campaign and hand back its engine (for the
    automaton and the virgin coverage map)."""
    engine = make_engine("peach-star", spec, seed, config)
    run_campaign("peach-star", spec, seed=seed, config=config,
                 engine=engine)
    return engine


def _hand_entry_labels(spec, seed=0x5E55, walk_steps=48):
    """hand state -> feature labels observed when *entering* it.

    Drives a seeded default-packet walk over the hand-written state
    model (pins applied, bindings live) until every state has been
    entered, classifying each response with the learner's classifier —
    the ground-truth behaviour class of each hand state.
    """
    state_model = spec.make_state_model()
    pit = spec.make_pit()
    classifier = ResponseClassifier(pit)
    rng = random.Random(seed)
    steps, entered = [], []
    state = state_model.initial
    names = {s.name for s in state_model.states()}
    for _ in range(walk_steps):
        transition = state_model.pick_transition(state, rng)
        model = pit.model(transition.send)
        tree = model.build_default()
        if transition.pin:
            tree, packet = apply_pins(model, tree, transition.pin)
        else:
            packet = model.to_wire(tree)
        steps.append(TraceStep(
            transition.send, packet, state=transition.to,
            bind=dict(transition.bind), capture=dict(transition.capture),
            expect=transition.expect))
        entered.append(transition.to)
        state = transition.to
        if set(entered) == names and len(steps) >= 10:
            break
    assert set(entered) == names, \
        f"walk never entered {names - set(entered)} on {spec.name}"
    binder = TraceBinder(pit, steps)
    target = Target(spec.make_server, None)
    result = target.run_trace(
        [(step.packet, step.model_name) for step in steps], binder)
    assert result.steps_executed == len(steps)
    labels = {}
    for index in range(result.steps_executed):
        label = classifier.classify(result.responses[index],
                                    steps[index].model_name)
        labels.setdefault(entered[index], set()).add(label)
    return labels


def _session_only_edges(spec, stopdt_model, follower_models):
    """Edges only a stop-then-send session can reach (directed)."""
    pit = spec.make_pit()
    stopdt = pit.model(stopdt_model).build_bytes()
    followers = tuple(pit.model(name).build_bytes()
                      for name in follower_models)
    collector = make_line_collector((PROTOCOLS_PATH_PREFIX,))
    target = Target(spec.make_server, collector)
    single_union = set()
    for packet in (stopdt,) + followers:
        single_union |= set(target.run(packet).coverage.journal)
    session_edges = set()
    for follower in followers:
        trace = target.run_trace([(stopdt, None), (follower, None)])
        session_edges |= set(trace.coverage.journal)
    return session_edges - single_union


class TestResponseClassifier:
    def test_silent_and_raw_classes(self):
        pit = get_target("iec104").make_pit()
        classifier = ResponseClassifier(pit)
        assert classifier.classify(None, "iec104.interrogation") == \
            SILENT_STATE
        # a reply with no feature leaves under any reading (raw_asdu
        # models the ASDU as an opaque blob) gets a bounded raw-shape
        # label; unknown request kinds (foreign imports) too
        label = classifier.classify(b"\xde\xad\xbe\xef" * 4,
                                    "iec104.raw_asdu")
        assert label.startswith("raw[")
        assert classifier.classify(b"\xde\xad\xbe\xef" * 4,
                                   "no.such.model") == label

    def test_legal_reply_carries_type_and_reason_leaves(self):
        spec = get_target("iec104")
        pit = spec.make_pit()
        classifier = ResponseClassifier(pit)
        target = Target(spec.make_server, None)
        reply = target.run(
            pit.model("iec104.interrogation").build_bytes()).response
        label = classifier.classify(reply, "iec104.interrogation")
        assert "type_id=100" in label and "cot=7" in label

    def test_reply_read_through_request_model_lenient_tokens(self):
        """U-frame confirms are no request shape: the lenient-token
        read through the request's own model surfaces the confirm
        function code as the feature."""
        spec = get_target("iec104")
        pit = spec.make_pit()
        classifier = ResponseClassifier(pit)
        target = Target(spec.make_server, None)
        stop_con = target.run(pit.model("iec104.stopdt").build_bytes())
        start_con = target.run(pit.model("iec104.startdt").build_bytes())
        stopped = classifier.classify(stop_con.response, "iec104.stopdt")
        started = classifier.classify(start_con.response, "iec104.startdt")
        assert stopped == "~u_function=35"   # STOPDT con 0x23
        assert started == "~u_function=11"   # STARTDT con 0x0B
        assert stopped != started

    def test_modbus_exception_feature_is_the_flagged_function(self):
        spec = get_target("libmodbus")
        pit = spec.make_pit()
        classifier = ResponseClassifier(pit)
        target = Target(spec.make_server, None)
        # an unsupported function code draws an exception response
        packet = bytearray(
            pit.model("modbus.read_holding_registers").build_bytes())
        packet[7] = 0x55
        reply = target.run(bytes(packet)).response
        label = classifier.classify(reply, "modbus.read_holding_registers")
        # the coarse raw_pdu model parses the exception frame legally,
        # so the label is the canonical (un-tilded) reading
        assert label == f"function={0x55 | 0x80}"

    def test_dnp3_iin_octets_become_features(self):
        """The IIN reason octets land in the request model's object
        header leaves; a legal-but-featureless catch-all parse must not
        hide them."""
        spec = get_target("opendnp3")
        pit = spec.make_pit()
        classifier = ResponseClassifier(pit)
        target = Target(spec.make_server, None)
        read = pit.model("dnp3.read_class_data").build_bytes()
        first = target.run(read)
        label = classifier.classify(first.response, "dnp3.read_class_data")
        assert "app_function=129" in label
        assert "group=128" in label  # IIN1 device-restart bit


class TestLearnedStateModel:
    def test_observation_grows_states_and_edges(self):
        spec = get_target("iec104")
        pit = spec.make_pit()
        learner = LearnedStateModel(pit)
        steps = [
            TraceStep("iec104.stopdt",
                      pit.model("iec104.stopdt").build_bytes()),
            TraceStep("iec104.interrogation",
                      pit.model("iec104.interrogation").build_bytes()),
        ]
        target = Target(spec.make_server, None)
        result = target.run_trace(
            [(s.packet, s.model_name) for s in steps])
        learner.observe(steps, result)
        labels = learner.state_labels()
        assert "~u_function=35" in labels
        assert SILENT_STATE in labels       # the gated I-frame drop
        # steps were re-annotated with the observed states
        assert steps[0].state == "~u_function=35"
        assert steps[1].state == SILENT_STATE
        assert learner.learned_state_count == len(labels)

    def test_walks_follow_learned_edges_and_explore(self, rng):
        pit = get_target("iec104").make_pit()
        learner = LearnedStateModel(pit)
        model_names = {model.name for model in pit}
        # an empty automaton always explores with pit models
        for _ in range(8):
            transition = learner.pick_transition(learner.initial, rng)
            assert transition.send in model_names
        # unknown states (stale labels from imports) explore too
        assert learner.pick_transition("no-such-state", rng) is not None

    def test_snapshot_restore_round_trip_preserves_order(self):
        spec = get_target("iec104")
        pit = spec.make_pit()
        learner = LearnedStateModel(pit)
        target = Target(spec.make_server, None)
        for model_name in ("iec104.stopdt", "iec104.startdt",
                           "iec104.interrogation"):
            steps = [TraceStep(model_name,
                               pit.model(model_name).build_bytes())]
            learner.observe(steps, target.run_trace(
                [(s.packet, s.model_name) for s in steps]))
        snap = learner.snapshot()
        json.dumps(snap)  # must be pure JSON
        clone = LearnedStateModel(pit)
        clone.restore(snap)
        assert clone.snapshot() == snap
        assert clone.state_labels() == learner.state_labels()

    def test_state_cap_collapses_into_overflow(self):
        pit = get_target("iec104").make_pit()
        learner = LearnedStateModel(pit, max_states=3)
        for index in range(8):
            label = learner._intern(f"class-{index}")
            assert label == f"class-{index}" or label == OVERFLOW_STATE
        assert learner.learned_state_count <= 3 + 1  # cap + overflow

    def test_binding_hints_come_from_the_hand_model(self):
        spec = get_target("iec104")
        hints = binding_hints(spec.make_state_model())
        bind, expect, capture = hints["iec104.interrogation"]
        assert bind == {"recv_seq_lo": "peer_send_lo",
                        "recv_seq_hi": "peer_send_hi"}
        assert expect == "iec104.interrogation"
        assert capture == {"peer_send_lo": "send_seq_lo",
                           "peer_send_hi": "send_seq_hi"}
        assert binding_hints(None) == {}

    def test_probe_transitions_play_the_pit_once(self):
        pit = get_target("iec104").make_pit()
        learner = LearnedStateModel(pit)
        played = []
        while True:
            chunk = learner.probe_transitions(6)
            if chunk is None:
                break
            assert 1 <= len(chunk) <= 6
            played.extend(t.send for t in chunk)
        assert played == [model.name for model in pit]
        assert learner.probe_transitions(6) is None


class TestLearnedCampaigns:
    def test_sessions_and_learn_states_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_engine("peach-star", get_target("iec104"), 0,
                        _learn_config(sessions=True))

    def test_unappliable_pins_leave_tree_and_packet_consistent(self):
        """apply_pins must not half-apply: when the Relation/Fixup
        rebuild rejects a pin set, the leaf edits are reverted so the
        returned tree still matches the returned wire bytes."""
        pit = get_target("libiccp").make_pit()
        model = pit.model("iccp.associate")
        tree = model.build_default()
        original = model.to_wire(tree)
        node = tree.find("blt_value")
        before = node.value
        # a value build() cannot encode: forces the failure path
        bad_tree, packet = apply_pins(model, tree, {"blt_value": object()})
        assert packet == original
        assert bad_tree.find("blt_value").value == before

    def test_learn_states_campaign_is_deterministic(self):
        spec = get_target("lib60870")
        one = _learned_engine(spec, 11, _learn_config())
        two = _learned_engine(spec, 11, _learn_config())
        assert one.state_model.snapshot() == two.state_model.snapshot()
        assert one.stats.as_dict() == two.stats.as_dict()
        assert [s.path_hash for s in one.seed_pool.seeds] == \
            [s.path_hash for s in two.seed_pool.seeds]
        assert one.stats.learned_states >= 2
        assert one.stats.traces > 0

    def test_corpus_entries_are_learned_traces(self, tmp_path):
        ws_dir = str(tmp_path / "ws")
        spec = get_target("libiec61850")
        run_campaign("peach-star", spec, seed=11,
                     config=_learn_config(workspace=ws_dir,
                                          max_executions=400))
        workspace = CampaignWorkspace(ws_dir)
        packets = workspace.corpus_packets()
        assert packets
        for blob in packets:
            assert is_trace_blob(blob)
            assert decode_trace(blob)
        metas = workspace._load_corpus_entries()
        assert all(meta["model_name"] == "session:iec61850.learned"
                   for meta in metas)

    @pytest.mark.parametrize("target_name", DIFFERENTIAL_TARGETS)
    def test_learned_automaton_covers_hand_written_states(self,
                                                          target_name):
        """Differential gate: every hand-written state's entry
        behaviour class is a state of the learned automaton (and the
        automaton is at least as fine-grained)."""
        spec = get_target(target_name)
        entry_labels = _hand_entry_labels(spec)
        hand_states = {s.name for s in spec.make_state_model().states()}
        assert set(entry_labels) == hand_states
        engine = _learned_engine(spec, 11,
                                 _learn_config(max_executions=900))
        learned = set(engine.state_model.state_labels())
        assert len(learned) >= len(hand_states)
        for hand_state, labels in entry_labels.items():
            assert labels & learned, (
                f"{target_name}: no entry behaviour of hand state "
                f"{hand_state!r} ({sorted(labels)}) was learned "
                f"({sorted(learned)})")

    def test_learned_campaign_reaches_the_pr4_startdt_gated_edges(self):
        """The learner reaches the same STARTDT-gated session-only
        edges on IEC 104 that the PR 4 hand-model acceptance pin uses —
        with zero modelling effort."""
        spec = get_target("iec104")
        session_only = _session_only_edges(
            spec, "iec104.stopdt",
            ("iec104.interrogation", "iec104.single_command"))
        assert session_only
        engine = _learned_engine(spec, 11,
                                 _learn_config(max_executions=800))
        virgin = engine.seed_pool.coverage.virgin
        assert any(virgin[index] for index in session_only), \
            "the learning campaign must discover a session-only path"

    def test_acceptance_lib60870_learned_beats_single_packet(self):
        """PR 5 acceptance gate: on lib60870 — no hand-written model
        existed before this PR — a seeded --learn-states campaign
        reaches the STOPDT-gated drop edges that a same-budget
        single-packet campaign cannot reach *by construction*
        (``reset()`` re-arms the data-transfer gate)."""
        spec = get_target("lib60870")
        session_only = _session_only_edges(
            spec, "lib60870.stopdt",
            ("lib60870.interrogation", "lib60870.single_command"))
        assert session_only, "stopdt+I-frame must open new edges"

        engine = _learned_engine(spec, 11,
                                 _learn_config(max_executions=900))
        virgin = engine.seed_pool.coverage.virgin
        assert any(virgin[index] for index in session_only), \
            "the learning campaign must discover a state-gated path"

        single_config = CampaignConfig(budget_hours=24.0,
                                       max_executions=900,
                                       record_every=10)
        single = make_engine("peach-star", spec, 11, single_config)
        run_campaign("peach-star", spec, seed=11, config=single_config,
                     engine=single)
        single_virgin = single.seed_pool.coverage.virgin
        assert not any(single_virgin[index] for index in session_only), \
            "single-packet mode must not reach the state-gated edges"


class TestLearnedResume:
    @pytest.mark.parametrize("target_name,stop_after", [
        ("lib60870", 17),    # kill lands inside the bootstrap probes
        ("lib60870", 237),   # kill lands mid-trace, automaton grown
        ("libiccp", 333),    # crashing target, session crash metadata
    ])
    def test_killed_learning_campaign_resumes_bit_identical(
            self, tmp_path, target_name, stop_after):
        spec = get_target(target_name)
        full_dir = str(tmp_path / "full")
        killed_dir = str(tmp_path / "killed")
        full = run_campaign("peach-star", spec, seed=7,
                            config=_learn_config(workspace=full_dir))
        killed = run_campaign("peach-star", spec, seed=7,
                              config=_learn_config(workspace=killed_dir),
                              stop_after_executions=stop_after)
        assert killed is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)
        # the learned automaton itself is bit-identical, checkpoint
        # included (kill/resume may not perturb learning)
        with open(os.path.join(full_dir, "state.json")) as handle:
            full_learner = json.load(handle)["learner"]
        with open(os.path.join(killed_dir, "state.json")) as handle:
            killed_learner = json.load(handle)["learner"]
        assert full_learner == killed_learner
        assert CampaignWorkspace(killed_dir).corpus_path_hashes() == \
            CampaignWorkspace(full_dir).corpus_path_hashes()

    def test_learning_fleet_resumes_bit_identical(self, tmp_path):
        spec = get_target("lib60870")
        config = _learn_config(max_executions=400, record_every=25,
                               checkpoint_every=100)
        full = run_fleet("peach-star", spec, shards=2,
                         workspace_dir=str(tmp_path / "full"), seed=5,
                         sync_every=150, config=config, max_workers=1)
        assert sum(full.imported_seeds) > 0, \
            "shards must exchange learned traces at the sync barrier"
        killed_dir = str(tmp_path / "killed")
        killed = run_fleet("peach-star", spec, shards=2,
                           workspace_dir=killed_dir, seed=5,
                           sync_every=150, config=config, max_workers=1,
                           kill_shards_at_executions=220)
        assert killed is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert resumed.merged_path_hashes == full.merged_path_hashes
        assert [_signature(r) for r in resumed.shard_results] == \
            [_signature(r) for r in full.shard_results]
        for shard in range(2):
            ws = CampaignWorkspace(
                os.path.join(killed_dir, "shards", str(shard)))
            for blob in ws.corpus_packets():
                assert is_trace_blob(blob)
