"""The six ICS protocol targets of the paper's evaluation (§V-A).

Each target bundles a server (the program under test), a pit (the format
specification), a per-execution cost model for the simulated clock, and
the set of seeded vulnerability sites expected from Table I.

Use :func:`get_target` / :func:`all_targets` to enumerate them:

>>> from repro.protocols import get_target
>>> spec = get_target("libmodbus")
>>> server, pit = spec.make_server(), spec.make_pit()
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.runtime.clock import CostModel
from repro.runtime.target import ProtocolServer

from repro.protocols import (  # noqa: F401  (re-exported subpackages)
    dnp3, iccp, iec104, iec61850, lib60870, modbus,
)

#: filesystem prefix used by the tracing collector to scope instrumentation
PROTOCOLS_PATH_PREFIX = os.path.join("repro", "protocols")


@dataclass(frozen=True)
class TargetSpec:
    """Everything the campaign driver needs to fuzz one project."""

    name: str                      # registry key, paper's project name
    paper_project: str             # name as printed in the paper
    make_server: Callable[[], ProtocolServer]
    make_pit: Callable
    cost_model: CostModel
    seeded_bug_sites: FrozenSet[Tuple[str, str]] = frozenset()
    description: str = ""
    #: session state machine factory — all six targets ship one (the
    #: `peachstar fuzz --sessions` hand-modelled mode requires it;
    #: `--learn-states` infers an automaton instead and works without)
    make_state_model: Optional[Callable] = None
    #: raw TCP stream framing this protocol family speaks on the wire
    #: (key into :func:`repro.net.framing.framer_for`)
    framing: str = "apci"

    @property
    def seeded_bug_count(self) -> int:
        return len(self.seeded_bug_sites)

    @property
    def supports_sessions(self) -> bool:
        return self.make_state_model is not None


def _costs(exec_seconds: float) -> CostModel:
    """Target-specific execution cost (bigger codebases run slower).

    The virtual scale is compressed (see :class:`CostModel`): per-target
    costs are chosen so the paper's 24-hour budget corresponds to roughly
    1.4k (libiec61850) to 2.4k (IEC104) virtual executions.
    """
    return CostModel(exec_cost_ms=exec_seconds * 1000.0,
                     coverage_overhead_ms=exec_seconds * 50.0,
                     crack_cost_ms=exec_seconds * 200.0,
                     semantic_gen_cost_ms=exec_seconds * 10.0,
                     fixup_cost_ms=exec_seconds * 4.0)


_REGISTRY: Dict[str, TargetSpec] = {}


def _register(spec: TargetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(TargetSpec(
    name="libmodbus",
    framing="mbap",
    paper_project="libmodbus",
    make_server=modbus.ModbusServer,
    make_pit=modbus.make_pit,
    make_state_model=modbus.make_state_model,
    cost_model=_costs(40.0),
    seeded_bug_sites=frozenset({
        ("heap-use-after-free", "modbus.c:respond_exception_after_free"),
        ("SEGV", "modbus.c:fc23_read_registers"),
    }),
    description="Modbus/TCP server (libmodbus analog), 16 function codes",
))

_register(TargetSpec(
    name="iec104",
    framing="apci",
    paper_project="IEC104",
    make_server=iec104.Iec104Server,
    make_pit=iec104.make_pit,
    make_state_model=iec104.make_state_model,
    cost_model=_costs(36.0),
    seeded_bug_sites=frozenset(),
    description="Minimal IEC 60870-5-104 slave (airpig2011/IEC104 analog)",
))

_register(TargetSpec(
    name="lib60870",
    framing="apci",
    paper_project="lib60870",
    make_server=lib60870.Lib60870Server,
    make_pit=lib60870.make_pit,
    make_state_model=lib60870.make_state_model,
    cost_model=_costs(43.0),
    seeded_bug_sites=frozenset({
        ("SEGV", "cs101_asdu.c:CS101_ASDU_getCOT"),
        ("SEGV", "cs101_slave.c:lookup_object"),
        ("SEGV", "cs104_slave.c:handle_clock_sync"),
    }),
    description="Full CS101/CS104 ASDU stack (mz-automation lib60870 analog)",
))

_register(TargetSpec(
    name="opendnp3",
    framing="dnp3",
    paper_project="opendnp3",
    make_server=dnp3.Dnp3Server,
    make_pit=dnp3.make_pit,
    make_state_model=dnp3.make_state_model,
    cost_model=_costs(54.0),
    seeded_bug_sites=frozenset(),
    description="DNP3 outstation with CRC link layer (opendnp3 analog)",
))

_register(TargetSpec(
    name="libiec61850",
    framing="tpkt",
    paper_project="libiec61850",
    make_server=iec61850.Iec61850Server,
    make_pit=iec61850.make_pit,
    make_state_model=iec61850.make_state_model,
    cost_model=_costs(60.0),
    seeded_bug_sites=frozenset(),
    description="MMS server over TPKT/COTP/BER (libiec61850 analog)",
))

_register(TargetSpec(
    name="libiccp",
    framing="tpkt",
    paper_project="libiec iccp mod",
    make_server=iccp.IccpServer,
    make_pit=iccp.make_pit,
    make_state_model=iccp.make_state_model,
    cost_model=_costs(48.0),
    seeded_bug_sites=frozenset({
        ("SEGV", "iccp_im.c:im_lookup"),
        ("SEGV", "tase2_ts.c:ts_name_tail"),
        ("SEGV", "iccp_dv.c:dv_element"),
        ("heap-buffer-overflow", "iccp_dv.c:dv_write_copy"),
    }),
    description="TASE.2/ICCP endpoint (libiec_iccp_mod analog)",
))

#: evaluation order used throughout the benchmarks (paper Fig. 4 order)
TARGET_NAMES = ("libmodbus", "iec104", "libiec61850", "lib60870",
                "libiccp", "opendnp3")


def get_target(name: str) -> TargetSpec:
    """Look up a target by registry name; raises KeyError with choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; choices: {sorted(_REGISTRY)}") from None


def all_targets() -> Tuple[TargetSpec, ...]:
    """All six targets, in the paper's Fig. 4 order."""
    return tuple(_REGISTRY[name] for name in TARGET_NAMES)
