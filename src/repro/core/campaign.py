"""Campaign driver: run an engine against a target under a time budget.

Reproduces the paper's experimental procedure (§V-B): each fuzzer runs
against each project for a 24-hour budget, repeated N times, recording
the number of paths covered over time.  Time is the simulated clock of
:mod:`repro.runtime.clock`; both engines are measured with the same
path-coverage framework (a tracing collector on the target), exactly as
the paper instruments both Peach and Peach* for measurement.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import GenerationFuzzer, PeachStar
from repro.core.seedpool import SeedPool
from repro.model.mutators import GenerationPolicy
from repro.net.config import NetConfig
from repro.runtime.clock import SimulatedClock
from repro.runtime.coverage import (
    make_coverage_map, make_global_coverage, resolve_coverage_impl,
)
from repro.runtime.instrument import make_line_collector
from repro.runtime.target import Target
from repro.sanitizer.report import CrashReport
from repro.store.workspace import CampaignWorkspace


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    engine_name: str
    target_name: str
    seed: int
    series: List[Tuple[float, int]]          # (sim hours, paths covered)
    final_paths: int
    final_edges: int
    executions: int
    unique_crashes: List[CrashReport]
    crash_times: Dict[Tuple[str, str], float]  # dedup key -> sim hours
    stats: dict
    #: per-valuable-seed bucketed path identities, discovery order (used
    #: by the resume-determinism gate and the triage/analysis layers)
    path_hashes: Tuple[int, ...] = ()
    #: deduplicated differential-oracle findings (empty unless the
    #: campaign ran with an oracle attached)
    unique_divergences: List[CrashReport] = field(default_factory=list)

    def paths_at(self, hours: float) -> int:
        """Paths covered at simulated time *hours* (step interpolation)."""
        best = 0
        for when, paths in self.series:
            if when > hours:
                break
            best = paths
        return best

    def time_to_paths(self, paths: int) -> Optional[float]:
        """Simulated hours until *paths* paths were covered, or None."""
        for when, count in self.series:
            if count >= paths:
                return when
        return None


def default_campaign_policy() -> GenerationPolicy:
    """The generation policy used throughout the evaluation.

    Weaker priors than the unit-test default: valid values mostly have to
    be *discovered*, which is exactly the regime the paper targets ("the
    random and pointless generation strategy makes it less likely to
    produce high-quality inputs", §I).
    """
    return GenerationPolicy(default_prob=0.15, legal_value_prob=0.10,
                            edge_case_prob=0.15)


@dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    budget_hours: float = 24.0
    max_executions: int = 200_000           # hard safety bound
    record_every: int = 25                  # sample the series every N execs
    policy: Optional[GenerationPolicy] = field(
        default_factory=default_campaign_policy)
    semantic_batch: int = 16
    semantic_ratio: float = 0.5
    pin_prob: float = 0.5
    crack_enabled: bool = True
    semantic_enabled: bool = True
    hang_budget: int = 120_000
    #: session mode: fuzz multi-packet traces over the target's state
    #: model (requires a target with one; see `peachstar fuzz --sessions`).
    #: ``executions`` then counts trace *steps*, so budgets stay
    #: comparable with single-packet campaigns.
    sessions: bool = False
    #: state learning: session mode over an AFLNet-style automaton
    #: inferred online from response features instead of a hand-written
    #: state model — works on *every* target, modelled or not (see
    #: `peachstar fuzz --learn-states`).  Implies session semantics.
    learn_states: bool = False
    #: session mode: length bound for fresh state-model walks
    max_trace_steps: int = 6
    #: per-frame transport fault probability (0 = no channel at all —
    #: today's bit-exact path).  The fault RNG is derived from the
    #: campaign seed and checkpointed, so faulted campaigns keep
    #: kill-and-resume bit-identity.
    channel_faults: float = 0.0
    #: burst-loss fault mode (``--channel-faults-burst N``): the fault
    #: menu gains a "burst" entry that drops a run of 2..N consecutive
    #: frames.  0 disables it and keeps the selection-roll space (and
    #: therefore existing seeded campaigns) bit-identical.  Needs
    #: channel_faults > 0 — the burst is one of the channel's faults.
    channel_burst: int = 0
    #: differential parse oracles (strict-vs-lenient + cross-stack):
    #: None = auto, enabled exactly when channel_faults > 0 or
    #: steer_divergence is set; True/False force it on clean or faulted
    #: campaigns respectively
    differential: Optional[bool] = None
    #: divergence-aware seed scoring (``--steer-divergence``): a
    #: coverage-stale execution that hits a first-seen parse-divergence
    #: site still enters the seed corpus (implies the oracle)
    steer_divergence: bool = False
    #: live-network transport (``--target tcp://host:port`` /
    #: ``--concurrency``): None keeps the in-process path bit-identical;
    #: a NetConfig rides into the workspace manifest so a killed socket
    #: campaign resumes with the transport it started with
    net: Optional[NetConfig] = None
    #: line-coverage backend: "auto" | "monitoring" | "settrace"
    coverage_backend: str = "auto"
    #: coverage-map implementation: "auto" | "sparse" | "vector"
    #: (``REPRO_COVERAGE_IMPL`` overrides "auto"; both are parity-pinned
    #: bit-for-bit, "vector" needs numpy)
    coverage_impl: str = "auto"
    #: iterations executed per collector window by the batched pipeline
    #: (1 = unbatched; the outcome stream is bit-identical either way)
    batch_size: int = 16
    #: directory to persist the campaign into (None = in-memory only).
    #: One workspace per campaign: batch tasks must not share one.
    workspace: Optional[str] = None
    #: checkpoint the full engine state every N executions
    checkpoint_every: int = 200


def config_to_dict(config: CampaignConfig) -> dict:
    """JSON-safe snapshot of a campaign config (workspace manifests).

    ``asdict`` already recurses into the nested :class:`GenerationPolicy`.
    """
    return asdict(config)


def config_from_dict(blob: dict) -> CampaignConfig:
    """Inverse of :func:`config_to_dict` (tolerates added fields)."""
    known = {f.name for f in CampaignConfig.__dataclass_fields__.values()}
    kwargs = {key: value for key, value in blob.items() if key in known}
    if kwargs.get("policy") is not None:
        kwargs["policy"] = GenerationPolicy(**kwargs["policy"])
    if kwargs.get("net") is not None:
        kwargs["net"] = NetConfig(**kwargs["net"])
    return CampaignConfig(**kwargs)


def validate_session_support(engine_name: str, target_spec,
                             config: CampaignConfig) -> None:
    """Raise early when session mode cannot run for this combination.

    Called by :func:`make_engine` and by entry points that create
    on-disk state before any engine exists (the fleet initializes every
    shard workspace first — failing later would leave a half-built
    fleet behind).
    """
    if not config.sessions and not config.learn_states:
        return
    if engine_name != "peach-star":
        raise ValueError("session mode needs the peach-star engine "
                         f"(got {engine_name!r})")
    if config.sessions and config.learn_states:
        raise ValueError(
            "--sessions (hand-written state model) and --learn-states "
            "(learned automaton) are mutually exclusive; pick one")
    if config.learn_states:
        return  # the learner needs no hand-written state model
    if target_spec.make_state_model is None:
        raise ValueError(
            f"target {target_spec.name!r} ships no state model; "
            "session mode is unavailable for it (state learning via "
            "--learn-states works on every target)")


def validate_campaign_config(engine_name: str, target_spec,
                             config: CampaignConfig) -> None:
    """Every cross-knob rejection, raised before any state is created.

    Wraps :func:`validate_session_support` and adds the channel/net
    checks; called by :func:`make_engine` and by the fleet before it
    initializes shard workspaces.
    """
    validate_session_support(engine_name, target_spec, config)
    if config.batch_size < 1:
        raise ValueError(f"batch size {config.batch_size} < 1")
    resolve_coverage_impl(config.coverage_impl)  # raises when unusable
    if config.channel_burst < 0:
        raise ValueError(f"channel burst {config.channel_burst} < 0")
    if config.channel_burst > 0 and config.channel_faults <= 0.0:
        raise ValueError(
            "--channel-faults-burst needs --channel-faults > 0 "
            "(the burst is one of the faulting channel's fault kinds)")
    if config.net is not None:
        config.net.validate()
        if config.net.concurrency > 1 and not (config.sessions or
                                               config.learn_states):
            raise ValueError(
                "--concurrency interleaves sessions, so it needs session "
                "mode (--sessions or --learn-states)")


def make_engine(engine_name: str, target_spec, seed: int,
                config: Optional[CampaignConfig] = None) -> GenerationFuzzer:
    """Build a ready-to-run engine ("peach" or "peach-star") for a target.

    Both engines get a tracing collector so path coverage is *measured*
    identically; only Peach* pays the coverage-feedback overhead on the
    simulated clock and actually uses the feedback.
    """
    config = config if config is not None else CampaignConfig()
    validate_campaign_config(engine_name, target_spec, config)
    rng = random.Random(seed)
    # resolve once so the collector map and the virgin map always agree
    coverage_impl = resolve_coverage_impl(config.coverage_impl)
    collector = make_line_collector(
        ("repro/protocols",),
        coverage_map=make_coverage_map(coverage_impl),
        hang_budget=config.hang_budget,
        backend=config.coverage_backend)
    channel = None
    if config.channel_faults > 0.0:
        # the extra seed draw happens only on faulted campaigns, so
        # zero-fault runs stay bit-identical to the channel-less past
        from repro.channel.faults import FaultingChannel
        channel = FaultingChannel(config.channel_faults,
                                  random.Random(rng.getrandbits(32)),
                                  burst=config.channel_burst)
    if config.net is not None:
        # the live-network transport: a served loopback (full coverage
        # feedback, pinned parity with the in-process path) or an
        # external tcp:// endpoint (black-box — no collector can see
        # across a process boundary)
        from repro.net.target import make_net_target
        target = make_net_target(target_spec, collector, channel,
                                 config.net)
    else:
        target = Target(target_spec.make_server, collector,
                        channel=channel)
    clock = SimulatedClock(target_spec.cost_model)
    pit = target_spec.make_pit()
    differential = config.differential
    if differential is None:
        differential = config.channel_faults > 0.0 or \
            config.steer_divergence
    oracle = None
    if differential:
        from repro.channel.oracle import make_oracle
        oracle = make_oracle(target_spec, pit)
    if config.sessions or config.learn_states:
        from repro.state.engine import SessionFuzzer  # late: layering
        if config.learn_states:
            from repro.state.learner import (
                LearnedStateModel, binding_hints,
            )
            hand_model = target_spec.make_state_model() \
                if target_spec.make_state_model is not None else None
            state_model = LearnedStateModel(
                pit, hints=binding_hints(hand_model))
        else:
            state_model = target_spec.make_state_model()
        concurrency = config.net.concurrency \
            if config.net is not None else 1
        engine = SessionFuzzer(pit, target, rng, clock,
                               policy=config.policy,
                               state_model=state_model,
                               max_trace_steps=config.max_trace_steps,
                               concurrency=concurrency,
                               semantic_batch=config.semantic_batch,
                               semantic_ratio=config.semantic_ratio,
                               pin_prob=config.pin_prob,
                               crack_enabled=config.crack_enabled,
                               semantic_enabled=config.semantic_enabled,
                               oracle=oracle,
                               steer_divergence=config.steer_divergence)
    elif engine_name == "peach":
        engine = GenerationFuzzer(pit, target, rng, clock,
                                  policy=config.policy, oracle=oracle,
                                  steer_divergence=config.steer_divergence)
    elif engine_name == "peach-star":
        engine = PeachStar(pit, target, rng, clock, policy=config.policy,
                           semantic_batch=config.semantic_batch,
                           semantic_ratio=config.semantic_ratio,
                           pin_prob=config.pin_prob,
                           crack_enabled=config.crack_enabled,
                           semantic_enabled=config.semantic_enabled,
                           oracle=oracle,
                           steer_divergence=config.steer_divergence)
    else:
        raise ValueError(f"unknown engine {engine_name!r}; "
                         "choices: peach, peach-star")
    # the virgin map matches the collector's map implementation, so
    # merge/would_be_new take the vectorized fast path end to end
    engine.seed_pool = SeedPool(make_global_coverage(coverage_impl))
    return engine


def _drive_campaign(engine_name: str, target_spec, seed: int,
                    engine: GenerationFuzzer, config: CampaignConfig,
                    workspace: Optional[CampaignWorkspace],
                    series: List[Tuple[float, int]],
                    crash_times: Dict[Tuple[str, str], float],
                    stop_after_executions: Optional[int],
                    pause_after_executions: Optional[int] = None,
                    ) -> Optional[CampaignResult]:
    """The budgeted fuzzing loop, shared by fresh runs and resumes.

    Returns ``None`` when *stop_after_executions* fires: that path
    simulates a SIGKILL — the loop abandons the campaign without a final
    checkpoint, exactly the state a killed process leaves behind, and
    :func:`resume_campaign` must carry on from the last checkpoint.

    *pause_after_executions* is the fleet round boundary: a clean stop —
    the engine checkpoints and returns ``None``, and the fleet driver
    resumes the shard after the corpus-sync phase.  Unlike the kill
    path the check runs *before* each iteration, so re-driving a shard
    already parked at the boundary is a no-op.
    """
    try:
        return _drive_campaign_loop(
            engine_name, target_spec, seed, engine, config, workspace,
            series, crash_times, stop_after_executions,
            pause_after_executions)
    finally:
        # uniform teardown across target kinds: a SocketTarget closes
        # its connections/served loopback/event loop, the in-process
        # Target no-ops.  Runs on completion, kill and pause alike —
        # every re-entry path rebuilds the engine from the workspace.
        close = getattr(engine.target, "close", None)
        if close is not None:
            close()


def _drive_campaign_loop(engine_name: str, target_spec, seed: int,
                         engine: GenerationFuzzer, config: CampaignConfig,
                         workspace: Optional[CampaignWorkspace],
                         series: List[Tuple[float, int]],
                         crash_times: Dict[Tuple[str, str], float],
                         stop_after_executions: Optional[int],
                         pause_after_executions: Optional[int] = None,
                         ) -> Optional[CampaignResult]:
    budget_ms = config.budget_hours * 3_600_000.0
    # Cadences are tracked as crossed buckets, not `exec % N == 0`: a
    # session iteration advances the step counter by a whole trace, so
    # exact multiples cannot be relied on.  For single-packet engines
    # (unit increments) this is behavior-identical, and initializing
    # from the restored counter keeps resumes aligned with fresh runs.
    record_bucket = engine.stats.executions // config.record_every
    checkpoint_bucket = engine.stats.executions // config.checkpoint_every
    while engine.clock.now_ms < budget_ms and \
            engine.stats.executions < config.max_executions:
        if pause_after_executions is not None and \
                engine.stats.executions >= pause_after_executions:
            if workspace is not None:
                workspace.checkpoint(engine)
            return None
        # A batch may not run past a boundary that needs *live* engine
        # state: checkpoints snapshot the engine, and the stop/pause
        # kill/round semantics require it to halt exactly there.  Series
        # recording is not such a boundary — it reads each outcome's
        # stamped readings, so a batch may cross record buckets freely.
        exec_bound = config.max_executions
        if workspace is not None:
            exec_bound = min(exec_bound, (checkpoint_bucket + 1)
                             * config.checkpoint_every)
        if stop_after_executions is not None:
            exec_bound = min(exec_bound, stop_after_executions)
        if pause_after_executions is not None:
            exec_bound = min(exec_bound, pause_after_executions)
        outcomes = engine.iterate_batch(config.batch_size,
                                        exec_bound=exec_bound,
                                        time_bound_ms=budget_ms)
        for outcome in outcomes:
            # bookkeeping reads the outcome's stamped readings, not the
            # live engine: after a batch the engine is already at the
            # batch's end, but each outcome must be recorded as of the
            # iteration that produced it
            executions = outcome.executions
            if outcome.new_unique_crash:
                key = outcome.result.crash.dedup_key
                crash_times[key] = outcome.hours
                if workspace is not None:
                    workspace.record_crash(outcome.result.crash,
                                           outcome.hours)
            if workspace is not None:
                for report in outcome.new_divergences:
                    workspace.record_divergence(report, outcome.hours)
            if workspace is not None and outcome.valuable:
                # outcome.result.coverage is the map that made the seed
                # valuable — the collector map itself for single-packet
                # runs, the step-accumulated trace map in session mode
                workspace.record_seed(outcome.seed,
                                      outcome.result.coverage)
            if executions // config.record_every > record_bucket:
                record_bucket = executions // config.record_every
                series.append((outcome.hours, outcome.paths))
                if workspace is not None:
                    workspace.record_sample(executions, outcome.hours,
                                            outcome.paths)
            if workspace is not None and \
                    executions // config.checkpoint_every \
                    > checkpoint_bucket:
                checkpoint_bucket = executions // config.checkpoint_every
                workspace.checkpoint(engine)
            if stop_after_executions is not None and \
                    executions >= stop_after_executions:
                return None
    series.append((engine.clock.hours, engine.path_count))
    result = CampaignResult(
        engine_name=engine_name,
        target_name=target_spec.name,
        seed=seed,
        series=series,
        final_paths=engine.path_count,
        final_edges=engine.seed_pool.edge_count,
        executions=engine.stats.executions,
        unique_crashes=engine.crashes.unique_reports(),
        crash_times=crash_times,
        stats=engine.stats.as_dict(),
        path_hashes=tuple(s.path_hash for s in engine.seed_pool.seeds),
        unique_divergences=engine.divergences.unique_reports(),
    )
    if workspace is not None:
        workspace.checkpoint(engine)
        workspace.finalize({
            "engine": result.engine_name,
            "target": result.target_name,
            "seed": result.seed,
            "executions": result.executions,
            "final_paths": result.final_paths,
            "final_edges": result.final_edges,
            "unique_crashes": len(result.unique_crashes),
            "unique_divergences": len(result.unique_divergences),
            "stats": result.stats,
        })
    return result


def run_campaign(engine_name: str, target_spec, seed: int = 0,
                 config: Optional[CampaignConfig] = None,
                 engine: Optional[GenerationFuzzer] = None,
                 stop_after_executions: Optional[int] = None
                 ) -> Optional[CampaignResult]:
    """Run one budgeted campaign and collect its result.

    *engine* injects a pre-built (possibly re-instrumented) engine; the
    equivalence tests use this to drive the dense reference coverage
    implementation through an otherwise identical campaign.

    With ``config.workspace`` set, the campaign persists itself to that
    directory as it runs (seed corpus, crashes, coverage/series
    journals, periodic state checkpoints) and a killed run can be
    continued with :func:`resume_campaign`.  *stop_after_executions*
    simulates the kill (stop without finalizing; returns ``None``).
    """
    config = config if config is not None else CampaignConfig()
    if engine is None:
        engine = make_engine(engine_name, target_spec, seed, config)
    workspace = None
    series: List[Tuple[float, int]] = [(0.0, 0)]
    crash_times: Dict[Tuple[str, str], float] = {}
    if config.workspace:
        workspace = CampaignWorkspace(config.workspace)
        workspace.initialize(engine_name, target_spec.name, seed,
                             config_to_dict(config))
        series, crash_times = _begin_workspace_records(workspace, engine)
    return _drive_campaign(engine_name, target_spec, seed, engine, config,
                           workspace, series, crash_times,
                           stop_after_executions)


def _begin_workspace_records(workspace: CampaignWorkspace, engine
                             ) -> Tuple[List[Tuple[float, int]],
                                        Dict[Tuple[str, str], float]]:
    """The initial records of a fresh persisted campaign.

    One definition for both entry points (run_campaign and the fleet
    shard driver): the t=0 series sample plus the initial checkpoint,
    returning the matching in-memory (series, crash_times) seeds.
    """
    workspace.record_sample(0, 0.0, 0)
    workspace.checkpoint(engine)
    return [(0.0, 0)], {}


def rebuild_workspace_engine(workspace: CampaignWorkspace):
    """Rebuild a persisted campaign's engine from its manifest.

    With checkpointed state the engine is rewound to it; a workspace
    that was initialized but never driven gets the fresh-start records
    instead.  Shared by :func:`resume_campaign` and the fleet shard
    driver (which interposes corpus-sync imports before re-driving the
    loop).  Returns ``(manifest, config, target_spec, engine, series,
    crash_times)``.
    """
    from repro.protocols import get_target

    manifest = workspace.load_manifest()
    config = config_from_dict(manifest["config"])
    config.workspace = workspace.root
    target_spec = get_target(manifest["target"])
    engine = make_engine(manifest["engine"], target_spec,
                         manifest["seed"], config)
    if workspace.has_state:
        series, crash_times = workspace.restore(engine)
    else:
        series, crash_times = _begin_workspace_records(workspace, engine)
    return manifest, config, target_spec, engine, series, crash_times


def resume_campaign(workspace_dir: str, *,
                    stop_after_executions: Optional[int] = None
                    ) -> Optional[CampaignResult]:
    """Continue a persisted campaign from its last checkpoint.

    The engine is rebuilt from the workspace manifest, rewound to the
    checkpointed RNG/clock/corpus state, and driven to the end of the
    original budget.  Thanks to the deterministic clock and seeded RNG
    the finished campaign is bit-identical — same paths, path-hash set,
    unique crashes, series and stats — to one that was never killed.
    Resuming an already-finished campaign recomputes (and returns) the
    same final result.
    """
    workspace = CampaignWorkspace(workspace_dir)
    manifest, config, target_spec, engine, series, crash_times = \
        rebuild_workspace_engine(workspace)
    return _drive_campaign(manifest["engine"], target_spec,
                           manifest["seed"], engine, config, workspace,
                           series, crash_times, stop_after_executions)


def run_repetitions(engine_name: str, target_spec, *, repetitions: int,
                    base_seed: int = 0,
                    config: Optional[CampaignConfig] = None
                    ) -> List[CampaignResult]:
    """Run N independent repetitions (the paper repeats each 10 times)."""
    return [run_campaign(engine_name, target_spec,
                         seed=base_seed + 1000 * rep, config=config)
            for rep in range(repetitions)]


# -- parallel campaign execution ---------------------------------------------

@dataclass(frozen=True)
class CampaignTask:
    """One schedulable campaign: (engine, target, seed, config).

    Targets travel by registry name so tasks stay cheap to pickle; the
    worker re-resolves the :class:`~repro.protocols.TargetSpec` in its own
    process.
    """

    engine_name: str
    target_name: str
    seed: int
    config: Optional[CampaignConfig] = None


def default_worker_count() -> int:
    """Worker processes to use when the caller does not say.

    ``REPRO_JOBS`` overrides; ``0``/``1`` force serial execution.  The
    fallback leaves one core for the parent so result collection never
    starves.
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return max(1, (os.cpu_count() or 2) - 1)


def _campaign_worker(task: CampaignTask) -> CampaignResult:
    """Process-pool entry point: resolve the target and run one campaign."""
    from repro.protocols import get_target
    return run_campaign(task.engine_name, get_target(task.target_name),
                        seed=task.seed, config=task.config)


def run_campaign_batch(tasks: Sequence[CampaignTask], *,
                       max_workers: Optional[int] = None
                       ) -> List[CampaignResult]:
    """Run many campaigns, fanning out across processes.

    Results come back in task order, and each campaign is seeded
    independently, so the output is identical to running the tasks
    serially — parallelism only changes wall-clock time.  Falls back to
    in-process execution when only one worker is requested, there is only
    one task, or the platform refuses to give us a process pool.
    """
    tasks = list(tasks)
    if max_workers is None:
        max_workers = default_worker_count()
    if len(tasks) <= 1 or max_workers <= 1:
        return [_campaign_worker(task) for task in tasks]
    try:
        pool = ProcessPoolExecutor(max_workers=min(max_workers, len(tasks)))
    except OSError:
        # sandboxed/exotic platforms that refuse a pool: degrade to
        # serial, same results.  Failures *inside* a running pool are
        # deliberately not swallowed — re-running the whole batch would
        # silently double the work.
        return [_campaign_worker(task) for task in tasks]
    with pool:
        return list(pool.map(_campaign_worker, tasks))


def run_repetitions_parallel(engine_name: str, target_spec, *,
                             repetitions: int, base_seed: int = 0,
                             config: Optional[CampaignConfig] = None,
                             max_workers: Optional[int] = None
                             ) -> List[CampaignResult]:
    """Parallel :func:`run_repetitions`: same results, one rep per core."""
    tasks = [CampaignTask(engine_name, target_spec.name,
                          base_seed + 1000 * rep, config)
             for rep in range(repetitions)]
    return run_campaign_batch(tasks, max_workers=max_workers)


def average_paths_at(results: Sequence[CampaignResult],
                     hours: float) -> float:
    """Mean paths covered at simulated time *hours* across repetitions."""
    if not results:
        return 0.0
    return sum(result.paths_at(hours) for result in results) / len(results)


def average_series(results: Sequence[CampaignResult],
                   checkpoints: Sequence[float]
                   ) -> List[Tuple[float, float]]:
    """Average paths-over-time curve sampled at *checkpoints* (hours)."""
    return [(hours, average_paths_at(results, hours))
            for hours in checkpoints]
