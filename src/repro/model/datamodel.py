"""DataModel: build packets from construction rules and parse packets back.

A :class:`DataModel` wraps one rule tree (paper Fig. 1) and provides the
two halves the fuzzer needs:

* :meth:`DataModel.build` — instantiate the tree into an
  :class:`~repro.model.instree.InsTree` (GENERATE + JOINT of paper
  Alg. 1), resolving size/count relations and checksum fixups so the
  produced packet is integrity-correct.  Values come from a pluggable
  :class:`ValueProvider`, which is how both the Peach mutators and the
  semantic-aware donor splicing hook in.
* :meth:`DataModel.parse` — the ``PARSE`` of paper Alg. 2: match wire
  bytes against the tree, producing the Instantiation Tree used by the
  File Cracker, or raise :class:`~repro.model.fields.ParseError` when the
  seed is not legal under this model.

A :class:`Pit` is a named set of data models — "one format specification
usually contains several data models" (paper §II) — typically one per
function code / packet type of a protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.fields import (
    Blob, Block, Choice, Field, ModelError, Number, ParseError, Repeat,
)
from repro.model.instree import InsNode, InsTree


class ValueProvider:
    """Supplies concrete values during :meth:`DataModel.build`.

    The default implementation instantiates every rule with its default
    value — models are written so that this yields a *valid* packet.
    Subclasses (mutation-based generation, donor splicing) override the
    three hooks.
    """

    def leaf_value(self, field: Field, path: str):
        """Return the value for a leaf, or ``None`` to use the default."""
        return None

    def choose_option(self, choice: Choice, path: str) -> int:
        """Return the index of the Choice option to instantiate."""
        return 0

    def repeat_count(self, repeat: Repeat, path: str) -> int:
        """Return how many elements a Repeat should instantiate."""
        return max(repeat.min_count, 1)


DEFAULT_PROVIDER = ValueProvider()


class Transformer:
    """Wire-level transform applied outside the rule tree.

    Mirrors Peach ``<Transformer>``: some protocols post-process the whole
    assembled frame (DNP3 interleaves a CRC every 16 data octets).  The
    logical InsTree stays transform-free; :meth:`DataModel.to_wire` and
    :meth:`DataModel.from_wire` apply/strip it.
    """

    def encode(self, data: bytes) -> bytes:
        return data

    def decode(self, data: bytes) -> bytes:
        return data

    def decode_lenient(self, data: bytes) -> bytes:
        """Best-effort decode for the non-strict parse path.

        Transformers whose strict ``decode`` can reject damaged or
        truncated wire data (e.g. CRC interleaving) override this to
        salvage what they can instead of raising.
        """
        return self.decode(data)


class _ParseState:
    """Mutable cursor shared across the recursive parse."""

    __slots__ = ("data", "extents", "counts", "strict", "enforce_tokens")

    def __init__(self, data: bytes, strict: bool = True,
                 enforce_tokens: bool = True):
        self.data = data
        # target field name -> byte extent announced by a SizeOf carrier
        self.extents: Dict[str, int] = {}
        # target field name -> element count announced by a CountOf carrier
        self.counts: Dict[str, int] = {}
        # False = tolerate leaf constraint violations (triage shrinking
        # needs trees for crashing mutants whose *values* are illegal)
        self.strict = strict
        # False = decode mismatching token bytes instead of rejecting
        # them (the response classifier reads a server reply through a
        # *request* model, whose opcode tokens legitimately differ)
        self.enforce_tokens = enforce_tokens


class DataModel:
    """One packet type's format: a named rule tree plus wire transformer.

    Parameters
    ----------
    name:
        Model name (e.g. ``"modbus.read_holding_registers"``).
    root:
        Root field, normally a :class:`Block`.
    transformer:
        Optional wire transformer (see :class:`Transformer`).
    weight:
        Relative probability of being CHOOSEn by the fuzzing loop.
    """

    def __init__(self, name: str, root: Field, *,
                 transformer: Optional[Transformer] = None,
                 weight: float = 1.0):
        if not name:
            raise ModelError("data model needs a name")
        self.name = name
        self.root = root
        self.transformer = transformer
        self.weight = weight
        self._linear_cache: Optional[Tuple[Field, ...]] = None
        # Whether any rule carries a relation / fixup.  Static per model;
        # build() skips the re-assemble passes a feature-free tree never
        # needs (the result is identical — _assemble is idempotent).
        self._has_relations, self._has_fixups = self._scan_features(root)

    @staticmethod
    def _scan_features(root: Field) -> Tuple[bool, bool]:
        has_relations = False
        has_fixups = False
        stack = [root]
        while stack:
            field = stack.pop()
            if field.relation is not None:
                has_relations = True
            if field.fixup is not None:
                has_fixups = True
            if isinstance(field, Repeat):
                stack.append(field.element)
            elif not field.is_leaf:
                stack.extend(field.children())
        return has_relations, has_fixups

    # ------------------------------------------------------------------
    # linear model (paper's M_L)
    # ------------------------------------------------------------------

    def linear(self) -> Tuple[Field, ...]:
        """Leaf construction rules in declaration order (the linear model).

        For :class:`Choice`/:class:`Repeat` sub-trees the default shape is
        used (first option, one element) — matching the paper's Fig. 2(a)
        linearisation of a packet type.
        """
        if self._linear_cache is None:
            leaves: List[Field] = []
            self._linearize(self.root, leaves)
            self._linear_cache = tuple(leaves)
        return self._linear_cache

    def _linearize(self, field: Field, out: List[Field]) -> None:
        if field.is_leaf:
            out.append(field)
        elif isinstance(field, Choice):
            self._linearize(field.children()[0], out)
        elif isinstance(field, Repeat):
            self._linearize(field.element, out)
        else:
            for child in field.children():
                self._linearize(child, out)

    # ------------------------------------------------------------------
    # build (GENERATE + JOINT + relations + fixups)
    # ------------------------------------------------------------------

    def build(self, provider: ValueProvider = DEFAULT_PROVIDER) -> InsTree:
        """Instantiate the tree into an InsTree with correct integrity.

        Pass order: (1) instantiate every leaf, (2) assemble raw bytes,
        (3) resolve size/count relations, (4) recompute fixups — the same
        repair pipeline the File Fixup module reuses for spliced packets.
        """
        root_node = self._build_node(self.root, provider, "")
        self._assemble(root_node, 0, encode_leaves=False)
        if self._has_relations:
            self._resolve_relations(root_node)
            self._assemble(root_node, 0, encode_leaves=False)
        if self._has_fixups:
            self._resolve_fixups(root_node)
            self._assemble(root_node, 0, encode_leaves=False)
        return InsTree(self.name, root_node)

    def build_default(self) -> InsTree:
        """Instantiate every rule with its default value (a valid packet)."""
        return self.build(DEFAULT_PROVIDER)

    def _build_node(self, field: Field, provider: ValueProvider,
                    prefix: str) -> InsNode:
        path = f"{prefix}.{field.name}" if prefix else field.name
        if field.is_leaf:
            value = provider.leaf_value(field, path)
            if value is None:
                value = field.default_value()
            return InsNode(field, value=value, raw=field.encode(value))
        if isinstance(field, Choice):
            index = provider.choose_option(field, path)
            options = field.children()
            index = max(0, min(index, len(options) - 1))
            child = self._build_node(options[index], provider, path)
            return InsNode(field, children=[child])
        if isinstance(field, Repeat):
            count = provider.repeat_count(field, path)
            count = max(field.min_count, min(count, field.max_count))
            children = [
                self._build_node(field.element, provider, f"{path}[{i}]")
                for i in range(count)
            ]
            return InsNode(field, children=children)
        children = [self._build_node(child, provider, path)
                    for child in field.children()]
        return InsNode(field, children=children)

    def _assemble(self, node: InsNode, offset: int,
                  encode_leaves: bool = True) -> int:
        """Recompute raw/offset bottom-up; return bytes consumed.

        ``encode_leaves=False`` trusts each leaf's existing ``raw``
        instead of re-encoding its value — valid inside :meth:`build`,
        where every mutation site (instantiation, relations, fixups)
        maintains ``raw == field.encode(value)``.  :meth:`parse` keeps
        the re-encode: it is what normalizes leniently-decoded
        (truncated) leaves back to canonical width.
        """
        node.offset = offset
        children = node.children
        if not children:
            if encode_leaves:
                if isinstance(node.field, (Block, Choice, Repeat)):
                    node.raw = b""  # empty internal node (Repeat count 0)
                    return 0
                node.raw = node.field.encode(node.value)
            return len(node.raw)
        pos = offset
        parts = []
        for child in children:
            pos += self._assemble(child, pos, encode_leaves)
            parts.append(child.raw)
        node.raw = b"".join(parts)
        return len(node.raw)

    def _resolve_relations(self, root: InsNode) -> None:
        for node in root.iter_nodes():
            relation = node.field.relation
            if relation is None:
                continue
            target = root.find(relation.of)
            if target is None:
                raise ModelError(
                    f"{self.name}: relation target {relation.of!r} not found")
            count = len(target.children) if isinstance(target.field, Repeat) \
                else None
            node.value = relation.compute(target.raw, count)
            node.raw = node.field.encode(node.value)

    def _resolve_fixups(self, root: InsNode) -> None:
        carriers = [n for n in root.iter_nodes() if n.field.fixup is not None]
        # Document order: a later fixup covering an earlier carrier sees
        # the already-patched bytes.
        carriers.sort(key=lambda n: n.offset)
        for node in carriers:
            fixup = node.field.fixup
            covered = []
            for name in fixup.over:
                target = root.find(name)
                if target is None:
                    raise ModelError(
                        f"{self.name}: fixup target {name!r} not found")
                covered.append(target.raw)
            checksum = fixup.compute(b"".join(covered))
            if isinstance(node.field, Number):
                node.value = checksum
                node.raw = node.field.encode(checksum)
            else:
                width = node.field.fixed_width() or 4
                node.value = checksum.to_bytes(width, "big")
                node.raw = node.value
            self._patch_ancestors(root, node)

    def _patch_ancestors(self, root: InsNode, changed: InsNode) -> None:
        """Splice *changed*'s new raw into every ancestor's raw."""
        self._patch_walk(root, changed)

    def _patch_walk(self, node: InsNode, changed: InsNode) -> bool:
        if node is changed:
            return True
        found = False
        for child in node.children:
            if self._patch_walk(child, changed):
                found = True
        if found:
            node.raw = b"".join(child.raw for child in node.children)
        return found

    # ------------------------------------------------------------------
    # wire codec
    # ------------------------------------------------------------------

    def to_wire(self, tree: InsTree) -> bytes:
        """Serialize an InsTree to wire bytes (applying the transformer)."""
        data = tree.raw
        if self.transformer is not None:
            data = self.transformer.encode(data)
        return data

    def build_bytes(self, provider: ValueProvider = DEFAULT_PROVIDER) -> bytes:
        """Convenience: build and serialize in one step."""
        return self.to_wire(self.build(provider))

    # ------------------------------------------------------------------
    # parse (the PARSE of paper Alg. 2)
    # ------------------------------------------------------------------

    def parse(self, data: bytes, *, verify_fixups: bool = False,
              strict: bool = True, lenient_tokens: bool = False,
              allow_trailing: bool = False) -> InsTree:
        """Match *data* against this model, returning its InsTree.

        Raises :class:`ParseError` when the bytes are not legal under this
        model (wrong token, constraint violation, length mismatch or
        trailing garbage) — the ``LEGAL`` check of paper Alg. 2.

        ``strict=False`` relaxes the leaf *constraint* checks (value
        sets, ranges) while keeping structure and token checks: the
        triage subsystem uses it to crack crashing mutants whose illegal
        field values are exactly why they crash.  Non-strict parsing
        also tolerates *truncation* — leaves decode whatever bytes
        remain (:meth:`~repro.model.fields.Field.decode_lenient`),
        announced extents are clamped to the available data, and greedy
        repeats stop at the cut — so any truncation of a parseable
        packet still yields a (normalized) InsTree.

        ``lenient_tokens=True`` additionally decodes mismatching token
        bytes instead of rejecting them, and ``allow_trailing=True``
        tolerates unconsumed trailing bytes; the state learner's
        response classifier uses both to read server *replies* through
        the request-direction models (a reply legitimately carries a
        different opcode token and may be longer than any request
        shape).  Neither affects the default (enforcing) behaviour the
        cracker, binder and triage paths rely on.
        """
        if self.transformer is not None:
            data = self.transformer.decode(data) if strict else \
                self.transformer.decode_lenient(data)
        state = _ParseState(data, strict=strict,
                            enforce_tokens=not lenient_tokens)
        node, pos = self._parse_node(self.root, state, 0, len(data))
        if pos != len(data) and not allow_trailing:
            raise ParseError(
                f"{self.name}: {len(data) - pos} trailing bytes")
        self._assemble(node, 0)
        if verify_fixups:
            self._verify_fixups(node)
        return InsTree(self.name, node)

    def matches(self, data: bytes) -> bool:
        """True when *data* parses cleanly under this model."""
        try:
            self.parse(data)
        except ParseError:
            return False
        return True

    def _parse_node(self, field: Field, state: _ParseState, pos: int,
                    end: int) -> Tuple[InsNode, int]:
        # A SizeOf carrier earlier in the packet may bound this field.
        extent = state.extents.pop(field.name, None)
        if extent is not None:
            if extent < 0 or pos + extent > end:
                if state.strict:
                    raise ParseError(
                        f"{field.name}: announced size {extent} exceeds data")
                extent = max(0, min(extent, end - pos))  # truncated tail
            end = pos + extent

        if field.is_leaf:
            node, pos = self._parse_leaf(field, state, pos, end)
        elif isinstance(field, Choice):
            node, pos = self._parse_choice(field, state, pos, end)
        elif isinstance(field, Repeat):
            node, pos = self._parse_repeat(field, state, pos, end)
        else:
            node, pos = self._parse_block(field, state, pos, end)

        if extent is not None and pos != end:
            if state.strict:
                raise ParseError(
                    f"{field.name}: announced size {extent} but consumed "
                    f"{pos - (end - extent)}")
            pos = end  # the announced extent owns the unconsumed bytes
        return node, pos

    def _parse_leaf(self, field: Field, state: _ParseState, pos: int,
                    end: int) -> Tuple[InsNode, int]:
        width = field.fixed_width()
        if width is None:
            width = end - pos  # variable-length: greedy within extent
            if isinstance(field, Blob) and width > field.max_length:
                raise ParseError(
                    f"{field.name}: {width} bytes exceeds max_length")
        if pos + width > end:
            if state.strict:
                raise ParseError(f"{field.name}: truncated")
            # truncated leaf: decode what remains (tokens unverifiable
            # on a partial raw are accepted best-effort)
            raw = state.data[pos:end]
            value = field.decode_lenient(raw)
            self._register_relation(field, value, state)
            return InsNode(field, value=value, raw=raw), end
        raw = state.data[pos:pos + width]
        value = field.decode(raw)
        if field.token and state.enforce_tokens and \
                value != field.default_value():
            raise ParseError(
                f"{field.name}: token mismatch ({value!r} != "
                f"{field.default_value()!r})")
        if state.strict and not field.validate(value):
            raise ParseError(f"{field.name}: constraint violation ({value!r})")
        self._register_relation(field, value, state)
        return InsNode(field, value=value, raw=raw), pos + width

    def _register_relation(self, field: Field, value, state: _ParseState) -> None:
        relation = field.relation
        if relation is None or not isinstance(value, int):
            return
        if relation.type_name == "size":
            state.extents[relation.of] = relation.target_extent(value)
        elif relation.type_name == "count":
            state.counts[relation.of] = relation.target_extent(value)

    def _parse_block(self, field: Block, state: _ParseState, pos: int,
                     end: int) -> Tuple[InsNode, int]:
        children = []
        for child in field.children():
            node, pos = self._parse_node(child, state, pos, end)
            children.append(node)
        return InsNode(field, children=children), pos

    def _parse_choice(self, field: Choice, state: _ParseState, pos: int,
                      end: int) -> Tuple[InsNode, int]:
        errors = []
        for option in field.children():
            saved_extents = dict(state.extents)
            saved_counts = dict(state.counts)
            try:
                node, newpos = self._parse_node(option, state, pos, end)
                return InsNode(field, children=[node]), newpos
            except ParseError as exc:
                state.extents = saved_extents
                state.counts = saved_counts
                errors.append(str(exc))
        raise ParseError(f"{field.name}: no option matched ({'; '.join(errors)})")

    def _parse_repeat(self, field: Repeat, state: _ParseState, pos: int,
                      end: int) -> Tuple[InsNode, int]:
        count = state.counts.pop(field.name, None)
        children = []
        if count is not None:
            if count < field.min_count or count > field.max_count:
                if state.strict:
                    raise ParseError(
                        f"{field.name}: announced count {count} "
                        "out of range")
                count = max(field.min_count,
                            min(count, field.max_count))
            for _ in range(count):
                node, pos = self._parse_node(field.element, state, pos, end)
                children.append(node)
        else:
            while pos < end and len(children) < field.max_count:
                try:
                    node, newpos = self._parse_node(field.element, state,
                                                    pos, end)
                except ParseError:
                    if state.strict:
                        raise
                    break  # a truncated tail that matches no element
                if newpos == pos and not state.strict:
                    break  # zero-width element: no progress possible
                children.append(node)
                pos = newpos
            if len(children) < field.min_count:
                if state.strict:
                    raise ParseError(f"{field.name}: fewer than "
                                     f"{field.min_count} elements")
        return InsNode(field, children=children), pos

    def _verify_fixups(self, root: InsNode) -> None:
        for node in root.iter_nodes():
            fixup = node.field.fixup
            if fixup is None:
                continue
            covered = b"".join(
                (root.find(name).raw if root.find(name) is not None else b"")
                for name in fixup.over)
            expected = fixup.compute(covered)
            actual = node.value if isinstance(node.value, int) else \
                int.from_bytes(node.raw, "big")
            if actual != expected:
                raise ParseError(
                    f"{node.name}: bad {fixup.algorithm} "
                    f"(got {actual:#x}, want {expected:#x})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataModel {self.name!r}>"


class Pit:
    """A format specification: a named collection of data models.

    This is the analog of a Peach Pit file; ``EXTRACTDATAMODEL`` of paper
    Alg. 1/2 is :meth:`models`.
    """

    def __init__(self, name: str, models: Sequence[DataModel]):
        if not models:
            raise ModelError(f"pit {name!r} has no data models")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ModelError(f"pit {name!r} has duplicate model names")
        self.name = name
        self._models = tuple(models)

    def models(self) -> Tuple[DataModel, ...]:
        return self._models

    def model(self, name: str) -> DataModel:
        for candidate in self._models:
            if candidate.name == name:
                return candidate
        raise ModelError(f"pit {self.name!r} has no model {name!r}")

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self):
        return iter(self._models)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pit {self.name!r} ({len(self._models)} models)>"
