"""Coverage-backend selection: sys.monitoring vs sys.settrace.

The monitoring backend needs CPython 3.12+ (PEP 669); on older
interpreters `make_line_collector` must fall back to settrace
automatically, and an *explicit* monitoring request must fail loudly.
The behavioural tests run on both backends where available and require
identical coverage maps.
"""

import sys

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.protocols import get_target
from repro.protocols.modbus import ModbusServer, build_read_request
from repro.runtime.instrument import (
    MonitoringCollector, TracingCollector, _monitoring_usable,
    make_line_collector, monitoring_available, resolve_backend,
)
from repro.sanitizer import SimHeap

HAS_MONITORING = monitoring_available()
#: auto also requires the coverage tool id to be free (e.g. not taken by
#: coverage.py running under COVERAGE_CORE=sysmon)
AUTO_MONITORING = _monitoring_usable()
PREFIXES = ("repro/protocols",)


class TestResolveBackend:
    def test_auto_prefers_monitoring_when_available(self):
        expected = "monitoring" if AUTO_MONITORING else "settrace"
        assert resolve_backend("auto") == expected

    def test_explicit_choice_passes_through(self):
        assert resolve_backend("settrace") == "settrace"
        assert resolve_backend("monitoring") == "monitoring"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COVERAGE_BACKEND", "settrace")
        assert resolve_backend("auto") == "settrace"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COVERAGE_BACKEND", "settrace")
        assert resolve_backend("monitoring") == "monitoring"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("ptrace")


class TestFactory:
    def test_auto_builds_best_available(self):
        collector = make_line_collector(PREFIXES)
        if AUTO_MONITORING:
            assert isinstance(collector, MonitoringCollector)
            assert collector.backend_name == "monitoring"
        else:
            assert isinstance(collector, TracingCollector)
            assert collector.backend_name == "settrace"

    def test_settrace_always_constructible(self):
        collector = make_line_collector(PREFIXES, backend="settrace")
        assert isinstance(collector, TracingCollector)

    @pytest.mark.skipif(HAS_MONITORING,
                        reason="needs an interpreter without PEP 669")
    def test_monitoring_request_fails_loudly_without_pep669(self):
        with pytest.raises(RuntimeError):
            make_line_collector(PREFIXES, backend="monitoring")

    def test_monitoring_version_gate_matches_interpreter(self):
        assert HAS_MONITORING == (sys.version_info >= (3, 12))


def _run_modbus(collector, packet):
    server = ModbusServer()
    with collector:
        server.handle_packet(SimHeap(), packet)


@pytest.mark.skipif(not HAS_MONITORING,
                    reason="sys.monitoring needs CPython 3.12+")
class TestMonitoringPersistentRegistration:
    """The tool id and LINE callback survive across executions.

    ``begin``/``end`` only toggle event delivery for the already-
    registered tool; maps must stay behaviourally identical to per-run
    re-registration (and to the settrace backend).
    """

    def teardown_method(self):
        MonitoringCollector.release()

    def test_tool_id_stays_claimed_between_executions(self):
        mon = sys.monitoring
        collector = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(collector, build_read_request(3, 0, 2))
        # the execution is over, yet the tool id is still ours ...
        assert mon.get_tool(mon.COVERAGE_ID) == "repro-coverage"
        # ... and a second execution re-uses it without re-claiming
        _run_modbus(collector, build_read_request(3, 0, 2))
        assert mon.get_tool(mon.COVERAGE_ID) == "repro-coverage"

    def test_repeated_executions_produce_identical_maps(self):
        packet = build_read_request(3, 0, 4)
        collector = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(collector, packet)
        first = list(collector.map.iter_hits())
        _run_modbus(collector, packet)
        second = list(collector.map.iter_hits())
        assert first == second
        reference = make_line_collector(PREFIXES, backend="settrace")
        _run_modbus(reference, packet)
        assert second == list(reference.map.iter_hits())

    def test_no_recording_between_executions(self):
        packet = build_read_request(3, 0, 2)
        collector = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(collector, packet)
        baseline = list(collector.map.iter_hits())
        # in-scope code running OUTSIDE a collection window (tool still
        # claimed, callback still registered) must not record
        build_read_request(3, 0, 2)
        _run_modbus(collector, packet)
        assert list(collector.map.iter_hits()) == baseline

    def test_release_frees_the_tool_id(self):
        mon = sys.monitoring
        collector = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(collector, build_read_request(3, 0, 2))
        assert mon.get_tool(mon.COVERAGE_ID) == "repro-coverage"
        MonitoringCollector.release()
        assert mon.get_tool(mon.COVERAGE_ID) is None
        # and the backend is immediately reusable after a release
        again = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(again, build_read_request(3, 0, 2))
        assert again.map.edge_count() > 10


@pytest.mark.skipif(not HAS_MONITORING,
                    reason="sys.monitoring needs CPython 3.12+")
class TestBackendCampaignParity:
    """Whole-campaign parity: the same campaign driven once under
    ``REPRO_COVERAGE_BACKEND=settrace`` and once under ``=monitoring``
    must pin identical path-hash sets (and identical everything else —
    the backends may only differ in wall-clock cost)."""

    def teardown_method(self):
        MonitoringCollector.release()

    def _campaign(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_COVERAGE_BACKEND", backend)
        config = CampaignConfig(budget_hours=24.0, max_executions=150,
                                record_every=10)
        return run_campaign("peach-star", get_target("libmodbus"),
                            seed=17, config=config)

    def test_identical_path_hash_sets(self, monkeypatch):
        settrace = self._campaign(monkeypatch, "settrace")
        MonitoringCollector.release()
        monitoring = self._campaign(monkeypatch, "monitoring")
        assert set(settrace.path_hashes) == set(monitoring.path_hashes)
        assert settrace.path_hashes == monitoring.path_hashes
        assert settrace.series == monitoring.series
        assert settrace.final_paths == monitoring.final_paths
        assert settrace.final_edges == monitoring.final_edges
        assert settrace.stats == monitoring.stats
        assert sorted(r.dedup_key for r in settrace.unique_crashes) == \
            sorted(r.dedup_key for r in monitoring.unique_crashes)


@pytest.mark.skipif(not HAS_MONITORING,
                    reason="sys.monitoring needs CPython 3.12+")
class TestMonitoringCollector:
    def teardown_method(self):
        MonitoringCollector.release()

    def test_traces_target_module_lines(self):
        collector = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(collector, build_read_request(3, 0, 2))
        assert collector.map.edge_count() > 10
        assert collector.blocks_executed > 10

    def test_backends_produce_identical_maps(self):
        packet = build_read_request(3, 0, 5)
        monitoring = make_line_collector(PREFIXES, backend="monitoring")
        _run_modbus(monitoring, packet)
        settrace = make_line_collector(PREFIXES, backend="settrace")
        _run_modbus(settrace, packet)
        assert list(monitoring.map.iter_hits()) == \
            list(settrace.map.iter_hits())
        assert monitoring.map.path_hash() == settrace.map.path_hash()

    def test_out_of_scope_modules_ignored(self):
        collector = make_line_collector(("no/such/prefix",),
                                        backend="monitoring")
        _run_modbus(collector, build_read_request(3, 0, 2))
        assert collector.map.edge_count() == 0
