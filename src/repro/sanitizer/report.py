"""ASan/gdb-style crash reports and campaign-level deduplication.

The paper's Listing 2 shows the AddressSanitizer SUMMARY line used to
triage the lib60870 SEGV; :func:`format_report` renders our simulated
faults in the same shape, and :class:`CrashDatabase` deduplicates by
``(kind, site)`` the way the paper counts "unique bugs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sanitizer.errors import MemoryFault
from repro.util import hexdump


@dataclass
class CrashReport:
    """One observed crash: what happened, where, and the packet that did it."""

    kind: str
    site: str
    detail: str
    packet: bytes
    model_name: Optional[str] = None
    execution_index: int = 0

    @property
    def dedup_key(self) -> tuple:
        return (self.kind, self.site)

    def summary_line(self) -> str:
        """The ASan SUMMARY-style one-liner."""
        return f"SUMMARY: AddressSanitizer: {self.kind} {self.site}"

    def render(self) -> str:
        """Full report: fault, site, provoking packet hexdump."""
        lines = [
            "==ERROR: AddressSanitizer: "
            f"{self.kind} at site {self.site}",
            f"    {self.detail}" if self.detail else "",
            self.summary_line(),
            "",
            f"provoking packet ({len(self.packet)} bytes, "
            f"model={self.model_name or 'unknown'}):",
            hexdump(self.packet),
        ]
        return "\n".join(line for line in lines if line != "")


def report_from_fault(fault: MemoryFault, packet: bytes,
                      model_name: Optional[str] = None,
                      execution_index: int = 0) -> CrashReport:
    """Build a :class:`CrashReport` from a raised memory fault."""
    return CrashReport(
        kind=fault.kind,
        site=fault.site,
        detail=fault.detail,
        packet=packet,
        model_name=model_name,
        execution_index=execution_index,
    )


class CrashDatabase:
    """Deduplicated store of crashes found during a campaign (the C7 set)."""

    def __init__(self):
        self._unique: Dict[tuple, CrashReport] = {}
        self.total_crashes = 0

    def add(self, report: CrashReport) -> bool:
        """Record a crash; return True when it is a *new* unique bug."""
        self.total_crashes += 1
        key = report.dedup_key
        if key in self._unique:
            return False
        self._unique[key] = report
        return True

    def unique_reports(self) -> List[CrashReport]:
        return list(self._unique.values())

    def unique_count(self) -> int:
        return len(self._unique)

    def count_by_kind(self) -> Dict[str, int]:
        """Vulnerability-type histogram (the shape of the paper's Table I)."""
        histogram: Dict[str, int] = {}
        for report in self._unique.values():
            histogram[report.kind] = histogram.get(report.kind, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self._unique)

    def __contains__(self, key: tuple) -> bool:
        return key in self._unique
