"""Evaluation harness: regenerates every table and figure of the paper."""

from repro.analysis.export import (
    campaign_to_dict, campaign_to_json, campaigns_to_csv,
    panel_to_markdown, panels_to_markdown, write_campaign_json,
    write_series_csv,
)
from repro.analysis.fleet import render_fleet_table
from repro.analysis.figures import (
    DEFAULT_CHECKPOINTS, Fig4Panel, ascii_chart, render_panel_report,
    run_fig4_panel,
)
from repro.analysis.speedup import HeadlineReport, run_headline
from repro.analysis.tables import (
    BUGGY_TARGETS, PAPER_TABLE1, Table1Row, expected_counts, getcot_report,
    render_table1, run_table1_row,
)
from repro.analysis.triage import render_triage_table

__all__ = [
    "BUGGY_TARGETS", "DEFAULT_CHECKPOINTS", "Fig4Panel", "HeadlineReport",
    "PAPER_TABLE1", "Table1Row", "ascii_chart", "expected_counts",
    "getcot_report", "render_fleet_table", "render_panel_report",
    "render_table1", "render_triage_table", "run_fig4_panel",
    "run_headline", "run_table1_row",
]
