"""Table I reproduction: vulnerabilities exposed by Peach*.

Runs Peach* campaigns on the three bug-carrying projects and renders the
(project, vulnerability type, number, status) table of the paper, plus
the ASan-style report of the lib60870 ``CS101_ASDU_getCOT`` SEGV that the
paper shows in Listings 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.campaign import CampaignConfig, run_repetitions_parallel
from repro.core.stats import time_to_bugs
from repro.protocols import TargetSpec, get_target
from repro.sanitizer.report import CrashReport

#: the paper's Table I, as (project, {vuln type: count}) rows
PAPER_TABLE1: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("lib60870", {"SEGV": 3}),
    ("libmodbus", {"heap-use-after-free": 1, "SEGV": 1}),
    ("libiccp", {"SEGV": 3, "heap-buffer-overflow": 1}),
)

BUGGY_TARGETS = tuple(name for name, _counts in PAPER_TABLE1)


@dataclass
class Table1Row:
    project: str
    found_by_type: Dict[str, int]
    expected_by_type: Dict[str, int]
    first_seen_hours: Dict[Tuple[str, str], float]
    reports: List[CrashReport]

    @property
    def complete(self) -> bool:
        return self.found_by_type == self.expected_by_type

    def render(self) -> List[str]:
        lines = []
        for vuln_type in sorted(set(self.expected_by_type)
                                | set(self.found_by_type)):
            found = self.found_by_type.get(vuln_type, 0)
            expected = self.expected_by_type.get(vuln_type, 0)
            status = "Confirmed" if found >= expected else \
                f"found {found}/{expected}"
            lines.append(f"{self.project:<12} {vuln_type:<22} "
                         f"{found:>3}   {status}")
        return lines


def expected_counts(spec: TargetSpec) -> Dict[str, int]:
    """Vulnerability-type histogram expected from the seeded sites."""
    counts: Dict[str, int] = {}
    for kind, _site in spec.seeded_bug_sites:
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def run_table1_row(target_name: str, *, repetitions: int = 2,
                   budget_hours: float = 24.0, base_seed: int = 7,
                   config: Optional[CampaignConfig] = None,
                   jobs: Optional[int] = 1) -> Table1Row:
    """Fuzz one bug-carrying project with Peach* and tally unique bugs.

    ``jobs`` > 1 runs the repetitions on worker processes (identical
    results, lower wall-clock).
    """
    spec = get_target(target_name)
    if config is None:
        config = CampaignConfig(budget_hours=budget_hours)
    else:
        config = replace(config, budget_hours=budget_hours)
    results = run_repetitions_parallel(
        "peach-star", spec, repetitions=repetitions,
        base_seed=base_seed, config=config, max_workers=jobs)
    by_key: Dict[Tuple[str, str], CrashReport] = {}
    for result in results:
        for report in result.unique_crashes:
            by_key.setdefault(report.dedup_key, report)
    found: Dict[str, int] = {}
    for kind, _site in by_key:
        found[kind] = found.get(kind, 0) + 1
    return Table1Row(
        project=target_name,
        found_by_type=found,
        expected_by_type=expected_counts(spec),
        first_seen_hours=time_to_bugs(results),
        reports=list(by_key.values()),
    )


def render_table1(rows: List[Table1Row]) -> str:
    """The paper's Table I layout: project, type, number, status."""
    lines = [
        "TABLE I: Vulnerabilities Exposed by Peach*",
        f"{'Project':<12} {'Vulnerability Type':<22} {'Num':>3}   Status",
        "-" * 56,
    ]
    total = 0
    for row in rows:
        lines.extend(row.render())
        total += sum(row.found_by_type.values())
    lines.append("-" * 56)
    lines.append(f"total unique vulnerabilities: {total} (paper: 9)")
    return "\n".join(lines)


def getcot_report(rows: List[Table1Row]) -> Optional[str]:
    """The paper's Listing 2: the lib60870 getCOT SEGV, ASan-style."""
    for row in rows:
        if row.project != "lib60870":
            continue
        for report in row.reports:
            if "CS101_ASDU_getCOT" in report.site:
                return report.render()
    return None
