"""Net-layer configuration: where the target lives and how to talk to it.

:class:`NetConfig` is the scenario axis the live-network layer adds to a
campaign: which endpoint to drive (``loopback`` spins up the served
in-process server on an ephemeral port; ``tcp://host:port`` points at a
live endpoint, ours or an external implementation), which wire framing
to speak, the wall-clock timeout and reconnect budgets, and the
session-interleaving degree.  It rides inside
:class:`~repro.core.campaign.CampaignConfig` and therefore inside the
workspace manifest, so a killed socket campaign resumes with the same
transport it started with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: the framing choices ``NetConfig.framing`` accepts: the length-prefixed
#: harness envelope (exact parity with the in-process path) or the
#: protocol's own raw stream framing (what an external server speaks)
FRAMING_CHOICES = ("peachstar", "raw")

#: the URL scheme understood beside the "loopback" sentinel
TCP_SCHEME = "tcp://"


@dataclass
class NetConfig:
    """One campaign's transport scenario.

    ``url`` is ``"loopback"`` (serve the target in-process on an
    ephemeral port and fuzz it through a real socket) or
    ``"tcp://host:port"`` (drive a live endpoint; coverage feedback is
    unavailable there — black-box fuzzing).  ``concurrency > 1``
    interleaves N sessions round-robin over one event loop against a
    shared-state server (step *i* of a trace runs on connection
    ``i % N``); it implies ``shared_state`` for loopback serving and
    requires session mode.
    """

    url: str = "loopback"
    framing: str = "peachstar"
    #: wall-clock wait for one response before treating it as silence
    #: (raw mode) — loopback envelope traffic never hits it
    timeout_ms: float = 1000.0
    connect_timeout_ms: float = 5000.0
    #: reconnect attempts when the endpoint drops the connection
    #: mid-session (a crashed real server closes the socket)
    reconnect: int = 1
    #: served connections share one server instance (race one session
    #: state) instead of getting a private server each
    shared_state: bool = False
    #: interleaved sessions per trace scenario (1 = plain sessions)
    concurrency: int = 1

    def validate(self) -> None:
        if self.framing not in FRAMING_CHOICES:
            raise ValueError(f"unknown framing {self.framing!r}; "
                             f"choices: {FRAMING_CHOICES}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency {self.concurrency} < 1")
        if self.url != "loopback" and not self.url.startswith(TCP_SCHEME):
            raise ValueError(
                f"unsupported net url {self.url!r}; use 'loopback' or "
                f"'{TCP_SCHEME}host:port'")

    @property
    def is_loopback(self) -> bool:
        return self.url == "loopback"


def parse_tcp_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` -> ``(host, port)`` (IPv6 hosts in brackets)."""
    if not url.startswith(TCP_SCHEME):
        raise ValueError(f"not a tcp:// url: {url!r}")
    rest = url[len(TCP_SCHEME):]
    if rest.startswith("["):  # [::1]:2404
        host, _, port = rest.partition("]:")
        host = host[1:]
    else:
        host, _, port = rest.rpartition(":")
    if not host or not port:
        raise ValueError(f"malformed tcp:// url: {url!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"malformed port in {url!r}") from None
