"""Real wall-clock throughput: execs/sec per engine/target, plus the
sparse-vs-dense coverage pipeline speedup.

Unlike the other benchmarks (which report the paper's *simulated-clock*
artifacts), this one measures the harness itself: how many target
executions per wall-clock second each engine sustains, and how much
faster the journaled sparse coverage pipeline is than the dense
O(MAP_SIZE) reference it replaced.  Results land in
``BENCH_throughput.json`` so future PRs have a perf trajectory.

The speedup assertion is the PR's acceptance gate: the headline campaign
(Peach* with full coverage measurement) must run at least 3x faster with
the sparse pipeline than with the seed's dense implementation.
"""

from __future__ import annotations

import sys
import time

from benchmarks.conftest import (
    BENCH_HOURS, CLAIMS_ENABLED, bench_config, print_block, write_artifact,
)
from repro.core.campaign import make_engine, run_campaign
from repro.protocols import TARGET_NAMES, get_target
from repro.runtime._dense_ref import DenseCoverageMap, DenseGlobalCoverage
from repro.runtime.instrument import resolve_backend

#: targets timed for the per-target execs/sec table (all six)
THROUGHPUT_TARGETS = TARGET_NAMES
#: the headline campaign used for the sparse-vs-dense gate
HEADLINE_TARGET = "libmodbus"
HEADLINE_SEED = 500

_CACHE = {}


def _timed_campaign(engine_name, target_name, seed, dense=False):
    """Run one campaign for real; return (execs_per_sec, result, secs)."""
    spec = get_target(target_name)
    config = bench_config()
    engine = None
    if dense:
        engine = make_engine(engine_name, spec, seed, config)
        engine.target.collector.map = DenseCoverageMap()
        engine.seed_pool.coverage = DenseGlobalCoverage()
    start = time.perf_counter()
    result = run_campaign(engine_name, spec, seed=seed, config=config,
                          engine=engine)
    elapsed = time.perf_counter() - start
    return result.executions / max(elapsed, 1e-9), result, elapsed


def _throughput():
    if "payload" in _CACHE:
        return _CACHE["payload"]
    targets = {}
    headline = None
    for target_name in THROUGHPUT_TARGETS:
        rows = {}
        for engine_name in ("peach", "peach-star"):
            rate, result, elapsed = _timed_campaign(
                engine_name, target_name, HEADLINE_SEED)
            rows[engine_name] = {
                "execs_per_sec": round(rate, 1),
                "executions": result.executions,
                "wall_seconds": round(elapsed, 3),
                "final_paths": result.final_paths,
            }
            if (target_name, engine_name) == (HEADLINE_TARGET, "peach-star"):
                headline = (rate, result, elapsed)
        targets[target_name] = rows

    # the sparse side of the gate is the headline campaign already
    # timed in the loop above (same engine/target/seed, deterministic)
    sparse_rate, sparse_result, sparse_secs = headline
    dense_rate, dense_result, dense_secs = _timed_campaign(
        "peach-star", HEADLINE_TARGET, HEADLINE_SEED, dense=True)
    assert sparse_result.executions == dense_result.executions, \
        "sparse and dense campaigns diverged; equivalence is broken"
    payload = {
        "backend": resolve_backend("auto"),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "bench_hours": BENCH_HOURS,
        "targets": targets,
        "sparse_vs_dense": {
            "target": HEADLINE_TARGET,
            "engine": "peach-star",
            "executions": sparse_result.executions,
            "sparse_execs_per_sec": round(sparse_rate, 1),
            "dense_execs_per_sec": round(dense_rate, 1),
            "sparse_wall_seconds": round(sparse_secs, 3),
            "dense_wall_seconds": round(dense_secs, 3),
            "speedup": round(sparse_rate / max(dense_rate, 1e-9), 2),
        },
    }
    _CACHE["payload"] = payload
    return payload


def test_throughput_artifact(benchmark):
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    # the committed trajectory artifact holds full-budget numbers only;
    # compressed smoke runs (REPRO_BENCH_HOURS=2) write alongside it so
    # they never clobber the 24h headline payload
    name = "throughput" if CLAIMS_ENABLED else "throughput_smoke"
    path = write_artifact(name, payload)
    rows = [f"{'target':<13} {'engine':<11} {'execs/sec':>10} "
            f"{'execs':>6} {'wall s':>8}"]
    for target_name, engines in payload["targets"].items():
        for engine_name, row in engines.items():
            rows.append(f"{target_name:<13} {engine_name:<11} "
                        f"{row['execs_per_sec']:>10.1f} "
                        f"{row['executions']:>6} "
                        f"{row['wall_seconds']:>8.3f}")
    gate = payload["sparse_vs_dense"]
    rows.append(f"\nsparse vs dense ({gate['engine']} on {gate['target']}): "
                f"{gate['sparse_execs_per_sec']:.1f} vs "
                f"{gate['dense_execs_per_sec']:.1f} execs/sec "
                f"= {gate['speedup']:.2f}x  (backend: {payload['backend']})")
    rows.append(f"artifact: {path}")
    print_block("Wall-clock throughput (execs/sec)", "\n".join(rows))
    for engines in payload["targets"].values():
        for row in engines.values():
            assert row["execs_per_sec"] > 0


def test_sparse_pipeline_at_least_3x_dense(benchmark):
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    speedup = payload["sparse_vs_dense"]["speedup"]
    assert speedup >= 3.0, (
        f"sparse coverage pipeline is only {speedup:.2f}x the dense "
        "reference; the perf acceptance gate requires >= 3x")
