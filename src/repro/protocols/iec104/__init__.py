"""IEC104-analog target: minimal IEC 60870-5-104 slave, codec and pit."""

from repro.protocols.iec104.codec import (
    build_asdu, build_i_frame, build_s_frame, build_u_frame, frame_kind,
)
from repro.protocols.iec104.model import make_pit, make_state_model
from repro.protocols.iec104.server import Iec104Server

__all__ = [
    "Iec104Server", "build_asdu", "build_i_frame", "build_s_frame",
    "build_u_frame", "frame_kind", "make_pit", "make_state_model",
]
