"""Semantic-aware generation (paper Alg. 3).

Given a data model's linear form and the puzzle corpus, construct new
seeds chunk by chunk: for each position whose construction rule has
donors in the corpus, splice donor puzzles; otherwise fall back to the
inherent rule (the Peach mutators).  The paper enumerates the full
``p × q × ...`` cartesian product of donor choices; a practical fuzzer
must bound that, so the recursion is capped at ``batch_limit`` seeds per
invocation with rng-shuffled donor order (the enumeration *prefix* under
a random order is an unbiased sample of the product).

Integrity is restored afterwards by the File Fixup pass, which in this
implementation is DataModel.build's relation/fixup resolution — spliced
donor values for relation or fixup carriers are never used.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.corpus import PuzzleCorpus
from repro.model.datamodel import DataModel, ValueProvider
from repro.model.fields import Blob, Choice, Field, Number, Repeat, Str
from repro.model.instree import InsTree
from repro.model.mutators import GenerationPolicy, MutatorProvider


class _SpliceProvider(ValueProvider):
    """ValueProvider that pins chosen leaves to donor values.

    Unpinned leaves (and Choice/Repeat shape decisions) delegate to the
    inherent mutator provider — paper Alg. 3 lines 14-15.
    """

    def __init__(self, assignments: Dict[str, object],
                 fallback: MutatorProvider):
        self.assignments = assignments
        self.fallback = fallback

    def leaf_value(self, field: Field, path: str):
        if path in self.assignments:
            return self.assignments[path]
        return self.fallback.leaf_value(field, path)

    def choose_option(self, choice: Choice, path: str) -> int:
        return self.fallback.choose_option(choice, path)

    def repeat_count(self, repeat: Repeat, path: str) -> int:
        return self.fallback.repeat_count(repeat, path)


def _decode_donor(field: Field, donor: bytes):
    """Convert donor bytes back into the leaf's value domain."""
    try:
        return field.decode(donor)
    except Exception:
        if isinstance(field, Blob):
            return donor
        if isinstance(field, Str):
            return donor.decode("latin-1", errors="replace")
        if isinstance(field, Number):
            # honor the field's signedness: 0xFF donated into a signed
            # byte is -1, not 255 — an unsigned decode lands outside the
            # value domain and breaks the CONSTRUCT step's re-encode
            if len(donor) >= field.width:
                return int.from_bytes(donor[:field.width], field.endian,
                                      signed=field.signed)
            return int.from_bytes(donor, field.endian,
                                  signed=field.signed)
        return None


class SemanticGenerator:
    """Implements CONSTRUCT of paper Alg. 3 with a batch cap."""

    def __init__(self, corpus: PuzzleCorpus, rng: random.Random,
                 policy: Optional[GenerationPolicy] = None,
                 batch_limit: int = 16,
                 max_donors_per_position: int = 6,
                 pin_prob: float = 0.5):
        self.corpus = corpus
        self.rng = rng
        self.policy = policy
        self.batch_limit = batch_limit
        self.max_donors_per_position = max_donors_per_position
        #: probability that a donor-bearing position is actually pinned in
        #: a given batch.  Literal Alg. 3 pins every such position
        #: (pin_prob=1.0); pinning a random subset keeps mutator entropy
        #: at the remaining positions so splicing explores new
        #: conjunctions instead of replaying old ones.  The ablation
        #: benchmark measures both settings.
        self.pin_prob = pin_prob
        self.seeds_generated = 0
        #: (id(model), id(field)) -> dotted leaf path.  Safe to key on
        #: ids: ``DataModel.linear()`` memoizes its Field tuple, so the
        #: objects handed to ``_leaf_path`` stay alive (and identical)
        #: for the model's lifetime.  Purely derived — never persisted.
        self._path_cache: Dict[Tuple[int, int], str] = {}

    # ------------------------------------------------------------------

    def _donor_positions(self, model: DataModel
                         ) -> List[Tuple[str, Field, Tuple[bytes, ...]]]:
        """Linear-model positions that have donors (and may be spliced).

        Token, relation and fixup carriers are excluded: tokens are
        constants and the other two are recomputed by File Fixup.
        """
        positions = []
        for field in model.linear():
            if field.token or field.relation is not None \
                    or field.fixup is not None:
                continue
            if not self.corpus.has_donors(field):
                continue
            if self.pin_prob < 1.0 and self.rng.random() >= self.pin_prob:
                continue  # leave this position to the inherent rule
            chosen = self.corpus.sample_donors(
                field, self.max_donors_per_position)
            if not chosen:
                continue
            positions.append((self._leaf_path(model, field), field,
                              tuple(chosen)))
        return positions

    def _leaf_path(self, model: DataModel, target: Field) -> str:
        """Dotted path of a linear-model leaf within the default shape.

        Memoized: the recursive walk re-derives the same constant path
        for every donor-bearing position of every construct call, which
        showed up in the batched-pipeline profiles.
        """
        key = (id(model), id(target))
        path = self._path_cache.get(key)
        if path is None:
            path = _find_path(model.root, target, "")
            if path is None:  # pragma: no cover - linear() guarantees it
                raise ValueError(f"{target.name} not in {model.name}")
            self._path_cache[key] = path
        return path

    # ------------------------------------------------------------------

    def construct(self, model: DataModel) -> List[Tuple[InsTree, bytes]]:
        """Generate a batch of spliced seeds for *model*.

        Returns ``[]`` when no position has donors (the caller then uses
        the inherent strategy unchanged).
        """
        positions = self._donor_positions(model)
        if not positions:
            return []
        batch: List[Tuple[InsTree, bytes]] = []
        assignments: Dict[str, object] = {}

        def recurse(index: int) -> bool:
            """DFS over donor choices; False aborts (batch full)."""
            if len(batch) >= self.batch_limit:
                return False
            if index == len(positions):
                fallback = MutatorProvider(self.rng, self.policy)
                provider = _SpliceProvider(dict(assignments), fallback)
                tree = model.build(provider)
                batch.append((tree, model.to_wire(tree)))
                return True
            path, field, donors = positions[index]
            for donor in donors:
                value = _decode_donor(field, donor)
                if value is None:
                    continue
                assignments[path] = value
                if not recurse(index + 1):
                    return False
            assignments.pop(path, None)
            return True

        recurse(0)
        self.seeds_generated += len(batch)
        return batch


def _find_path(field: Field, target: Field, prefix: str) -> Optional[str]:
    """Locate *target* in the default-shaped tree, mirroring build paths."""
    path = f"{prefix}.{field.name}" if prefix else field.name
    if field is target:
        return path
    if isinstance(field, Choice):
        return _find_path(field.children()[0], target, path)
    if isinstance(field, Repeat):
        return _find_path(field.element, target, f"{path}[0]")
    for child in field.children():
        found = _find_path(child, target, path)
        if found is not None:
            return found
    return None
