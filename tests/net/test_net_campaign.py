"""Campaign-level acceptance gates of the live-network layer.

The ISSUE pins three behaviors:

* **loopback parity** — a seeded campaign through a ``SocketTarget``
  loopback harness is signature-identical to the in-process campaign
  for all six protocols (coverage, paths, crashes, stats — everything);
* **kill/resume over sockets** — a socket session campaign killed
  mid-run and resumed is bit-identical to an uninterrupted one;
* **shared-state concurrency** — two sessions interleaved against one
  shared-state server reach edges no single session can.
"""

import pytest

from repro.core import (
    CampaignConfig, resume_campaign, run_campaign, run_fleet,
)
from repro.net import NetConfig, make_loopback_target
from repro.protocols import all_targets, get_target
from repro.runtime.coverage import GlobalCoverage
from repro.runtime.instrument import TracingCollector

TARGET_NAMES = [spec.name for spec in all_targets()]


def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=150, record_every=10)
    base.update(overrides)
    return CampaignConfig(**base)


def _signature(result):
    return (
        result.series, result.final_paths, result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        sorted(report.dedup_key for report in result.unique_divergences),
        result.crash_times, result.stats, result.path_hashes,
    )


class TestLoopbackParity:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_socket_campaign_matches_in_process(self, name):
        spec = get_target(name)
        in_process = run_campaign("peach-star", spec, seed=7,
                                  config=_config())
        over_socket = run_campaign("peach-star", spec, seed=7,
                                   config=_config(net=NetConfig()))
        assert _signature(over_socket) == _signature(in_process), \
            f"{name}: socket loopback campaign diverged from in-process"

    def test_parity_holds_for_sessions_with_channel_faults(self):
        spec = get_target("iec104")
        base = dict(max_executions=200, checkpoint_every=50,
                    sessions=True, channel_faults=0.25)
        in_process = run_campaign("peach-star", spec, seed=11,
                                  config=_config(**base))
        over_socket = run_campaign("peach-star", spec, seed=11,
                                   config=_config(net=NetConfig(), **base))
        assert _signature(over_socket) == _signature(in_process)
        assert over_socket.stats["channel_faults"] > 0


class TestSocketKillResume:
    def test_killed_socket_campaign_resumes_bit_identically(self, tmp_path):
        spec = get_target("iec104")
        base = dict(max_executions=300, checkpoint_every=50, sessions=True)
        full = run_campaign(
            "peach-star", spec, seed=11,
            config=_config(net=NetConfig(),
                           workspace=str(tmp_path / "full"), **base))

        killed_dir = str(tmp_path / "killed")
        killed = run_campaign(
            "peach-star", spec, seed=11,
            config=_config(net=NetConfig(), workspace=killed_dir, **base),
            stop_after_executions=173)
        assert killed is None
        resumed = resume_campaign(killed_dir)
        assert _signature(resumed) == _signature(full)

    def test_net_config_rides_in_the_manifest(self, tmp_path):
        # the resumed campaign must rebuild the same transport: the
        # manifest round-trips NetConfig through config_from_dict
        from repro.core import config_from_dict, config_to_dict
        config = _config(net=NetConfig(framing="raw", timeout_ms=250.0,
                                       reconnect=3, concurrency=2),
                         sessions=True)
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.net == config.net
        assert isinstance(rebuilt.net, NetConfig)


class TestFleetOverSockets:
    def test_fleet_shards_compose_with_loopback_targets(self, tmp_path):
        spec = get_target("libmodbus")
        fleet = run_fleet(
            "peach-star", spec, shards=2,
            workspace_dir=str(tmp_path / "fleet"), seed=3, sync_every=60,
            config=_config(max_executions=120, net=NetConfig()),
            max_workers=1)
        assert fleet is not None
        assert len(fleet.shard_results) == 2
        assert all(result.executions == 120
                   for result in fleet.shard_results)


class TestSharedStateConcurrency:
    """The pinned scenario: interleaving beats any single session.

    The iec104 server boots with transfer *started*; lane 0 sends
    STOPDT (stopping it) while lane 1's interrogation then lands on a
    stopped server and is dropped — a code path no single fresh-session
    trace can reach, because a lone session either never stops transfer
    or stops it and ends.
    """

    def _edges(self, steps, concurrency):
        spec = get_target("iec104")
        target = make_loopback_target(
            spec, collector=TracingCollector(("repro/protocols",)),
            net=NetConfig(concurrency=concurrency))
        try:
            result = target.run_trace(steps)
        finally:
            target.close()
        coverage = GlobalCoverage()
        coverage.merge(result.coverage)
        return {index for index, seen in enumerate(coverage.virgin)
                if seen}

    def test_interleaved_sessions_reach_edges_single_sessions_cannot(self):
        pit = get_target("iec104").make_pit()

        def step(name):
            model = pit.model(name)
            return model.to_wire(model.build_default()), name

        stopdt = step("iec104.stopdt")
        interrogation = step("iec104.interrogation")
        single = self._edges([stopdt], 1) | self._edges([interrogation], 1)
        concurrent = self._edges([stopdt, interrogation], 2)
        only_concurrent = concurrent - single
        assert only_concurrent, (
            "two interleaved shared-state sessions reached no edge the "
            "single-session runs missed")

    def test_concurrent_campaign_is_deterministic(self):
        spec = get_target("iec104")

        def once():
            return run_campaign(
                "peach-star", spec, seed=5,
                config=_config(max_executions=200, checkpoint_every=50,
                               sessions=True,
                               net=NetConfig(concurrency=2)))

        assert _signature(once()) == _signature(once())

    def test_concurrency_requires_session_mode(self):
        spec = get_target("iec104")
        with pytest.raises(ValueError):
            run_campaign("peach-star", spec, seed=0,
                         config=_config(net=NetConfig(concurrency=2)))
