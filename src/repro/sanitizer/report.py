"""ASan/gdb-style crash reports and campaign-level deduplication.

The paper's Listing 2 shows the AddressSanitizer SUMMARY line used to
triage the lib60870 SEGV; :func:`format_report` renders our simulated
faults in the same shape, and :class:`CrashDatabase` deduplicates by
``(kind, site)`` the way the paper counts "unique bugs".

Beyond the paper, each report can carry the *call-site sequence* that
led into the fault (the tail of the instrumentation journal, captured by
the target harness); ``bucket_key`` folds it into a finer-grained bucket
identity used by the triage subsystem, while ``dedup_key`` keeps the
paper's coarse ``(kind, site)`` accounting intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sanitizer.errors import MemoryFault
from repro.util import fnv1a32_fold, hexdump


def context_hash(call_sites: Tuple[int, ...]) -> int:
    """Order-sensitive 32-bit FNV-1a fold of a call-site sequence."""
    return fnv1a32_fold(call_sites)


@dataclass
class CrashReport:
    """One observed crash: what happened, where, and the packet that did it."""

    kind: str
    site: str
    detail: str
    packet: bytes
    model_name: Optional[str] = None
    execution_index: int = 0
    #: tail of the touched-edge journal at fault time (triage bucketing);
    #: empty when the execution was uninstrumented
    call_sites: Tuple[int, ...] = field(default=())
    #: session-mode context: the encoded trace whose replay crashes
    #: (see repro.state.trace) — None for single-packet crashes
    trace: Optional[bytes] = None
    #: index of the crashing step within ``trace`` (None outside sessions)
    crash_step: Optional[int] = None

    @property
    def is_session(self) -> bool:
        """True when this crash needs a multi-packet trace to reproduce."""
        return self.trace is not None

    @property
    def dedup_key(self) -> tuple:
        return (self.kind, self.site)

    @property
    def context_hash(self) -> int:
        """32-bit hash of the call-site sequence (0 when uninstrumented)."""
        if not self.call_sites:
            return 0
        return context_hash(self.call_sites)

    @property
    def bucket_key(self) -> tuple:
        """Triage bucket identity: dedup key refined by crash context."""
        return (self.kind, self.site, self.context_hash)

    def summary_line(self) -> str:
        """The ASan SUMMARY-style one-liner."""
        return f"SUMMARY: AddressSanitizer: {self.kind} {self.site}"

    def render(self) -> str:
        """Full report: fault, site, provoking packet hexdump."""
        lines = [
            "==ERROR: AddressSanitizer: "
            f"{self.kind} at site {self.site}",
            f"    {self.detail}" if self.detail else "",
            self.summary_line(),
            "",
            f"provoking packet ({len(self.packet)} bytes, "
            f"model={self.model_name or 'unknown'}):",
            hexdump(self.packet),
        ]
        if self.is_session:
            lines.insert(-2, "session crash: the packet below is step "
                             f"{(self.crash_step or 0) + 1} of a "
                             "multi-packet trace (replay the full trace "
                             "to reproduce)")
        return "\n".join(line for line in lines if line != "")


def report_from_fault(fault: MemoryFault, packet: bytes,
                      model_name: Optional[str] = None,
                      execution_index: int = 0,
                      call_sites: Tuple[int, ...] = ()) -> CrashReport:
    """Build a :class:`CrashReport` from a raised memory fault."""
    return CrashReport(
        kind=fault.kind,
        site=fault.site,
        detail=fault.detail,
        packet=packet,
        model_name=model_name,
        execution_index=execution_index,
        call_sites=tuple(call_sites),
    )


class CrashDatabase:
    """Deduplicated store of crashes found during a campaign (the C7 set).

    Beyond membership, the database tracks *when* each unique bug was
    first seen (simulated hours).  Re-observations never displace the
    stored report, except when they carry an **earlier** timestamp or
    execution index — which happens when results from parallel shards are
    merged in arbitrary order — in which case the earliest observation
    wins, keeping time-to-bug statistics order-independent.
    """

    def __init__(self):
        self._unique: Dict[tuple, CrashReport] = {}
        #: dedup key -> earliest simulated hours the bug was observed
        self.first_seen: Dict[tuple, float] = {}
        self.total_crashes = 0

    def add(self, report: CrashReport,
            sim_hours: Optional[float] = None) -> bool:
        """Record a crash; return True when it is a *new* unique bug.

        *sim_hours* (when known) feeds the earliest-observation ledger; a
        duplicate with an earlier time than the stored one rewinds
        ``first_seen`` and takes over as the representative report.
        """
        self.total_crashes += 1
        key = report.dedup_key
        if key not in self._unique:
            self._unique[key] = report
            if sim_hours is not None:
                self.first_seen[key] = sim_hours
            return True
        if sim_hours is not None:
            known = self.first_seen.get(key)
            if known is None:
                # the stored report predates the ledger: record the time
                # but keep whichever observation came first
                self.first_seen[key] = sim_hours
                if report.execution_index < \
                        self._unique[key].execution_index:
                    self._unique[key] = report
            elif sim_hours < known:
                self.first_seen[key] = sim_hours
                self._unique[key] = report
        elif report.execution_index < self._unique[key].execution_index:
            self._unique[key] = report
        return False

    def merge(self, other: "CrashDatabase") -> int:
        """Fold another shard's database in; returns newly-unique count.

        Earliest observation wins on collisions regardless of merge
        order, fixing the parallel-merge timestamp hazard.
        """
        new_bugs = 0
        for key, report in other._unique.items():
            if self.add(report, other.first_seen.get(key)):
                new_bugs += 1
        # add() counted each unique report once; fold in the remainder of
        # the shard's raw crash total so totals stay exact
        self.total_crashes += other.total_crashes - len(other._unique)
        return new_bugs

    def unique_reports(self) -> List[CrashReport]:
        return list(self._unique.values())

    def unique_count(self) -> int:
        return len(self._unique)

    def count_by_kind(self) -> Dict[str, int]:
        """Vulnerability-type histogram (the shape of the paper's Table I)."""
        histogram: Dict[str, int] = {}
        for report in self._unique.values():
            histogram[report.kind] = histogram.get(report.kind, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self._unique)

    def __contains__(self, key: tuple) -> bool:
        return key in self._unique
