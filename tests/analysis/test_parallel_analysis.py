"""Analysis-layer fan-out: parallel sweeps must equal serial sweeps.

`run_headline` / `run_fig4_panel` schedule their campaigns as one batch
and regroup results by position; these tests pin the regrouping against
the serial path (jobs=1) so a reordering bug can't silently misattribute
a campaign to the wrong engine or target.
"""

from dataclasses import asdict

from repro.analysis.figures import run_fig4_panel
from repro.analysis.speedup import run_headline
from repro.core import CampaignConfig
from repro.protocols import get_target

_CONFIG = CampaignConfig(budget_hours=24.0, max_executions=80,
                         record_every=10)


def test_run_headline_parallel_matches_serial():
    targets = [get_target("libmodbus"), get_target("iec104")]
    serial = run_headline(targets, repetitions=2, budget_hours=24.0,
                          base_seed=9, config=_CONFIG, jobs=1)
    fanned = run_headline(targets, repetitions=2, budget_hours=24.0,
                          base_seed=9, config=_CONFIG, jobs=2)
    assert [asdict(s) for s in serial.summaries] == \
        [asdict(s) for s in fanned.summaries]
    assert [s.target_name for s in fanned.summaries] == \
        ["libmodbus", "iec104"]


def test_run_fig4_panel_parallel_matches_serial():
    spec = get_target("libmodbus")
    serial = run_fig4_panel(spec, repetitions=2, budget_hours=24.0,
                            base_seed=13, config=_CONFIG, jobs=1)
    fanned = run_fig4_panel(spec, repetitions=2, budget_hours=24.0,
                            base_seed=13, config=_CONFIG, jobs=2)
    assert serial.peach_curve == fanned.peach_curve
    assert serial.star_curve == fanned.star_curve
    assert [r.seed for r in fanned.peach_results] == \
        [r.seed for r in serial.peach_results]
    assert [r.engine_name for r in fanned.star_results] == \
        ["peach-star", "peach-star"]
