"""opendnp3-analog outstation: the fuzzed DNP3 target.

Implements the outstation-side packet pipeline of opendnp3: link-layer
validation (start octets, length, CRCs), transport reassembly header,
and an application layer dispatching function codes over object headers
with the full set of range qualifiers.  The many (function code × group ×
variation × qualifier) combinations give this target the "hundreds of
paths" scale the paper's Fig. 4f shows.

No vulnerabilities are seeded (Table I lists none for opendnp3); every
access is bounds-checked and malformed input is answered with IIN error
bits, mirroring the real library's defensive posture.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.protocols.dnp3 import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import Pointer, SimHeap

LOCAL_ADDRESS = 1
DB_BINARY_POINTS = 16
DB_ANALOG_POINTS = 8
DB_COUNTER_POINTS = 8


class Dnp3Server(ProtocolServer):
    """DNP3 outstation with opendnp3-shaped control flow."""

    name = "opendnp3"

    def __init__(self):
        self.restart_iin = True
        self.selected: Optional[Tuple[int, int]] = None
        self.app_seq = 0

    def reset(self) -> None:
        self.restart_iin = True
        self.selected = None
        self.app_seq = 0

    # ------------------------------------------------------------------
    # link layer
    # ------------------------------------------------------------------

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        if len(data) < codec.LINK_HEADER_LEN + 2:
            return None
        frame = heap.malloc_from(data, "link-frame")
        if heap.read_u8(frame, 0, "link_parser.cpp:start0") != codec.START0:
            return None
        if heap.read_u8(frame, 1, "link_parser.cpp:start1") != codec.START1:
            return None
        length = heap.read_u8(frame, 2, "link_parser.cpp:length")
        if length < 5:
            return None
        ctrl = heap.read_u8(frame, 3, "link_parser.cpp:ctrl")
        dest = heap.read_u16(frame, 4, "link_parser.cpp:dest",
                             endian="little")
        src = heap.read_u16(frame, 6, "link_parser.cpp:src", endian="little")
        header_crc = heap.read_u16(frame, 8, "link_parser.cpp:header_crc",
                                   endian="little")
        header = heap.read(frame, 0, 8, "link_parser.cpp:header_bytes")
        if header_crc != codec.crc(header):
            return None  # bad header CRC: frame discarded
        if dest != LOCAL_ADDRESS and dest != 0xFFFF:
            return None  # not addressed to us
        if ctrl & codec.LINK_PRM == 0:
            return None  # secondary-station frame: ignored by outstation
        link_fc = ctrl & 0x0F
        if link_fc == codec.LINK_FC_REQUEST_STATUS:
            return self._link_status(src)
        if link_fc not in (codec.LINK_FC_CONFIRMED_USER_DATA,
                           codec.LINK_FC_UNCONFIRMED_USER_DATA):
            return None
        user_data = self._extract_user_data(heap, frame, len(data), length)
        if user_data is None:
            return None
        return self._handle_transport(heap, user_data, src)

    def _extract_user_data(self, heap: SimHeap, frame: Pointer,
                           total: int, length: int) -> Optional[bytes]:
        """Validate block CRCs and collect the user data octets."""
        expected = length - 5  # user data octets announced by the header
        out = bytearray()
        pos = codec.LINK_HEADER_LEN + 2
        while pos < total and len(out) < expected:
            remaining = expected - len(out)
            block_len = min(codec.BLOCK_SIZE, remaining)
            if pos + block_len + 2 > total:
                return None  # truncated block
            block = heap.read(frame, pos, block_len,
                              "link_parser.cpp:block_bytes")
            block_crc = heap.read_u16(frame, pos + block_len,
                                      "link_parser.cpp:block_crc",
                                      endian="little")
            if block_crc != codec.crc(block):
                return None  # bad block CRC
            out += block
            pos += block_len + 2
        if len(out) != expected or pos != total:
            return None  # length mismatch with physical frame
        return bytes(out)

    def _link_status(self, src: int) -> bytes:
        logical = codec.build_link_header(
            5, 0x0B, src, LOCAL_ADDRESS)  # DIR=0 PRM=0 status-of-link
        return codec.add_crcs(logical)

    # ------------------------------------------------------------------
    # transport + application layers
    # ------------------------------------------------------------------

    def _handle_transport(self, heap: SimHeap, user_data: bytes,
                          src: int) -> Optional[bytes]:
        if len(user_data) < 1:
            return None
        segment = heap.malloc_from(user_data, "transport-segment")
        transport = heap.read_u8(segment, 0, "transport_rx.cpp:header")
        if transport & codec.TRANSPORT_FIR == 0:
            return None  # continuation without a first segment
        if transport & codec.TRANSPORT_FIN == 0:
            return None  # multi-segment reassembly not exercised per-packet
        apdu = user_data[1:]
        if len(apdu) < 2:
            return None
        return self._handle_apdu(heap, apdu, src)

    def _handle_apdu(self, heap: SimHeap, apdu: bytes,
                     src: int) -> Optional[bytes]:
        buf = heap.malloc_from(apdu, "apdu")
        app_ctrl = heap.read_u8(buf, 0, "app_layer.cpp:ctrl")
        function = heap.read_u8(buf, 1, "app_layer.cpp:function")
        self.app_seq = app_ctrl & 0x0F
        iin = 0
        if self.restart_iin:
            iin |= codec.IIN1_DEVICE_RESTART << 8
        objects = apdu[2:]
        if function == codec.FC_CONFIRM:
            return None  # confirms carry no response
        if function == codec.FC_READ:
            body, iin2 = self._handle_read(heap, objects)
            return self._respond(iin | iin2, body, src)
        if function == codec.FC_WRITE:
            iin2 = self._handle_write(heap, objects)
            return self._respond(iin | iin2, b"", src)
        if function in (codec.FC_SELECT, codec.FC_OPERATE,
                        codec.FC_DIRECT_OPERATE,
                        codec.FC_DIRECT_OPERATE_NR):
            body, iin2 = self._handle_control(heap, objects, function)
            if function == codec.FC_DIRECT_OPERATE_NR:
                return None  # no-response variant
            return self._respond(iin | iin2, body, src)
        if function == codec.FC_FREEZE:
            iin2 = self._handle_freeze(heap, objects)
            return self._respond(iin | iin2, b"", src)
        if function in (codec.FC_COLD_RESTART, codec.FC_WARM_RESTART):
            self.restart_iin = True
            # time-delay fine object (g52v2), one 16-bit value
            body = codec.object_header(52, 2, codec.QC_COUNT_8, bytes((1,)))
            body += (5000).to_bytes(2, "little")
            return self._respond(iin, body, src)
        if function == codec.FC_DELAY_MEASURE:
            body = codec.object_header(52, 2, codec.QC_COUNT_8, bytes((1,)))
            body += (1).to_bytes(2, "little")
            return self._respond(iin, body, src)
        return self._respond(iin | (codec.IIN2_NO_FUNC_CODE_SUPPORT), b"",
                             src)

    # ------------------------------------------------------------------
    # object-header walking
    # ------------------------------------------------------------------

    def _parse_headers(self, heap: SimHeap,
                       objects: bytes) -> Optional[List[dict]]:
        """Walk all object headers; None on malformed input."""
        buf = heap.malloc_from(objects, "object-headers") if objects else None
        headers: List[dict] = []
        pos = 0
        while pos < len(objects):
            if pos + 3 > len(objects):
                return None
            group = heap.read_u8(buf, pos, "app_parser.cpp:group")
            variation = heap.read_u8(buf, pos + 1, "app_parser.cpp:variation")
            qualifier = heap.read_u8(buf, pos + 2, "app_parser.cpp:qualifier")
            pos += 3
            header = {"group": group, "variation": variation,
                      "qualifier": qualifier, "count": 0, "start": 0,
                      "indices": [], "data_pos": pos}
            if qualifier == codec.QC_ALL:
                pass
            elif qualifier in (codec.QC_START_STOP_8, codec.QC_START_STOP_16):
                width = 1 if qualifier == codec.QC_START_STOP_8 else 2
                if pos + 2 * width > len(objects):
                    return None
                start = int.from_bytes(objects[pos:pos + width], "little")
                stop = int.from_bytes(objects[pos + width:pos + 2 * width],
                                      "little")
                pos += 2 * width
                if stop < start:
                    return None
                header["start"] = start
                header["count"] = stop - start + 1
            elif qualifier in (codec.QC_COUNT_8, codec.QC_COUNT_16):
                width = 1 if qualifier == codec.QC_COUNT_8 else 2
                if pos + width > len(objects):
                    return None
                header["count"] = int.from_bytes(objects[pos:pos + width],
                                                 "little")
                pos += width
            elif qualifier in (codec.QC_INDEX_8, codec.QC_INDEX_16):
                width = 1 if qualifier == codec.QC_INDEX_8 else 2
                if pos + width > len(objects):
                    return None
                count = int.from_bytes(objects[pos:pos + width], "little")
                pos += width
                if count > 64:
                    return None  # sanity bound, as opendnp3 enforces
                header["count"] = count
                header["index_width"] = width
            else:
                return None  # unknown qualifier
            size = self._object_size(group, variation)
            if size is None:
                header["unknown_object"] = True
                headers.append(header)
                # cannot skip unknown payload reliably: stop parsing
                break
            payload = 0
            if qualifier in (codec.QC_INDEX_8, codec.QC_INDEX_16):
                width = header["index_width"]
                payload = header["count"] * (width + size)
            elif qualifier != codec.QC_ALL:
                payload = header["count"] * size
            if pos + payload > len(objects):
                return None
            header["data_pos"] = pos
            pos += payload
            headers.append(header)
        return headers

    @staticmethod
    def _object_size(group: int, variation: int) -> Optional[int]:
        """Request-direction object payload size per (group, variation)."""
        table = {
            (1, 0): 0, (1, 1): 0, (1, 2): 0,
            (10, 0): 0, (10, 2): 0,
            (12, 1): 11,
            (20, 0): 0, (20, 1): 0, (20, 2): 0,
            (30, 0): 0, (30, 1): 0, (30, 2): 0, (30, 3): 0, (30, 4): 0,
            (41, 1): 5, (41, 2): 3, (41, 3): 5, (41, 4): 9,
            (50, 1): 6,
            (52, 2): 2,
            (60, 1): 0, (60, 2): 0, (60, 3): 0, (60, 4): 0,
            (80, 1): 0,
        }
        return table.get((group, variation))

    # ------------------------------------------------------------------
    # per-function handlers
    # ------------------------------------------------------------------

    def _handle_read(self, heap: SimHeap,
                     objects: bytes) -> Tuple[bytes, int]:
        headers = self._parse_headers(heap, objects)
        if headers is None:
            return b"", codec.IIN2_PARAMETER_ERROR
        if not headers:
            return b"", codec.IIN2_PARAMETER_ERROR
        body = bytearray()
        iin2 = 0
        for header in headers:
            if header.get("unknown_object"):
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
                continue
            group = header["group"]
            if group == 60:
                body += self._read_class_data(header["variation"])
            elif group == 1:
                body += self._read_binaries(header)
            elif group == 10:
                body += self._read_binary_outputs(header)
            elif group == 20:
                body += self._read_counters(header)
            elif group == 30:
                body += self._read_analogs(header)
            else:
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
        return bytes(body), iin2

    def _read_class_data(self, variation: int) -> bytes:
        if variation == 1:  # class 0: static data snapshot
            return (self._read_binaries({"start": 0,
                                         "count": DB_BINARY_POINTS,
                                         "qualifier": codec.QC_ALL})
                    + self._read_analogs({"start": 0,
                                          "count": DB_ANALOG_POINTS,
                                          "qualifier": codec.QC_ALL}))
        if variation in (2, 3, 4):  # event classes: empty here
            return b""
        return b""

    def _read_binaries(self, header: dict) -> bytes:
        start, count = self._clamp_range(header, DB_BINARY_POINTS)
        if count == 0:
            return b""
        out = codec.object_header(
            1, 1, codec.QC_START_STOP_8,
            bytes((start, start + count - 1)))
        bits = bytearray((count + 7) // 8)
        for i in range(count):
            if (start + i) % 3 == 0:  # deterministic pattern
                bits[i // 8] |= 1 << (i % 8)
        return out + bytes(bits)

    def _read_binary_outputs(self, header: dict) -> bytes:
        start, count = self._clamp_range(header, DB_BINARY_POINTS)
        if count == 0:
            return b""
        out = codec.object_header(
            10, 2, codec.QC_START_STOP_8,
            bytes((start, start + count - 1)))
        return out + bytes(0x01 for _ in range(count))

    def _read_counters(self, header: dict) -> bytes:
        start, count = self._clamp_range(header, DB_COUNTER_POINTS)
        if count == 0:
            return b""
        out = codec.object_header(
            20, 1, codec.QC_START_STOP_8,
            bytes((start, start + count - 1)))
        body = bytearray()
        for i in range(count):
            body += bytes((0x01,))  # flags
            body += ((start + i) * 100).to_bytes(4, "little")
        return out + bytes(body)

    def _read_analogs(self, header: dict) -> bytes:
        start, count = self._clamp_range(header, DB_ANALOG_POINTS)
        if count == 0:
            return b""
        out = codec.object_header(
            30, 2, codec.QC_START_STOP_8,
            bytes((start, start + count - 1)))
        body = bytearray()
        for i in range(count):
            body += bytes((0x01,))  # flags
            body += ((start + i) * 10 + 3).to_bytes(2, "little")
        return out + bytes(body)

    @staticmethod
    def _clamp_range(header: dict, db_size: int) -> Tuple[int, int]:
        start = header.get("start", 0)
        count = header.get("count", 0)
        if header.get("qualifier") == codec.QC_ALL:
            return 0, db_size
        if start >= db_size:
            return 0, 0
        return start, min(count, db_size - start)

    def _handle_write(self, heap: SimHeap, objects: bytes) -> int:
        headers = self._parse_headers(heap, objects)
        if headers is None or not headers:
            return codec.IIN2_PARAMETER_ERROR
        iin2 = 0
        for header in headers:
            if header.get("unknown_object"):
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
                continue
            group, variation = header["group"], header["variation"]
            if (group, variation) == (50, 1):
                if header["count"] != 1:
                    iin2 |= codec.IIN2_PARAMETER_ERROR
                    continue
                time_bytes = objects[header["data_pos"]:
                                     header["data_pos"] + 6]
                _timestamp = int.from_bytes(time_bytes, "little")
            elif (group, variation) == (80, 1):
                if header.get("start") == 7:
                    self.restart_iin = False  # clear restart IIN
                else:
                    iin2 |= codec.IIN2_PARAMETER_ERROR
            else:
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
        return iin2

    def _handle_control(self, heap: SimHeap, objects: bytes,
                        function: int) -> Tuple[bytes, int]:
        headers = self._parse_headers(heap, objects)
        if headers is None or not headers:
            return b"", codec.IIN2_PARAMETER_ERROR
        body = bytearray()
        iin2 = 0
        for header in headers:
            if header.get("unknown_object"):
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
                continue
            group, variation = header["group"], header["variation"]
            if header["qualifier"] not in (codec.QC_INDEX_8,
                                           codec.QC_INDEX_16):
                iin2 |= codec.IIN2_PARAMETER_ERROR
                continue
            if group == 12 and variation == 1:
                echoed, status = self._control_crob(heap, objects, header,
                                                    function)
                body += echoed
                if status:
                    iin2 |= codec.IIN2_PARAMETER_ERROR
            elif group == 41:
                echoed, status = self._control_analog(heap, objects, header,
                                                      function)
                body += echoed
                if status:
                    iin2 |= codec.IIN2_PARAMETER_ERROR
            else:
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
        return bytes(body), iin2

    def _control_crob(self, heap: SimHeap, objects: bytes, header: dict,
                      function: int) -> Tuple[bytes, int]:
        width = header["index_width"]
        size = 11
        pos = header["data_pos"]
        status_out = 0
        echoed = bytearray(codec.object_header(
            12, 1, header["qualifier"],
            header["count"].to_bytes(width, "little")))
        for _ in range(header["count"]):
            index = int.from_bytes(objects[pos:pos + width], "little")
            record = objects[pos + width:pos + width + size]
            pos += width + size
            code = record[0]
            op_type = code & 0x0F
            if index >= DB_BINARY_POINTS:
                status = 4  # NOT_SUPPORTED
            elif op_type not in (1, 2, 3, 4):
                status = 3  # FORMAT_ERROR
            elif function == codec.FC_OPERATE and self.selected != \
                    (12, index):
                status = 2  # NO_SELECT
            else:
                status = 0
                if function == codec.FC_SELECT:
                    self.selected = (12, index)
            if status:
                status_out = 1
            echoed += index.to_bytes(width, "little")
            echoed += record[:10] + bytes((status,))
        return bytes(echoed), status_out

    def _control_analog(self, heap: SimHeap, objects: bytes, header: dict,
                        function: int) -> Tuple[bytes, int]:
        width = header["index_width"]
        size = self._object_size(41, header["variation"]) or 3
        pos = header["data_pos"]
        status_out = 0
        echoed = bytearray(codec.object_header(
            41, header["variation"], header["qualifier"],
            header["count"].to_bytes(width, "little")))
        for _ in range(header["count"]):
            index = int.from_bytes(objects[pos:pos + width], "little")
            record = objects[pos + width:pos + width + size]
            pos += width + size
            if index >= DB_ANALOG_POINTS:
                status = 4
            elif function == codec.FC_OPERATE and self.selected != \
                    (41, index):
                status = 2
            else:
                status = 0
                if function == codec.FC_SELECT:
                    self.selected = (41, index)
            if status:
                status_out = 1
            echoed += index.to_bytes(width, "little")
            echoed += record[:size - 1] + bytes((status,))
        return bytes(echoed), status_out

    def _handle_freeze(self, heap: SimHeap, objects: bytes) -> int:
        headers = self._parse_headers(heap, objects)
        if headers is None or not headers:
            return codec.IIN2_PARAMETER_ERROR
        iin2 = 0
        for header in headers:
            if header.get("unknown_object") or header["group"] != 20:
                iin2 |= codec.IIN2_OBJECT_UNKNOWN
        return iin2

    # ------------------------------------------------------------------
    # response assembly
    # ------------------------------------------------------------------

    def _respond(self, iin: int, body: bytes, src: int) -> bytes:
        app = bytes((0xC0 | self.app_seq, codec.FC_RESPONSE,
                     (iin >> 8) & 0xFF, iin & 0xFF)) + body
        transport = bytes((codec.TRANSPORT_FIN | codec.TRANSPORT_FIR,))
        user_data = transport + app
        logical = codec.build_link_header(
            5 + len(user_data), 0x44, src, LOCAL_ADDRESS) + user_data
        return codec.add_crcs(logical)
