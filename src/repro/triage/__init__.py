"""Crash triage: minimization, bucketing, severity, reproducer export.

The paper's workflow ends at ASan-style deduplication of the provoking
packet (Listing 2); this subsystem turns each unique crash into an
actionable artifact:

* :mod:`repro.triage.minimize` — byte-level ddmin combined with
  field-aware shrinking over the cracked InsTree, re-executed under the
  sanitizer until the smallest packet with the same ``(kind, site)``
  remains;
* :mod:`repro.triage.bucket` — bucketing beyond ``(kind, site)`` via the
  call-site-sequence hash captured by the instrumentation layer, plus
  severity classification from the fault kind;
* :mod:`repro.triage.reproducer` — standalone reproducer scripts and raw
  packet files per unique crash;
* :mod:`repro.triage.pipeline` — ties the three together for campaign
  results and persisted workspaces (``peachstar triage``).
"""

from repro.triage.bucket import (
    SEVERITY_ORDER, CrashBucket, bucket_crashes, classify_severity,
)
from repro.triage.minimize import (
    CrashChecker, MinimizationResult, ddmin_bytes, minimize_crash,
    shrink_fields,
)
from repro.triage.pipeline import TriagedCrash, TriageReport, triage_reports
from repro.triage.reproducer import export_reproducer, reproducer_script

__all__ = [
    "CrashBucket", "CrashChecker", "MinimizationResult", "SEVERITY_ORDER",
    "TriageReport", "TriagedCrash", "bucket_crashes", "classify_severity",
    "ddmin_bytes", "export_reproducer", "minimize_crash",
    "reproducer_script", "shrink_fields", "triage_reports",
]
