"""Simulated-memory sanitizer: the AddressSanitizer analog of the repro.

Provides the checked heap the protocol targets run against
(:class:`SimHeap`), the typed fault exceptions matching the paper's
Table I vulnerability types, and ASan-style crash reporting/dedup.
"""

from repro.sanitizer.errors import (
    DoubleFree, HeapBufferOverflow, HeapUseAfterFree, MemoryFault, NullDeref,
    SimSegv,
)
from repro.sanitizer.heap import Pointer, SimHeap
from repro.sanitizer.report import (
    CrashDatabase, CrashReport, report_from_fault,
)

__all__ = [
    "CrashDatabase", "CrashReport", "DoubleFree", "HeapBufferOverflow",
    "HeapUseAfterFree", "MemoryFault", "NullDeref", "Pointer", "SimHeap",
    "SimSegv", "report_from_fault",
]
