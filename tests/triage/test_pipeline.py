"""End-to-end triage: pipeline, reproducer export, summary table, CLI."""

import glob
import os
import subprocess
import sys

from repro.analysis import render_triage_table
from repro.triage import reproducer_script, triage_reports


class TestTriagePipeline:
    def test_full_pass_minimizes_and_exports(self, tmp_path,
                                             lib60870_crashes):
        spec, crashes = lib60870_crashes
        out_dir = str(tmp_path / "repro")
        report = triage_reports(spec, crashes, out_dir=out_dir)
        assert report.target_name == "lib60870"
        assert len(report.crashes) == len(crashes)
        assert report.minimized_count >= 1
        for crash in report.crashes:
            assert os.path.exists(crash.packet_path)
            assert os.path.exists(crash.script_path)
            with open(crash.packet_path, "rb") as handle:
                assert handle.read() == crash.final_packet

    def test_pooled_minimization_matches_serial(self, lib60870_crashes):
        """The process-pool fan-out (jobs>1) is a wall-clock knob only:
        per-crash minimizations are independent, so pooled results are
        bit-identical to the serial pass."""
        spec, crashes = lib60870_crashes
        serial = triage_reports(spec, crashes, jobs=1)
        pooled = triage_reports(spec, crashes, jobs=2)

        def signature(report):
            return [(crash.bucket.slug(),
                     crash.minimization.confirmed,
                     crash.minimization.minimized,
                     crash.minimization.dedup_key)
                    for crash in report.crashes]

        assert signature(serial) == signature(pooled)
        assert pooled.executions_spent == serial.executions_spent

    def test_table_renders_severity_and_sizes(self, lib60870_crashes):
        spec, crashes = lib60870_crashes
        report = triage_reports(spec, crashes, minimize=False)
        table = render_triage_table(report)
        assert "CRASH TRIAGE: lib60870" in table
        for crash in report.crashes:
            assert crash.bucket.site in table
            assert crash.bucket.severity in table

    def test_reproducer_script_replays_the_crash(self, tmp_path,
                                                 lib60870_crashes):
        spec, crashes = lib60870_crashes
        out_dir = str(tmp_path / "repro")
        triage_reports(spec, crashes[:1], out_dir=out_dir)
        script = glob.glob(os.path.join(out_dir, "*.py"))[0]
        src_root = os.path.join(os.path.dirname(__file__), "..", "..",
                                "src")
        env = dict(os.environ,
                   PYTHONPATH=os.path.abspath(src_root))
        proc = subprocess.run([sys.executable, script],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "SUMMARY: AddressSanitizer:" in proc.stdout

    def test_script_embeds_signature_and_packet(self, lib60870_crashes):
        spec, crashes = lib60870_crashes
        report = crashes[0]
        script = reproducer_script(spec.name, report)
        assert report.kind in script
        assert report.site in script
        assert report.packet.hex()[:32] in script.replace('"\n    "', "")


class TestTriageCli:
    def test_triage_workspace_flow(self, tmp_path, capsys):
        from repro.cli import main

        ws_dir = str(tmp_path / "ws")
        assert main(["fuzz", "lib60870", "--hours", "24", "--seed", "7",
                     "--workspace", ws_dir]) == 0
        assert main(["triage", "--workspace", ws_dir]) == 0
        out = capsys.readouterr().out
        assert "CRASH TRIAGE: lib60870" in out
        assert "reproducers exported to" in out
        assert glob.glob(os.path.join(ws_dir, "repro", "*.py"))

    def test_triage_requires_target_or_workspace(self, capsys):
        from repro.cli import main
        assert main(["triage"]) == 2

    def test_resume_cli_continues_workspace(self, tmp_path, capsys):
        from repro.cli import main

        ws_dir = str(tmp_path / "ws")
        assert main(["fuzz", "iec104", "--hours", "2", "--max-execs",
                     "120", "--workspace", ws_dir]) == 0
        assert main(["resume", ws_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("engine=peach-star target=iec104") == 2

    def test_resume_cli_rejects_non_workspace(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["resume", str(tmp_path)]) == 2
