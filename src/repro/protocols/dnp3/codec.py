"""DNP3 codec — link framing with interleaved CRCs, transport, app layer.

DNP3 (IEEE 1815) frames carry a CRC every 16 octets of user data plus one
over the 8-octet link header.  :func:`add_crcs` / :func:`strip_crcs`
convert between the *logical* frame (what the data models describe) and
the wire form; :class:`Dnp3CrcTransformer` plugs that into the model
layer the way Peach transformers do.
"""

from __future__ import annotations

from repro.model import Transformer
from repro.model.fixups import crc_dnp3

START0 = 0x05
START1 = 0x64
LINK_HEADER_LEN = 8  # start(2) + len(1) + ctrl(1) + dest(2) + src(2)
BLOCK_SIZE = 16

# link control: DIR | PRM | function
LINK_PRM = 0x40
LINK_FC_CONFIRMED_USER_DATA = 3
LINK_FC_UNCONFIRMED_USER_DATA = 4
LINK_FC_REQUEST_STATUS = 9

# transport header bits
TRANSPORT_FIN = 0x80
TRANSPORT_FIR = 0x40

# application function codes
FC_CONFIRM = 0
FC_READ = 1
FC_WRITE = 2
FC_SELECT = 3
FC_OPERATE = 4
FC_DIRECT_OPERATE = 5
FC_DIRECT_OPERATE_NR = 6
FC_FREEZE = 7
FC_COLD_RESTART = 13
FC_WARM_RESTART = 14
FC_DELAY_MEASURE = 23
FC_RESPONSE = 129
FC_UNSOLICITED = 130

# qualifier codes
QC_START_STOP_8 = 0x00
QC_START_STOP_16 = 0x01
QC_ALL = 0x06
QC_COUNT_8 = 0x07
QC_COUNT_16 = 0x08
QC_INDEX_8 = 0x17
QC_INDEX_16 = 0x28

# internal indication bits (first octet)
IIN1_DEVICE_RESTART = 0x80
IIN2_NO_FUNC_CODE_SUPPORT = 0x01
IIN2_OBJECT_UNKNOWN = 0x02
IIN2_PARAMETER_ERROR = 0x04


class FrameError(ValueError):
    """Raised by the safe codec on malformed wire frames."""


def crc(data: bytes) -> int:
    """The DNP3 CRC (DESIGN: shared with the model layer's fixup)."""
    return crc_dnp3(data)


def add_crcs(logical: bytes) -> bytes:
    """Insert the header CRC and per-16-octet-block CRCs.

    *logical* is the CRC-free frame: 8-octet link header + user data.
    Short inputs are passed through untouched (they are not valid frames
    and the server will reject them on its own).
    """
    if len(logical) < LINK_HEADER_LEN:
        return logical
    header = logical[:LINK_HEADER_LEN]
    out = bytearray(header)
    out += crc(header).to_bytes(2, "little")
    user_data = logical[LINK_HEADER_LEN:]
    for start in range(0, len(user_data), BLOCK_SIZE):
        block = user_data[start:start + BLOCK_SIZE]
        out += block
        out += crc(block).to_bytes(2, "little")
    return bytes(out)


def strip_crcs(wire: bytes, *, verify: bool = True) -> bytes:
    """Remove and optionally verify the CRCs of a wire frame."""
    if len(wire) < LINK_HEADER_LEN + 2:
        raise FrameError("frame shorter than link header + CRC")
    header = wire[:LINK_HEADER_LEN]
    got = int.from_bytes(wire[LINK_HEADER_LEN:LINK_HEADER_LEN + 2], "little")
    if verify and got != crc(header):
        raise FrameError(f"bad header CRC {got:#06x}")
    out = bytearray(header)
    pos = LINK_HEADER_LEN + 2
    while pos < len(wire):
        remaining = len(wire) - pos
        if remaining < 3:
            raise FrameError("dangling bytes after last block")
        if remaining < BLOCK_SIZE + 2:  # last (short) block + its CRC
            block = wire[pos:len(wire) - 2]
        else:
            block = wire[pos:pos + BLOCK_SIZE]
        block_crc = int.from_bytes(
            wire[pos + len(block):pos + len(block) + 2], "little")
        if verify and block_crc != crc(block):
            raise FrameError(f"bad block CRC {block_crc:#06x}")
        out += block
        pos += len(block) + 2
    return bytes(out)


def strip_crcs_lenient(wire: bytes) -> bytes:
    """Best-effort CRC strip for damaged or truncated frames.

    CRCs are never verified, a partial or missing trailing CRC is
    dropped, and inputs too short to carry any CRC pass through — the
    non-strict model parse then makes what it can of the remains.
    Bit-identical to ``strip_crcs(wire, verify=False)`` on well-formed
    frames.
    """
    if len(wire) <= LINK_HEADER_LEN:
        return wire
    out = bytearray(wire[:LINK_HEADER_LEN])
    pos = LINK_HEADER_LEN + 2  # skip the (possibly partial) header CRC
    while pos < len(wire):
        remaining = len(wire) - pos
        if remaining >= BLOCK_SIZE + 2:
            out += wire[pos:pos + BLOCK_SIZE]
            pos += BLOCK_SIZE + 2
        elif remaining > 2:  # short last block (+ maybe-partial CRC)
            out += wire[pos:len(wire) - 2]
            break
        else:
            break  # nothing left but a dangling CRC fragment
    return bytes(out)


class Dnp3CrcTransformer(Transformer):
    """Model-layer transformer: logical frame <-> CRC-interleaved wire."""

    def encode(self, data: bytes) -> bytes:
        return add_crcs(data)

    def decode(self, data: bytes) -> bytes:
        try:
            return strip_crcs(data, verify=True)
        except FrameError as exc:
            from repro.model import ParseError
            raise ParseError(str(exc)) from exc

    def decode_lenient(self, data: bytes) -> bytes:
        return strip_crcs_lenient(data)


def build_link_header(length: int, ctrl: int, dest: int, src: int) -> bytes:
    return (bytes((START0, START1, length, ctrl))
            + dest.to_bytes(2, "little") + src.to_bytes(2, "little"))


def build_request(app_fc: int, objects: bytes = b"", *, dest: int = 1,
                  src: int = 2, app_seq: int = 0,
                  transport_seq: int = 0) -> bytes:
    """Build a complete wire request (link + transport + app, CRCs added)."""
    app = bytes((0xC0 | (app_seq & 0x0F), app_fc)) + objects
    transport = bytes((TRANSPORT_FIN | TRANSPORT_FIR
                       | (transport_seq & 0x3F),))
    user_data = transport + app
    length = 5 + len(user_data)
    logical = build_link_header(length, LINK_PRM
                                | LINK_FC_UNCONFIRMED_USER_DATA,
                                dest, src) + user_data
    return add_crcs(logical)


def object_header(group: int, variation: int, qualifier: int,
                  range_bytes: bytes = b"") -> bytes:
    return bytes((group, variation, qualifier)) + range_bytes


def parse_response(wire: bytes) -> dict:
    """Parse a response frame into its header fields (safe helper)."""
    logical = strip_crcs(wire, verify=True)
    if logical[0] != START0 or logical[1] != START1:
        raise FrameError("bad start octets")
    user = logical[LINK_HEADER_LEN:]
    if len(user) < 5:
        raise FrameError("response user data too short")
    return {
        "length": logical[2],
        "link_ctrl": logical[3],
        "dest": int.from_bytes(logical[4:6], "little"),
        "src": int.from_bytes(logical[6:8], "little"),
        "transport": user[0],
        "app_ctrl": user[1],
        "app_fc": user[2],
        "iin": int.from_bytes(user[3:5], "big"),
        "objects": user[5:],
    }
