"""Figure 4 reproduction: paths-covered-over-time curves with ASCII plots.

The paper's Fig. 4 plots the average number of paths covered by Peach and
Peach* over 24 hours, one panel per protocol project.  This module runs
the comparison and renders each panel as an ASCII chart so the benchmark
harness can print the same series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.campaign import (
    CampaignConfig, CampaignResult, CampaignTask, average_series,
    run_campaign_batch,
)

DEFAULT_CHECKPOINTS = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0)


@dataclass
class Fig4Panel:
    """One panel of Figure 4: both engines' averaged curves on a target."""

    target_name: str
    checkpoints: Tuple[float, ...]
    peach_curve: List[Tuple[float, float]]
    star_curve: List[Tuple[float, float]]
    peach_results: List[CampaignResult]
    star_results: List[CampaignResult]

    @property
    def final_increase_pct(self) -> float:
        peach_final = self.peach_curve[-1][1]
        star_final = self.star_curve[-1][1]
        if peach_final <= 0:
            return 0.0
        return (star_final - peach_final) / peach_final * 100.0

    def series_rows(self) -> List[str]:
        """Tabular rows: hour, peach paths, peach* paths."""
        rows = [f"{'hour':>6} {'peach':>8} {'peach*':>8}"]
        for (hour, peach), (_h, star) in zip(self.peach_curve,
                                             self.star_curve):
            rows.append(f"{hour:6.1f} {peach:8.1f} {star:8.1f}")
        return rows


def run_fig4_panel(target_spec, *, repetitions: int = 3,
                   budget_hours: float = 24.0, base_seed: int = 100,
                   config: Optional[CampaignConfig] = None,
                   checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
                   jobs: Optional[int] = 1) -> Fig4Panel:
    """Run one Fig. 4 panel: N reps of each engine on one target.

    Both engines' repetitions are scheduled as one batch; ``jobs`` > 1
    runs them on that many worker processes with identical results.
    """
    if config is None:
        config = CampaignConfig(budget_hours=budget_hours)
    else:
        config = replace(config, budget_hours=budget_hours)
    checkpoints = tuple(h for h in checkpoints if h <= budget_hours)
    if not checkpoints or checkpoints[-1] < budget_hours:
        checkpoints = checkpoints + (budget_hours,)
    tasks = [CampaignTask(engine, target_spec.name,
                          base_seed + 1000 * rep, config)
             for engine in ("peach", "peach-star")
             for rep in range(repetitions)]
    results = run_campaign_batch(tasks, max_workers=jobs)
    peach = results[:repetitions]
    star = results[repetitions:]
    return Fig4Panel(
        target_name=target_spec.name,
        checkpoints=checkpoints,
        peach_curve=average_series(peach, checkpoints),
        star_curve=average_series(star, checkpoints),
        peach_results=peach,
        star_results=star,
    )


def ascii_chart(panel: Fig4Panel, *, width: int = 60,
                height: int = 12) -> str:
    """Render a Fig. 4 panel as an ASCII chart (``*`` = Peach*, ``o`` =
    Peach), mirroring the paper's two-line-per-panel layout."""
    top = max(max(v for _h, v in panel.star_curve),
              max(v for _h, v in panel.peach_curve), 1.0)
    last_hour = panel.checkpoints[-1]
    grid = [[" "] * width for _ in range(height)]

    def plot(curve, marker):
        for hour, value in curve:
            col = min(int(hour / last_hour * (width - 1)), width - 1)
            row = min(int(value / top * (height - 1)), height - 1)
            grid[height - 1 - row][col] = marker

    plot(panel.peach_curve, "o")
    plot(panel.star_curve, "*")  # star drawn second: wins ties visually
    lines = [f"paths covered on {panel.target_name} "
             f"(o=Peach, *=Peach*)  ymax={top:.0f}"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" 0h{'':{width - 8}}{last_hour:.0f}h")
    return "\n".join(lines)


def render_panel_report(panel: Fig4Panel) -> str:
    """Chart + table + headline line for one panel."""
    parts = [ascii_chart(panel), ""]
    parts.extend(panel.series_rows())
    parts.append("")
    parts.append(f"final paths: peach={panel.peach_curve[-1][1]:.1f} "
                 f"peach*={panel.star_curve[-1][1]:.1f} "
                 f"({panel.final_increase_pct:+.2f}%)")
    return "\n".join(parts)
