# One-word entry points for the tier-1 and presubmit commands.
#
#   make test        — tier-1: the full suite at the paper's 24h budgets
#   make smoke       — presubmit: same suite (conformance matrix
#                      included), campaigns compressed to 2 simulated
#                      hours / 1 repetition (claim gates skipped)
#   make bench       — the evaluation benchmarks only (regenerates
#                      BENCH_*.json)
#   make test-matrix — the cross-protocol conformance matrix plus the
#                      channel-fault/differential-oracle, live-network
#                      (socket/serve), coverage-impl parity and
#                      batched-execution identity suites
#   make fleet-demo  — a small synced 4-shard fleet in /tmp, rendered
#                      with the per-shard/merged summary table
#   make sessions-demo — the stateful session-fuzzing walkthrough
#                      (examples/fuzz_sessions.py on IEC 104)

PY ?= python
PYTEST_ARGS ?= -x -q
FLEET_DEMO_DIR ?= /tmp/peachstar-fleet-demo
SESSIONS_DEMO_HOURS ?= 8

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke bench test-matrix fleet-demo sessions-demo

test:
	$(PY) -m pytest $(PYTEST_ARGS)

smoke:
	REPRO_BENCH_HOURS=2 REPRO_BENCH_REPS=1 $(PY) -m pytest $(PYTEST_ARGS)

bench:
	$(PY) -m pytest benchmarks $(PYTEST_ARGS)

test-matrix:
	$(PY) -m pytest tests/protocols/test_conformance.py tests/channel \
		tests/net tests/runtime/test_vector_parity.py \
		tests/core/test_batching.py $(PYTEST_ARGS)

fleet-demo:
	rm -rf $(FLEET_DEMO_DIR)
	$(PY) -m repro.cli fleet libmodbus --shards 4 --sync-every 100 \
		--hours 4 --workspace $(FLEET_DEMO_DIR) --jobs 4

sessions-demo:
	$(PY) examples/fuzz_sessions.py $(SESSIONS_DEMO_HOURS)
