"""Target harness: run one packet against an instrumented protocol server.

``RUNTARGET`` of paper Alg. 1: feed the generated seed to the program
under test, watch for crashes and hangs, and (for Peach*) collect the
edge-coverage feedback.  Servers are in-process objects with a
``handle_packet(heap, data) -> bytes | None`` method; each execution gets
a fresh :class:`~repro.sanitizer.heap.SimHeap` so crashes are a
deterministic function of the packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.runtime.coverage import CoverageMap
from repro.runtime.instrument import (
    Collector, HangBudgetExceeded, capture_crash_context,
)
from repro.sanitizer.errors import MemoryFault
from repro.sanitizer.heap import SimHeap
from repro.sanitizer.report import CrashReport, report_from_fault


@dataclass(slots=True)
class ExecResult:
    """Outcome of one target execution (slotted: one per fuzz iteration)."""

    coverage: Optional[CoverageMap]
    crash: Optional[CrashReport]
    hang: bool
    response: Optional[bytes]
    blocks_executed: int = 0

    @property
    def crashed(self) -> bool:
        return self.crash is not None


class ProtocolServer:
    """Interface the six protocol targets implement."""

    #: short name matching the paper's project table (e.g. "libmodbus")
    name = "server"

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        """Process one request frame; may raise MemoryFault."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-connection state between executions (default: none)."""


class Target:
    """Binds a server factory to an instrumentation collector.

    Parameters
    ----------
    server_factory:
        Zero-argument callable returning a fresh :class:`ProtocolServer`.
        The server object is reused across executions (its ``reset`` is
        called); the heap is always fresh.
    collector:
        The instrumentation collector, or ``None`` for an uninstrumented
        baseline run (plain Peach collects no feedback during fuzzing —
        the paper adds the path-coverage *measurement* framework to both
        tools, which :class:`repro.core.campaign.Campaign` models
        separately).
    """

    def __init__(self, server_factory: Callable[[], ProtocolServer],
                 collector: Optional[Collector] = None):
        self.server = server_factory()
        self.collector = collector
        self.executions = 0

    def run(self, packet: bytes, model_name: Optional[str] = None) -> ExecResult:
        """Execute *packet* against the server; never lets faults escape."""
        self.executions += 1
        heap = SimHeap()
        self.server.reset()
        crash = None
        hang = False
        response = None
        blocks = 0
        if self.collector is not None:
            with self.collector:
                crash, hang, response = self._dispatch(
                    heap, packet, model_name)
            blocks = self.collector.blocks_executed
            coverage = self.collector.map
        else:
            crash, hang, response = self._dispatch(heap, packet, model_name)
            coverage = None
        return ExecResult(coverage=coverage, crash=crash, hang=hang,
                          response=response, blocks_executed=blocks)

    def _dispatch(self, heap: SimHeap, packet: bytes,
                  model_name: Optional[str]):
        try:
            response = self.server.handle_packet(heap, packet)
            return None, False, response
        except MemoryFault as fault:
            report = report_from_fault(
                fault, packet, model_name, self.executions,
                call_sites=capture_crash_context(self.collector))
            return report, False, None
        except HangBudgetExceeded:
            return None, True, None
