"""Fleet workspaces: shared corpus exchange + kill-and-resume determinism.

The acceptance gates of the fleet subsystem:

(a) a fleet's merged path-hash set is a superset of every single
    shard's set;
(b) a killed fleet resumed with ``resume_fleet`` finishes bit-identical
    to the uninterrupted fleet — at the round barrier, mid-round, and
    under repeated kills;
(c) corpus sync actually moves seeds: in a scenario where shard 0
    misses coverage shard 1 reaches, shard 0 imports at least one
    cross-shard seed and its map absorbs the missing state.
"""

import json
import os

import pytest

from repro.core import (
    CampaignConfig, resume_fleet, run_campaign, run_fleet,
)
from repro.protocols import get_target
from repro.store import FleetWorkspace, WorkspaceError, is_fleet_workspace
from repro.store.workspace import CampaignWorkspace


def _config(**overrides):
    base = dict(budget_hours=24.0, max_executions=300, record_every=10,
                checkpoint_every=50)
    base.update(overrides)
    return CampaignConfig(**base)


def _shard_signature(result):
    return (
        result.series,
        result.final_paths,
        result.final_edges,
        result.executions,
        sorted(report.dedup_key for report in result.unique_crashes),
        result.crash_times,
        result.stats,
        result.path_hashes,
    )


def _fleet_signature(fleet):
    return ([_shard_signature(result) for result in fleet.shard_results],
            fleet.rounds, fleet.merged_path_hashes,
            sorted(fleet.merged_crashes.first_seen.items()))


def _run(ws_dir, **kwargs):
    defaults = dict(shards=3, seed=5, sync_every=80, config=_config(),
                    max_workers=1)
    defaults.update(kwargs)
    return run_fleet("peach-star", get_target("libmodbus"),
                     workspace_dir=ws_dir, **defaults)


class TestFleetLayout:
    def test_initialize_creates_manifest_and_shards(self, tmp_path):
        ws_dir = str(tmp_path / "fleet")
        fleet = _run(ws_dir, config=_config(max_executions=90))
        assert is_fleet_workspace(ws_dir)
        assert not is_fleet_workspace(str(tmp_path))
        manifest = FleetWorkspace(ws_dir).load_manifest()
        assert manifest["shards"] == 3
        assert manifest["sync_every"] == 80
        assert manifest["target"] == "libmodbus"
        for shard in range(3):
            shard_dir = os.path.join(ws_dir, "shards", f"{shard:03d}")
            assert os.path.exists(os.path.join(shard_dir, "config.json"))
            assert os.path.exists(os.path.join(shard_dir, "result.json"))
        assert len(fleet.shard_results) == 3

    def test_initialize_refuses_existing_fleet(self, tmp_path):
        ws_dir = str(tmp_path / "fleet")
        _run(ws_dir, config=_config(max_executions=60))
        with pytest.raises(WorkspaceError):
            _run(ws_dir)

    def test_resume_needs_a_fleet(self, tmp_path):
        with pytest.raises(WorkspaceError):
            resume_fleet(str(tmp_path / "nope"))

    def test_shards_are_independently_seeded(self, tmp_path):
        fleet = _run(str(tmp_path / "fleet"))
        seeds = [result.seed for result in fleet.shard_results]
        assert seeds == [5, 1005, 2005]


class TestMergedViews:
    def test_merged_paths_superset_of_every_shard(self, tmp_path):
        fleet = _run(str(tmp_path / "fleet"), shards=4)
        merged = fleet.merged_path_hashes
        for result in fleet.shard_results:
            assert set(result.path_hashes) <= merged
        assert fleet.merged_paths >= max(result.final_paths
                                         for result in fleet.shard_results)

    def test_merged_crashes_keep_earliest_first_seen(self, tmp_path):
        fleet = _run(str(tmp_path / "fleet"), shards=4)
        for key, hours in fleet.merged_crashes.first_seen.items():
            observed = [result.crash_times[key]
                        for result in fleet.shard_results
                        if key in result.crash_times]
            assert hours == min(observed)


class TestKillAndResumeDeterminism:
    """The subsystem's headline guarantee, at every kill point."""

    def test_barrier_kill_resumes_bit_identical(self, tmp_path):
        full = _run(str(tmp_path / "full"))
        killed_dir = str(tmp_path / "killed")
        assert _run(killed_dir, stop_after_rounds=2) is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert _fleet_signature(resumed) == _fleet_signature(full)

    def test_mid_round_kill_resumes_bit_identical(self, tmp_path):
        full = _run(str(tmp_path / "full"))
        killed_dir = str(tmp_path / "killed")
        # 137 is deliberately not a checkpoint or boundary multiple:
        # every shard rewinds to its last checkpoint and re-executes
        assert _run(killed_dir, kill_shards_at_executions=137) is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert _fleet_signature(resumed) == _fleet_signature(full)
        # the workspaces converge too
        for shard in range(3):
            assert CampaignWorkspace(
                os.path.join(killed_dir, "shards", f"{shard:03d}")
            ).corpus_path_hashes() == CampaignWorkspace(
                os.path.join(str(tmp_path / "full"), "shards",
                             f"{shard:03d}")).corpus_path_hashes()

    def test_double_kill_still_converges(self, tmp_path):
        full = _run(str(tmp_path / "full"))
        killed_dir = str(tmp_path / "killed")
        assert _run(killed_dir, kill_shards_at_executions=137) is None
        assert resume_fleet(killed_dir, max_workers=1,
                            stop_after_rounds=3) is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert _fleet_signature(resumed) == _fleet_signature(full)

    def test_resume_finished_fleet_reproduces_result(self, tmp_path):
        ws_dir = str(tmp_path / "fleet")
        first = _run(ws_dir, config=_config(max_executions=160))
        again = resume_fleet(ws_dir, max_workers=1)
        assert _fleet_signature(again) == _fleet_signature(first)

    def test_pooled_fleet_matches_serial(self, tmp_path):
        serial = _run(str(tmp_path / "serial"))
        pooled = _run(str(tmp_path / "pooled"), max_workers=3)
        assert _fleet_signature(pooled) == _fleet_signature(serial)


class TestCorpusSync:
    """(c): a shard constructed to miss coverage imports it from the
    sibling that found it."""

    def test_shard0_imports_coverage_it_missed(self, tmp_path):
        # Establish the gap first: by the first sync boundary (80
        # execs), shard 0 running alone has strictly fewer paths than
        # shard 1 running alone — shard 1 reaches branches shard 0
        # missed, which is exactly what sync must transport.
        spec = get_target("libmodbus")
        solo = {}
        for shard, seed in ((0, 5), (1, 1005)):
            solo[shard] = run_campaign(
                "peach-star", spec, seed=seed,
                config=_config(max_executions=80))
        missing = set(solo[1].path_hashes) - set(solo[0].path_hashes)
        assert missing, "scenario must make shard 1 find what 0 misses"

        fleet = _run(str(tmp_path / "fleet"), shards=2)
        shard0 = fleet.shard_results[0]
        assert shard0.stats["imported_seeds"] >= 1
        assert fleet.imported_seeds[0] >= 1
        # at least one of the paths shard 0 missed solo arrived via sync
        assert missing & set(shard0.path_hashes)

    def test_imports_are_persisted_with_provenance(self, tmp_path):
        ws_dir = str(tmp_path / "fleet")
        fleet = _run(ws_dir, shards=2)
        assert sum(fleet.imported_seeds) >= 1
        imported = []
        for shard in range(2):
            corpus = os.path.join(ws_dir, "shards", f"{shard:03d}",
                                  "corpus")
            for name in sorted(os.listdir(corpus)):
                if "_sync_" not in name or not name.endswith(".json"):
                    continue
                with open(os.path.join(corpus, name)) as handle:
                    meta = json.load(handle)
                assert meta["src_shard"] != shard
                assert meta["sync_round"] >= 1
                imported.append(meta)
        assert len(imported) == sum(fleet.imported_seeds)

    def test_torn_journal_tail_is_pruned_on_resume(self, tmp_path):
        """A real SIGKILL can cut the last journal append mid-line;
        resume must prune the torn record (it is past the checkpoint by
        construction), not crash on it."""
        full = _run(str(tmp_path / "full"))
        killed_dir = str(tmp_path / "killed")
        assert _run(killed_dir, kill_shards_at_executions=137) is None
        for shard in range(3):
            journal = os.path.join(killed_dir, "shards", f"{shard:03d}",
                                   "coverage.jsonl")
            with open(journal, "a") as handle:
                handle.write('{"exec": 999, "path_hash": 1, "ma')
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert _fleet_signature(resumed) == _fleet_signature(full)

    def test_import_counts_survive_resume(self, tmp_path):
        full = _run(str(tmp_path / "full"), shards=2)
        killed_dir = str(tmp_path / "killed")
        assert _run(killed_dir, shards=2,
                    kill_shards_at_executions=97) is None
        resumed = resume_fleet(killed_dir, max_workers=1)
        assert resumed.imported_seeds == full.imported_seeds
        assert sum(resumed.imported_seeds) >= 1
