"""Burst loss on the faulting channel (``--channel-faults-burst``).

The burst fault drops a run of 2..N consecutive frames while spending
RNG draws only at burst start, so the draw sequence — and with it every
checkpoint/resume guarantee — stays a pure function of the checkpointed
RNG state.  ``burst == 0`` must leave the selection roll space exactly
as it was, so pre-burst seeded campaigns replay bit-identically.
"""

import json
import random

import pytest

from repro.channel import FAULT_KINDS, FaultingChannel
from repro.core import CampaignConfig, resume_campaign, run_campaign
from repro.protocols import get_target


class ScriptedRng:
    """Scripted rolls (``random``) and draws (``randrange``/``randint``)."""

    def __init__(self, rolls, ints=()):
        self.rolls = list(rolls)
        self.ints = list(ints)

    def random(self):
        return self.rolls.pop(0)

    def randrange(self, n):
        return self.ints.pop(0) % n

    def randint(self, low, high):
        return low + self.ints.pop(0) % (high - low + 1)


def _pump(channel, frames):
    delivered = []
    for index, wire in enumerate(frames):
        delivered.append(tuple(channel.transmit(index, wire)))
    delivered.append(tuple(channel.flush()))
    return delivered


WIRE = bytes(range(8))

#: the burst entry sits after the five base faults in the menu
BURST_INDEX = len(FAULT_KINDS)


class TestBurstUnit:
    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            FaultingChannel(0.5, random.Random(0), burst=-1)

    def test_burst_drops_a_run_without_midburst_rolls(self):
        # one selection roll + one length draw start the burst; the
        # continuation frames must spend NOTHING (the scripted RNG
        # would raise on any extra draw)
        rng = ScriptedRng([0.0, 1.0], [BURST_INDEX, 1])  # randint -> 3
        channel = FaultingChannel(0.5, rng, burst=4)
        assert channel.transmit(0, WIRE) == []   # burst start
        assert channel.transmit(1, WIRE) == []   # mid-burst, no rolls
        assert channel.transmit(2, WIRE) == []   # mid-burst, no rolls
        assert channel.transmit(3, WIRE) == [WIRE]  # burst over: 1.0 roll
        assert channel.faults_injected == 3
        assert channel.fault_counts["burst"] == 3

    def test_burst_length_is_clamped_to_at_least_two(self):
        rng = ScriptedRng([0.0, 1.0], [BURST_INDEX, 0])  # randint -> 2
        channel = FaultingChannel(0.5, rng, burst=2)
        assert channel.transmit(0, WIRE) == []
        assert channel.transmit(1, WIRE) == []
        assert channel.transmit(2, WIRE) == [WIRE]
        assert channel.fault_counts["burst"] == 2

    def test_held_reorder_frame_survives_a_burst(self):
        held = b"held-by-reorder"
        rng = ScriptedRng([0.0, 0.0],
                          [FAULT_KINDS.index("reorder"), BURST_INDEX, 0])
        channel = FaultingChannel(1.0, rng, burst=2)
        assert channel.transmit(0, held) == []
        # the burst eats the new frame but still delivers the held one —
        # the outage is ahead of the reorder buffer, not behind it
        assert channel.transmit(1, WIRE) == [held]
        assert channel.transmit(2, WIRE) == []
        assert channel.flush() == []

    def test_zero_burst_keeps_the_menu_unchanged(self):
        # with burst=0 the selection roll space must be exactly the
        # five base faults, or every pre-burst seeded campaign would
        # replay differently
        with_default = FaultingChannel(0.4, random.Random(77))
        with_zero = FaultingChannel(0.4, random.Random(77), burst=0)
        frames = [bytes([seed] * (3 + seed % 9)) for seed in range(64)]
        assert _pump(with_default, frames) == _pump(with_zero, frames)
        assert with_default._menu() == FAULT_KINDS
        assert with_zero._menu() == FAULT_KINDS

    def test_reset_clears_a_burst_in_progress(self):
        rng = ScriptedRng([0.0, 1.0], [BURST_INDEX, 1])
        channel = FaultingChannel(0.5, rng, burst=4)
        channel.transmit(0, WIRE)
        assert channel._burst_remaining > 0
        channel.reset()
        assert channel._burst_remaining == 0
        assert channel.transmit(1, WIRE) == [WIRE]  # spends the 1.0 roll


class TestBurstDeterminism:
    FRAMES = [bytes([seed] * (3 + seed % 9)) for seed in range(128)]

    def test_same_seed_same_stream(self):
        first = FaultingChannel(0.4, random.Random(77), burst=5)
        second = FaultingChannel(0.4, random.Random(77), burst=5)
        assert _pump(first, self.FRAMES) == _pump(second, self.FRAMES)
        assert first.fault_counts == second.fault_counts
        assert first.fault_counts["burst"] > 0
        assert sum(first.fault_counts.values()) == first.faults_injected

    def test_snapshot_restore_roundtrips_midstream(self):
        reference = FaultingChannel(0.4, random.Random(9), burst=5)
        _pump(reference, self.FRAMES[:64])
        blob = json.loads(json.dumps(reference.snapshot()))
        assert blob["burst"] == 5
        tail_expected = _pump(reference, self.FRAMES[64:])

        rewound = FaultingChannel(0.9, random.Random(0))
        rewound.restore(blob)
        assert rewound.burst == 5
        assert rewound.fault_counts["burst"] == blob["fault_counts"]["burst"]
        assert _pump(rewound, self.FRAMES[64:]) == tail_expected

    def test_legacy_snapshot_without_burst_fields_restores(self):
        # a pre-burst workspace checkpoint has no burst keys: restoring
        # one must come up with the burst fault disabled, not KeyError
        blob = FaultingChannel(0.4, random.Random(3)).snapshot()
        del blob["burst"]
        del blob["burst_remaining"]
        del blob["fault_counts"]["burst"]
        channel = FaultingChannel(0.1, random.Random(0), burst=7)
        channel.restore(blob)
        assert channel.burst == 0
        assert channel._burst_remaining == 0
        assert channel.fault_counts["burst"] == 0


class TestBurstCampaignAcceptance:
    def _config(self, **overrides):
        base = dict(budget_hours=24.0, max_executions=300, record_every=10,
                    checkpoint_every=50, sessions=True,
                    channel_faults=0.25, channel_burst=4)
        base.update(overrides)
        return CampaignConfig(**base)

    def _signature(self, result):
        return (
            result.series, result.final_paths, result.final_edges,
            result.executions,
            sorted(report.dedup_key for report in result.unique_crashes),
            sorted(report.dedup_key
                   for report in result.unique_divergences),
            result.crash_times, result.stats, result.path_hashes,
        )

    def test_burst_without_faults_is_rejected(self):
        spec = get_target("iec104")
        with pytest.raises(ValueError):
            run_campaign("peach-star", spec, seed=0,
                         config=self._config(channel_faults=0.0))

    def test_burst_campaign_kill_resume_bit_identical(self, tmp_path):
        spec = get_target("iec104")
        full = run_campaign(
            "peach-star", spec, seed=11,
            config=self._config(workspace=str(tmp_path / "full")))
        assert full.stats["channel_faults"] > 0

        killed_dir = str(tmp_path / "killed")
        assert run_campaign("peach-star", spec, seed=11,
                            config=self._config(workspace=killed_dir),
                            stop_after_executions=173) is None
        resumed = resume_campaign(killed_dir)
        assert self._signature(resumed) == self._signature(full)
