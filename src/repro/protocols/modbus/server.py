"""libmodbus-analog server: the fuzzed Modbus/TCP target.

This is the program-under-test for the libmodbus rows of the paper's
evaluation.  It re-implements libmodbus's request processing C-style: the
incoming frame is copied into a simulated-heap buffer and every access
goes through checked heap reads, so memory-safety mistakes surface as
typed faults.

Two vulnerabilities are seeded, matching Table I's libmodbus row
(1 heap-use-after-free + 1 SEGV):

* ``modbus.c:respond_exception_after_free`` — when a WRITE MULTIPLE
  REGISTERS request carries a *valid* quantity but an inconsistent byte
  count, the request buffer is freed before the exception response is
  formatted, which then re-reads the function code from the freed buffer
  (heap-use-after-free).
* ``modbus.c:fc23_read_registers`` — READ/WRITE MULTIPLE REGISTERS
  computes the source address of the read-back phase from the unchecked
  read_address field (SEGV on wild address).

Both require several validity conditions to hold simultaneously, which is
what makes them "deep" for a random generator and easy prey for
coverage-guided packet crack and generation.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.modbus import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import Pointer, SimHeap

# Server register map sizes (libmodbus's mb_mapping_new defaults scaled).
NB_COILS = 512
NB_DISCRETE_INPUTS = 512
NB_HOLDING_REGISTERS = 512
NB_INPUT_REGISTERS = 256

MAX_READ_BITS = 2000
MAX_READ_REGISTERS = 125
MAX_WRITE_BITS = 1968
MAX_WRITE_REGISTERS = 123
MAX_WR_READ_REGISTERS = 125

_DEVICE_ID_OBJECTS = {
    0x00: b"repro-modbus",
    0x01: b"libmodbus-analog",
    0x02: b"v1.0",
}


class ModbusServer(ProtocolServer):
    """Stateful Modbus/TCP responder with libmodbus-shaped control flow."""

    name = "libmodbus"

    def __init__(self):
        self.event_counter = 0
        self.diagnostic_register = 0
        self.listen_only = False

    def reset(self) -> None:
        self.event_counter = 0
        self.diagnostic_register = 0
        self.listen_only = False

    # ------------------------------------------------------------------
    # frame entry
    # ------------------------------------------------------------------

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        """Process one TCP frame; returns the response frame or None."""
        if len(data) < 8:
            return None  # libmodbus waits for more bytes
        req = heap.malloc_from(data, "request-frame")
        transaction_id = heap.read_u16(req, 0, "modbus.c:mbap_tid")
        protocol_id = heap.read_u16(req, 2, "modbus.c:mbap_pid")
        length = heap.read_u16(req, 4, "modbus.c:mbap_len")
        unit_id = heap.read_u8(req, 6, "modbus.c:mbap_uid")
        if protocol_id != codec.PROTOCOL_ID:
            heap.free(req, "modbus.c:drop_bad_protocol")
            return None
        if length != len(data) - 6:
            heap.free(req, "modbus.c:drop_bad_length")
            return None
        if length < 2:
            heap.free(req, "modbus.c:drop_short_pdu")
            return None
        function = heap.read_u8(req, 7, "modbus.c:read_function")
        # allocate the register map the way mb_mapping_new does
        mapping = _Mapping(heap)
        pdu_len = length - 2  # bytes after the function code
        response = self._dispatch(heap, req, mapping, function, pdu_len,
                                  transaction_id, unit_id)
        return response

    def _dispatch(self, heap: SimHeap, req: Pointer, mapping: "_Mapping",
                  function: int, pdu_len: int, transaction_id: int,
                  unit_id: int) -> Optional[bytes]:
        if function == codec.FC_READ_COILS:
            return self._read_bits(heap, req, mapping.coils, NB_COILS,
                                   function, pdu_len, transaction_id, unit_id)
        if function == codec.FC_READ_DISCRETE_INPUTS:
            return self._read_bits(heap, req, mapping.discrete_inputs,
                                   NB_DISCRETE_INPUTS, function, pdu_len,
                                   transaction_id, unit_id)
        if function == codec.FC_READ_HOLDING_REGISTERS:
            return self._read_registers(heap, req, mapping.holding_registers,
                                        NB_HOLDING_REGISTERS, function,
                                        pdu_len, transaction_id, unit_id)
        if function == codec.FC_READ_INPUT_REGISTERS:
            return self._read_registers(heap, req, mapping.input_registers,
                                        NB_INPUT_REGISTERS, function,
                                        pdu_len, transaction_id, unit_id)
        if function == codec.FC_WRITE_SINGLE_COIL:
            return self._write_single_coil(heap, req, mapping, pdu_len,
                                           transaction_id, unit_id)
        if function == codec.FC_WRITE_SINGLE_REGISTER:
            return self._write_single_register(heap, req, mapping, pdu_len,
                                               transaction_id, unit_id)
        if function == codec.FC_READ_EXCEPTION_STATUS:
            return self._read_exception_status(heap, req, transaction_id,
                                               unit_id)
        if function == codec.FC_DIAGNOSTICS:
            return self._diagnostics(heap, req, pdu_len, transaction_id,
                                     unit_id)
        if function == codec.FC_GET_COMM_EVENT_COUNTER:
            return self._comm_event_counter(heap, req, transaction_id,
                                            unit_id)
        if function == codec.FC_WRITE_MULTIPLE_COILS:
            return self._write_multiple_coils(heap, req, mapping, pdu_len,
                                              transaction_id, unit_id)
        if function == codec.FC_WRITE_MULTIPLE_REGISTERS:
            return self._write_multiple_registers(heap, req, mapping,
                                                  pdu_len, transaction_id,
                                                  unit_id)
        if function == codec.FC_REPORT_SERVER_ID:
            return self._report_server_id(heap, req, transaction_id, unit_id)
        if function == codec.FC_MASK_WRITE_REGISTER:
            return self._mask_write(heap, req, mapping, pdu_len,
                                    transaction_id, unit_id)
        if function == codec.FC_READ_WRITE_MULTIPLE_REGISTERS:
            return self._read_write_multiple(heap, req, mapping, pdu_len,
                                             transaction_id, unit_id)
        if function == codec.FC_READ_DEVICE_IDENTIFICATION:
            return self._device_identification(heap, req, pdu_len,
                                               transaction_id, unit_id)
        return self._exception(transaction_id, unit_id, function,
                               codec.EX_ILLEGAL_FUNCTION)

    # ------------------------------------------------------------------
    # response helpers (shared code blocks of the paper's Fig. 2b)
    # ------------------------------------------------------------------

    @staticmethod
    def _respond(transaction_id: int, unit_id: int, pdu: bytes) -> bytes:
        return codec.build_mbap(transaction_id, unit_id, pdu)

    def _exception(self, transaction_id: int, unit_id: int, function: int,
                   code: int) -> bytes:
        self.event_counter += 1
        pdu = bytes(((function | 0x80) & 0xFF, code))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x01 / 0x02 — read bits
    # ------------------------------------------------------------------

    def _read_bits(self, heap: SimHeap, req: Pointer, table: Pointer,
                   table_size: int, function: int, pdu_len: int,
                   transaction_id: int, unit_id: int) -> bytes:
        if pdu_len != 4:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:read_bits_addr")
        quantity = heap.read_u16(req, 10, "modbus.c:read_bits_quantity")
        if quantity < 1 or quantity > MAX_READ_BITS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if address + quantity > table_size:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        byte_count = (quantity + 7) // 8
        out = bytearray(byte_count)
        for index in range(quantity):
            bit = heap.read_u8(table, address + index,
                               "modbus.c:read_bits_loop") & 1
            if bit:
                out[index // 8] |= 1 << (index % 8)
        self.event_counter += 1
        pdu = bytes((function, byte_count)) + bytes(out)
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x03 / 0x04 — read registers
    # ------------------------------------------------------------------

    def _read_registers(self, heap: SimHeap, req: Pointer, table: Pointer,
                        table_size: int, function: int, pdu_len: int,
                        transaction_id: int, unit_id: int) -> bytes:
        if pdu_len != 4:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:read_regs_addr")
        quantity = heap.read_u16(req, 10, "modbus.c:read_regs_quantity")
        if quantity < 1 or quantity > MAX_READ_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if address + quantity > table_size:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        parts = []
        for index in range(quantity):
            value = heap.read_u16(table, (address + index) * 2,
                                  "modbus.c:read_regs_loop")
            parts.append(value.to_bytes(2, "big"))
        self.event_counter += 1
        pdu = bytes((function, quantity * 2)) + b"".join(parts)
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x05 / 0x06 — single writes
    # ------------------------------------------------------------------

    def _write_single_coil(self, heap: SimHeap, req: Pointer,
                           mapping: "_Mapping", pdu_len: int,
                           transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_WRITE_SINGLE_COIL
        if pdu_len != 4:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:write_coil_addr")
        value = heap.read_u16(req, 10, "modbus.c:write_coil_value")
        if value not in (0x0000, 0xFF00):
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if address >= NB_COILS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        heap.write_u8(mapping.coils, address,
                      1 if value == 0xFF00 else 0,
                      "modbus.c:write_coil_store")
        self.event_counter += 1
        pdu = (bytes((function,)) + address.to_bytes(2, "big")
               + value.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    def _write_single_register(self, heap: SimHeap, req: Pointer,
                               mapping: "_Mapping", pdu_len: int,
                               transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_WRITE_SINGLE_REGISTER
        if pdu_len != 4:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:write_reg_addr")
        value = heap.read_u16(req, 10, "modbus.c:write_reg_value")
        if address >= NB_HOLDING_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        heap.write_u16(mapping.holding_registers, address * 2, value,
                       "modbus.c:write_reg_store")
        self.event_counter += 1
        pdu = (bytes((function,)) + address.to_bytes(2, "big")
               + value.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x07 / 0x08 / 0x0B — status & diagnostics
    # ------------------------------------------------------------------

    def _read_exception_status(self, heap: SimHeap, req: Pointer,
                               transaction_id: int, unit_id: int) -> bytes:
        self.event_counter += 1
        pdu = bytes((codec.FC_READ_EXCEPTION_STATUS, 0x00))
        return self._respond(transaction_id, unit_id, pdu)

    def _diagnostics(self, heap: SimHeap, req: Pointer, pdu_len: int,
                     transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_DIAGNOSTICS
        if pdu_len != 4:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        sub_function = heap.read_u16(req, 8, "modbus.c:diag_sub")
        data = heap.read_u16(req, 10, "modbus.c:diag_data")
        if sub_function == 0x0000:  # return query data (echo)
            payload = data
        elif sub_function == 0x0001:  # restart communications option
            self.listen_only = False
            payload = data
        elif sub_function == 0x0002:  # return diagnostic register
            payload = self.diagnostic_register
        elif sub_function == 0x0004:  # force listen only mode
            self.listen_only = True
            return None  # no response in listen-only transition
        elif sub_function == 0x000A:  # clear counters
            self.event_counter = 0
            payload = 0
        elif sub_function == 0x000B:  # bus message count
            payload = self.event_counter & 0xFFFF
        elif sub_function == 0x000C:  # bus comm error count
            payload = 0
        elif sub_function == 0x000D:  # bus exception count
            payload = 0
        elif sub_function == 0x000E:  # server message count
            payload = self.event_counter & 0xFFFF
        else:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_FUNCTION)
        self.event_counter += 1
        pdu = (bytes((function,)) + sub_function.to_bytes(2, "big")
               + payload.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    def _comm_event_counter(self, heap: SimHeap, req: Pointer,
                            transaction_id: int, unit_id: int) -> bytes:
        self.event_counter += 1
        pdu = (bytes((codec.FC_GET_COMM_EVENT_COUNTER,))
               + (0).to_bytes(2, "big")
               + (self.event_counter & 0xFFFF).to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x0F — write multiple coils
    # ------------------------------------------------------------------

    def _write_multiple_coils(self, heap: SimHeap, req: Pointer,
                              mapping: "_Mapping", pdu_len: int,
                              transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_WRITE_MULTIPLE_COILS
        if pdu_len < 5:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:write_coils_addr")
        quantity = heap.read_u16(req, 10, "modbus.c:write_coils_quantity")
        byte_count = heap.read_u8(req, 12, "modbus.c:write_coils_bc")
        if quantity < 1 or quantity > MAX_WRITE_BITS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if byte_count != (quantity + 7) // 8 or pdu_len != 5 + byte_count:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if address + quantity > NB_COILS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        for index in range(quantity):
            byte = heap.read_u8(req, 13 + index // 8,
                                "modbus.c:write_coils_loop")
            bit = (byte >> (index % 8)) & 1
            heap.write_u8(mapping.coils, address + index, bit,
                          "modbus.c:write_coils_store")
        self.event_counter += 1
        pdu = (bytes((function,)) + address.to_bytes(2, "big")
               + quantity.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x10 — write multiple registers  [SEEDED BUG 1: use-after-free]
    # ------------------------------------------------------------------

    def _write_multiple_registers(self, heap: SimHeap, req: Pointer,
                                  mapping: "_Mapping", pdu_len: int,
                                  transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_WRITE_MULTIPLE_REGISTERS
        if pdu_len < 5:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:write_regs_addr")
        quantity = heap.read_u16(req, 10, "modbus.c:write_regs_quantity")
        byte_count = heap.read_u8(req, 12, "modbus.c:write_regs_bc")
        if quantity < 1 or quantity > MAX_WRITE_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if address + quantity > NB_HOLDING_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        if byte_count != quantity * 2 or pdu_len != 5 + byte_count:
            # SEEDED BUG (libmodbus row, heap-use-after-free): the error
            # path releases the request buffer, then formats the exception
            # response from it.  Reached only with a valid quantity and
            # in-range address but inconsistent byte count.
            heap.free(req, "modbus.c:free_on_error")
            bad_function = heap.read_u8(
                req, 7, "modbus.c:respond_exception_after_free")
            return self._exception(transaction_id, unit_id, bad_function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        for index in range(quantity):
            value = heap.read_u16(req, 13 + index * 2,
                                  "modbus.c:write_regs_loop")
            heap.write_u16(mapping.holding_registers,
                           (address + index) * 2, value,
                           "modbus.c:write_regs_store")
        self.event_counter += 1
        pdu = (bytes((function,)) + address.to_bytes(2, "big")
               + quantity.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x11 — report server id
    # ------------------------------------------------------------------

    def _report_server_id(self, heap: SimHeap, req: Pointer,
                          transaction_id: int, unit_id: int) -> bytes:
        self.event_counter += 1
        body = b"\x0arepro-server\xff"
        pdu = bytes((codec.FC_REPORT_SERVER_ID, len(body))) + body
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x16 — mask write register
    # ------------------------------------------------------------------

    def _mask_write(self, heap: SimHeap, req: Pointer, mapping: "_Mapping",
                    pdu_len: int, transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_MASK_WRITE_REGISTER
        if pdu_len != 6:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        address = heap.read_u16(req, 8, "modbus.c:mask_write_addr")
        and_mask = heap.read_u16(req, 10, "modbus.c:mask_write_and")
        or_mask = heap.read_u16(req, 12, "modbus.c:mask_write_or")
        if address >= NB_HOLDING_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        current = heap.read_u16(mapping.holding_registers, address * 2,
                                "modbus.c:mask_write_load")
        updated = (current & and_mask) | (or_mask & ~and_mask & 0xFFFF)
        heap.write_u16(mapping.holding_registers, address * 2, updated,
                       "modbus.c:mask_write_store")
        self.event_counter += 1
        pdu = (bytes((function,)) + address.to_bytes(2, "big")
               + and_mask.to_bytes(2, "big") + or_mask.to_bytes(2, "big"))
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x17 — read/write multiple registers  [SEEDED BUG 2: SEGV]
    # ------------------------------------------------------------------

    def _read_write_multiple(self, heap: SimHeap, req: Pointer,
                             mapping: "_Mapping", pdu_len: int,
                             transaction_id: int, unit_id: int) -> bytes:
        function = codec.FC_READ_WRITE_MULTIPLE_REGISTERS
        if pdu_len < 9:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        read_address = heap.read_u16(req, 8, "modbus.c:fc23_read_addr")
        read_quantity = heap.read_u16(req, 10, "modbus.c:fc23_read_quantity")
        write_address = heap.read_u16(req, 12, "modbus.c:fc23_write_addr")
        write_quantity = heap.read_u16(req, 14, "modbus.c:fc23_write_quantity")
        byte_count = heap.read_u8(req, 16, "modbus.c:fc23_bc")
        if write_quantity < 1 or write_quantity > MAX_WRITE_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if byte_count != write_quantity * 2 or pdu_len != 9 + byte_count:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if write_address + write_quantity > NB_HOLDING_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        if read_quantity < 1 or read_quantity > MAX_WR_READ_REGISTERS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        # write phase
        for index in range(write_quantity):
            value = heap.read_u16(req, 17 + index * 2,
                                  "modbus.c:fc23_write_loop")
            heap.write_u16(mapping.holding_registers,
                           (write_address + index) * 2, value,
                           "modbus.c:fc23_write_store")
        # SEEDED BUG (libmodbus row, SEGV): the read-back phase computes
        # the source address from read_address without the range check the
        # plain FC 0x03 path performs — a wild read for large addresses.
        parts = []
        for index in range(read_quantity):
            source = (mapping.holding_registers.address
                      + (read_address + index) * 2)
            raw = heap.deref_read(source, 1, "modbus.c:fc23_read_registers")
            raw += heap.deref_read(source + 1, 1,
                                   "modbus.c:fc23_read_registers")
            parts.append(raw)
        self.event_counter += 1
        pdu = bytes((function, read_quantity * 2)) + b"".join(parts)
        return self._respond(transaction_id, unit_id, pdu)

    # ------------------------------------------------------------------
    # FC 0x2B — read device identification
    # ------------------------------------------------------------------

    def _device_identification(self, heap: SimHeap, req: Pointer,
                               pdu_len: int, transaction_id: int,
                               unit_id: int) -> bytes:
        function = codec.FC_READ_DEVICE_IDENTIFICATION
        if pdu_len != 3:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        mei_type = heap.read_u8(req, 8, "modbus.c:mei_type")
        read_code = heap.read_u8(req, 9, "modbus.c:devid_read_code")
        object_id = heap.read_u8(req, 10, "modbus.c:devid_object")
        if mei_type != 0x0E:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_FUNCTION)
        if read_code not in (0x01, 0x02, 0x03, 0x04):
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_VALUE)
        if object_id not in _DEVICE_ID_OBJECTS:
            return self._exception(transaction_id, unit_id, function,
                                   codec.EX_ILLEGAL_DATA_ADDRESS)
        value = _DEVICE_ID_OBJECTS[object_id]
        body = (bytes((mei_type, read_code, 0x01, 0x00, 0x01, object_id,
                       len(value))) + value)
        self.event_counter += 1
        pdu = bytes((function,)) + body
        return self._respond(transaction_id, unit_id, pdu)


class _Mapping:
    """The register map (libmodbus ``modbus_mapping_t``)."""

    def __init__(self, heap: SimHeap):
        self.coils = heap.malloc(NB_COILS, "coil-table")
        self.discrete_inputs = heap.malloc(NB_DISCRETE_INPUTS,
                                           "discrete-input-table")
        self.holding_registers = heap.malloc(NB_HOLDING_REGISTERS * 2,
                                             "holding-register-table")
        self.input_registers = heap.malloc(NB_INPUT_REGISTERS * 2,
                                           "input-register-table")
        # a few non-zero defaults so read responses vary
        heap.write_u16(self.holding_registers, 0, 0x1234, "mapping-init")
        heap.write_u16(self.holding_registers, 2, 0x5678, "mapping-init")
        heap.write_u8(self.coils, 0, 1, "mapping-init")
