"""Protocol state models: Pit-style states and send/expect transitions.

A :class:`StateModel` is the session-level analog of a Peach Pit
``<StateModel>``: named states, each with transitions that *send* a
packet built from one of the pit's data models and optionally *expect* a
response parseable under another model.  Transitions may capture fields
from the parsed response into named session variables and bind session
variables into fields of the outgoing packet — which is how the server's
live sequence numbers (IEC 104 N(S)/N(R), Modbus transaction ids) flow
back into the trace through the existing Relation/Fixup pipeline.

State models are declared per protocol next to the data models (see
``repro.protocols.iec104.model.make_state_model``); the session engine
random-walks them to propose fresh traces and to extend existing ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class StateModelError(ValueError):
    """Raised for inconsistent state-model declarations."""


@dataclass(frozen=True)
class Transition:
    """One edge of the state machine: send a packet, move to a state.

    Parameters
    ----------
    send:
        Data-model name of the packet to emit.
    to:
        Destination state name.
    bind:
        ``outgoing leaf name -> session variable``: before the packet is
        sent, each named leaf of its (parsed) tree is overwritten with
        the variable's current value and the packet is re-built through
        the Relation/Fixup pipeline, keeping sizes and checksums honest.
    expect:
        Data-model name the response is parsed under (``None`` = the
        response is not inspected).
    capture:
        ``session variable <- response leaf name``: after a response
        parses under *expect*, each named leaf's decoded value is stored
        into the session variable for later ``bind`` consumers.
    weight:
        Relative probability of this transition during a random walk.
    pin:
        ``outgoing leaf name -> constant value``: after the packet is
        generated, each named leaf is overwritten with the constant and
        the packet is re-built through the Relation/Fixup pipeline.
        This is how a transition forces a *specific* variant of a
        shared data model (e.g. the ICCP associate with a deliberately
        wrong bilateral-table id) without needing a dedicated model.
    """

    send: str
    to: str
    bind: Mapping[str, str] = field(default_factory=dict)
    expect: Optional[str] = None
    capture: Mapping[str, str] = field(default_factory=dict)
    weight: float = 1.0
    pin: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class State:
    """A named protocol state and its outgoing transitions."""

    name: str
    transitions: Tuple[Transition, ...]


class StateModel:
    """A protocol session state machine over a pit's data models."""

    def __init__(self, name: str, initial: str, states: Sequence[State]):
        if not states:
            raise StateModelError(f"state model {name!r} has no states")
        names = [state.name for state in states]
        if len(set(names)) != len(names):
            raise StateModelError(
                f"state model {name!r} has duplicate state names")
        self.name = name
        self._states: Dict[str, State] = {s.name: s for s in states}
        if initial not in self._states:
            raise StateModelError(
                f"state model {name!r}: initial state {initial!r} unknown")
        self.initial = initial
        for state in states:
            for transition in state.transitions:
                if transition.to not in self._states:
                    raise StateModelError(
                        f"state model {name!r}: transition from "
                        f"{state.name!r} targets unknown state "
                        f"{transition.to!r}")

    def states(self) -> Tuple[State, ...]:
        return tuple(self._states.values())

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise StateModelError(
                f"state model {self.name!r} has no state {name!r}") from None

    def transitions_from(self, state_name: str) -> Tuple[Transition, ...]:
        """Outgoing transitions of *state_name* (falls back to initial
        when the recorded state no longer exists — spliced traces may
        carry states from an older model revision)."""
        state = self._states.get(state_name)
        if state is None:
            state = self._states[self.initial]
        return state.transitions

    def model_names(self) -> Tuple[str, ...]:
        """Every data-model name referenced by send/expect, in
        declaration order (used by the conformance matrix)."""
        seen: List[str] = []
        for state in self._states.values():
            for transition in state.transitions:
                for name in (transition.send, transition.expect):
                    if name and name not in seen:
                        seen.append(name)
        return tuple(seen)

    def pick_transition(self, state_name: str,
                        rng: random.Random) -> Optional[Transition]:
        """Weighted random pick among the state's transitions."""
        transitions = self.transitions_from(state_name)
        if not transitions:
            return None
        total = sum(t.weight for t in transitions)
        if total <= 0:
            return transitions[rng.randrange(len(transitions))]
        roll = rng.random() * total
        acc = 0.0
        for transition in transitions:
            acc += transition.weight
            if roll < acc:
                return transition
        return transitions[-1]

    def validate_against(self, pit) -> None:
        """Raise when a referenced data model is missing from *pit*."""
        available = {model.name for model in pit}
        for name in self.model_names():
            if name not in available:
                raise StateModelError(
                    f"state model {self.name!r} references data model "
                    f"{name!r}, absent from pit {pit.name!r}")

    def observe(self, steps, result) -> None:
        """Post-execution hook: a hand-written machine learns nothing.

        The session engine calls this after every trace execution; the
        learned counterpart (:class:`repro.state.learner.
        LearnedStateModel`) overrides it to grow its automaton from the
        observed responses.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StateModel {self.name!r} "
                f"({len(self._states)} states)>")
