"""Shared benchmark configuration.

Every benchmark regenerates one artifact of the paper's evaluation and
prints the same rows/series the paper reports.  Scale knobs (all via
environment variables so CI and full runs share code):

* ``REPRO_BENCH_HOURS``  — simulated budget per campaign (default 24,
  the paper's budget; the virtual clock compresses this to ~1.5k-2.4k
  executions per campaign).
* ``REPRO_BENCH_REPS``   — repetitions per engine/target (default 2;
  the paper uses 10).
* ``REPRO_BENCH_JOBS``   — worker processes for campaign fan-out
  (default ``1`` = serial; ``0`` defers to
  :func:`repro.core.campaign.default_worker_count`, i.e. ``REPRO_JOBS``
  or cores-1).

Smoke run for quick iteration / CI presubmit::

    REPRO_BENCH_HOURS=2 REPRO_BENCH_REPS=1 \
        PYTHONPATH=src python -m pytest benchmarks -q

Benchmarks that produce machine-readable artifacts write them as
``BENCH_<name>.json`` next to this file's parent (repo root) via
:func:`write_artifact`; ``REPRO_BENCH_ARTIFACT_DIR`` redirects them.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import CampaignConfig

BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "24"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2"))
_jobs_env = os.environ.get("REPRO_BENCH_JOBS", "1")
#: None = let run_campaign_batch pick a worker per core
BENCH_JOBS = None if _jobs_env == "0" else int(_jobs_env)


#: the paper-claim assertions (Peach* ahead of Peach, 7/9 bugs found)
#: only hold once campaigns run a near-full 24h budget; smoke runs
#: (REPRO_BENCH_HOURS=2) still exercise the whole pipeline and the
#: shape checks, but skip the claim gates.
CLAIMS_ENABLED = BENCH_HOURS >= 12


def bench_config() -> CampaignConfig:
    return CampaignConfig(budget_hours=BENCH_HOURS, record_every=20)


def artifact_path(name: str) -> str:
    """Absolute path for a ``BENCH_<name>.json`` artifact."""
    root = os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    return os.path.join(root, f"BENCH_{name}.json")


def write_artifact(name: str, payload: dict) -> str:
    """Write a JSON benchmark artifact; returns the path written."""
    path = artifact_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def config():
    return bench_config()


def print_block(title: str, body: str) -> None:
    """Print a labelled report block (visible with -s / benchmark runs)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
