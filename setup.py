import os

from setuptools import find_packages, setup


def _long_description() -> str:
    """PAPER.md when present; sdists without it fall back gracefully."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "PAPER.md")
    if not os.path.exists(path):
        return ""
    with open(path, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="peachstar-repro",
    version="0.2.0",
    description=(
        "Reproduction of Peach*: coverage-guided ICS protocol fuzzing "
        "(DAC 2020), with a sparse journaled coverage pipeline and a "
        "parallel campaign executor"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "peachstar=repro.cli:main",
        ],
    },
    extras_require={
        # everything needed to run the evaluation benchmarks and write
        # the BENCH_*.json artifacts (the library itself is stdlib-only)
        "bench": [
            "pytest>=7",
            "pytest-benchmark>=4",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security",
        "Topic :: Software Development :: Testing",
    ],
)
