"""TraceBinder: response-derived bindings applied at execution time.

The honest-prefix problem of sequence fuzzing: when step *k* of a stored
trace is mutated, the server's state at step *k+1* changes — sequence
numbers advance differently, transaction ids differ — and a byte-exact
replay of the stored suffix silently de-synchronizes.  AFLNet tolerates
this; Peach-style models can do better because the format specification
is available: each step carries *bind* declarations (outgoing leaf <-
session variable) and *capture* declarations (session variable <-
response leaf), copied from the state-model transition that emitted it.

Before a step is sent, :meth:`TraceBinder.prepare` parses the stored
packet under its data model, overwrites the bound leaves with the
session variables' current values, and re-builds the packet through
``DataModel.build`` — the existing Relation/Fixup pipeline — so lengths
and checksums stay correct around the injected values.  After the
server replies, :meth:`TraceBinder.observe` parses the response under
the step's *expect* model and captures the declared leaves.  Both
directions are best-effort: a packet (or response) that does not parse
is passed through untouched, because malformedness is frequently the
point of the trace.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.fixup_engine import TreeEchoProvider
from repro.model.datamodel import Pit
from repro.model.fields import ModelError, ParseError
from repro.state.trace import TraceStep


def apply_pins(model, tree, pins: Mapping[str, object]) -> Tuple[object, bytes]:
    """Overwrite pinned leaves of a freshly built *tree* and rebuild.

    The rebuild runs through ``DataModel.build``'s Relation/Fixup
    pipeline, so sizes and checksums stay honest around the pinned
    values (the same repair path :meth:`TraceBinder.prepare` uses for
    session-variable bindings).  Returns the (possibly new) tree and its
    wire bytes; a pin set that cannot be applied leaves the packet
    untouched rather than failing the walk.
    """
    undo = []
    for leaf, value in sorted(pins.items()):
        node = tree.find(leaf)
        if node is not None and node.is_leaf:
            undo.append((node, node.value))
            node.value = value
    if not undo:
        return tree, model.to_wire(tree)
    try:
        rebuilt = model.build(TreeEchoProvider(tree))
        return rebuilt, model.to_wire(rebuilt)
    except (ModelError, ParseError, ValueError, OverflowError,
            TypeError, AttributeError):
        # un-appliable pin set (bad value type included): revert the
        # leaf edits so the returned tree stays consistent with the
        # (original) wire bytes
        for node, value in undo:
            node.value = value
        return tree, model.to_wire(tree)


class TraceBinder:
    """Session-variable flow for one trace execution."""

    def __init__(self, pit: Pit, steps: Sequence[TraceStep]):
        self.pit = pit
        self.steps = list(steps)
        self.vars: Dict[str, object] = {}

    def _model(self, name: Optional[str]):
        if not name:
            return None
        try:
            return self.pit.model(name)
        except ModelError:
            return None

    # -- outgoing --------------------------------------------------------

    def prepare(self, index: int, packet: bytes) -> bytes:
        """The wire bytes to actually send for step *index*."""
        step = self.steps[index]
        if not step.bind or not self.vars:
            return packet
        values = {leaf: self.vars[var]
                  for leaf, var in sorted(step.bind.items())
                  if var in self.vars}
        if not values:
            return packet
        model = self._model(step.model_name)
        if model is None:
            return packet
        try:
            tree = model.parse(packet, strict=False)
            baseline = model.to_wire(model.build(TreeEchoProvider(tree)))
        except (ModelError, ParseError, ValueError, OverflowError):
            return packet
        if baseline != packet:
            # the packet does not round-trip the Relation/Fixup pipeline
            # (truncated/mutated framing): rebuilding would "repair" it
            # into something else entirely — its malformedness is the
            # payload, so it goes out verbatim
            return packet
        changed = False
        for leaf, value in values.items():
            node = tree.find(leaf)
            if node is not None and node.is_leaf:
                node.value = value
                changed = True
        if not changed:
            return packet
        try:
            rebuilt = model.build(TreeEchoProvider(tree))
            return model.to_wire(rebuilt)
        except (ModelError, ParseError, ValueError, OverflowError):
            return packet

    # -- incoming --------------------------------------------------------

    def observe(self, index: int, response: Optional[bytes]) -> None:
        """Capture session variables from step *index*'s response."""
        step = self.steps[index]
        if response is None or not step.capture:
            return
        model = self._model(step.expect)
        if model is None:
            return
        try:
            tree = model.parse(response, strict=False)
        except ParseError:
            return
        for var, leaf in sorted(step.capture.items()):
            node = tree.find(leaf)
            if node is not None and node.is_leaf and node.value is not None:
                self.vars[var] = node.value


class LaneBinder:
    """Per-lane session variables for a concurrency-N trace.

    With ``--concurrency N`` step *i* of a trace travels on connection
    ``i % N`` (see :meth:`repro.net.target.SocketTarget.run_trace`), so
    the steps of one wire session are the index residue class — and
    their session variables must not leak across lanes: connection A's
    captured sequence number is meaningless to connection B.  LaneBinder
    holds one :class:`TraceBinder` per lane over the *full* step list
    (indices stay global) and routes ``prepare``/``observe`` by the same
    ``index % lanes`` rule the transport deals by.
    """

    def __init__(self, pit: Pit, steps: Sequence[TraceStep],
                 lanes: int):
        if lanes < 1:
            raise ValueError(f"lanes {lanes} < 1")
        self.lanes = lanes
        self._binders = [TraceBinder(pit, steps) for _ in range(lanes)]

    @property
    def vars(self) -> Dict[str, object]:
        """Lane 0's variables (the single-lane-compatible view)."""
        return self._binders[0].vars

    def prepare(self, index: int, packet: bytes) -> bytes:
        return self._binders[index % self.lanes].prepare(index, packet)

    def observe(self, index: int, response: Optional[bytes]) -> None:
        self._binders[index % self.lanes].observe(index, response)
