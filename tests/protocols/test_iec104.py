"""Tests for the IEC104 target (the small one — no seeded bugs)."""

import pytest

from repro.model import choose_model, generate_packet
from repro.protocols.iec104 import (
    Iec104Server, build_asdu, build_i_frame, build_s_frame, build_u_frame,
    codec, frame_kind, make_pit,
)
from repro.sanitizer import MemoryFault, SimHeap


@pytest.fixture
def server():
    return Iec104Server()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


class TestCodec:
    def test_u_frame_shape(self):
        frame = build_u_frame(codec.U_STARTDT_ACT)
        assert frame[0] == 0x68 and frame[1] == 4
        assert frame_kind(frame) == "U"

    def test_s_frame_sequence_encoding(self):
        frame = build_s_frame(5)
        assert frame_kind(frame) == "S"
        assert frame[4] == (5 << 1) & 0xFF

    def test_i_frame_wraps_asdu(self):
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((20,)))
        frame = build_i_frame(0, 0, asdu)
        assert frame_kind(frame) == "I"
        assert frame[1] == 4 + len(asdu)

    def test_frame_kind_invalid(self):
        assert frame_kind(b"\x00\x00") == "invalid"


class TestUFrames:
    def test_startdt_confirmed(self, server):
        response = _exec(server, build_u_frame(codec.U_STARTDT_ACT))
        assert response == build_u_frame(codec.U_STARTDT_CON)
        assert server.started

    def test_stopdt_stops_data_transfer(self, server):
        _exec(server, build_u_frame(codec.U_STOPDT_ACT))
        assert not server.started

    def test_testfr_confirmed(self, server):
        response = _exec(server, build_u_frame(codec.U_TESTFR_ACT))
        assert response == build_u_frame(codec.U_TESTFR_CON)

    def test_confirmations_ignored(self, server):
        assert _exec(server, build_u_frame(codec.U_STARTDT_CON)) is None

    def test_unknown_u_function_ignored(self, server):
        frame = bytes((0x68, 4, 0xFF, 0, 0, 0))
        assert _exec(server, frame) is None


class TestIFrames:
    def test_interrogation_activation_confirmed(self, server):
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((20,)))
        response = _exec(server, build_i_frame(0, 0, asdu))
        assert response is not None
        assert response[6] == codec.C_IC_NA_1
        assert response[8] & 0x3F == 7  # activation confirmation

    def test_interrogation_group_qoi(self, server):
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((22,)))
        assert _exec(server, build_i_frame(0, 0, asdu)) is not None

    def test_interrogation_bad_qoi_negatively_confirmed(self, server):
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((99,)))
        response = _exec(server, build_i_frame(0, 0, asdu))
        assert response[8] & 0x40  # negative bit

    def test_single_command_select_and_execute(self, server):
        select = build_asdu(codec.C_SC_NA_1, 1, 6, 1, 0, bytes((0x81,)))
        response = _exec(server, build_i_frame(0, 0, select))
        assert response is not None

    def test_clock_sync_valid_time_echoed(self, server):
        time7 = bytes((0x00, 0x00, 30, 12, 1, 6, 26))
        asdu = build_asdu(codec.C_CS_NA_1, 1, 6, 1, 0, time7)
        response = _exec(server, build_i_frame(0, 0, asdu))
        assert response is not None
        assert time7 in response

    def test_clock_sync_invalid_minute_dropped(self, server):
        time7 = bytes((0x00, 0x00, 61, 12, 1, 6, 26))
        asdu = build_asdu(codec.C_CS_NA_1, 1, 6, 1, 0, time7)
        assert _exec(server, build_i_frame(0, 0, asdu)) is None

    def test_truncated_clock_sync_safely_dropped(self, server):
        """Unlike lib60870, the simple implementation length-checks."""
        asdu = build_asdu(codec.C_CS_NA_1, 1, 6, 1, 0, b"\x00\x01")
        assert _exec(server, build_i_frame(0, 0, asdu)) is None

    def test_monitored_data_accepted_silently(self, server):
        asdu = build_asdu(codec.M_SP_NA_1, 1, 3, 1, 0x10, bytes((1,)))
        assert _exec(server, build_i_frame(0, 0, asdu)) is None

    def test_unknown_type_negatively_confirmed(self, server):
        asdu = build_asdu(200, 1, 6, 1, 0, b"")
        response = _exec(server, build_i_frame(0, 0, asdu))
        assert response is not None

    def test_stopped_server_ignores_i_frames(self, server):
        _exec(server, build_u_frame(codec.U_STOPDT_ACT))
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((20,)))
        assert _exec(server, build_i_frame(0, 0, asdu)) is None

    def test_recv_seq_increments(self, server):
        asdu = build_asdu(codec.C_IC_NA_1, 1, 6, 1, 0, bytes((20,)))
        _exec(server, build_i_frame(0, 0, asdu))
        assert server.recv_seq == 1


class TestRobustness:
    def test_length_mismatch_dropped(self, server):
        frame = bytearray(build_u_frame(codec.U_TESTFR_ACT))
        frame[1] = 10
        assert _exec(server, bytes(frame)) is None

    def test_no_faults_under_fuzzing(self, server, rng):
        """Table I lists no bugs for IEC104 — fuzzing must not crash it."""
        pit = make_pit()
        for _ in range(1500):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            try:
                _exec(server, wire)
            except MemoryFault as fault:  # pragma: no cover
                pytest.fail(f"unexpected fault: {fault}")

    def test_pit_defaults_valid(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            _exec(server, raw)
