#!/usr/bin/env python3
"""Mini Figure 4 panel: Peach vs Peach* on one target, with ASCII chart.

Runs both engines with the same seeds for a few simulated hours and
renders the averaged paths-over-time curves the way the paper's Fig. 4
panels do.  Pick the target and budget on the command line:

    python examples/compare_engines.py [target] [hours]

Defaults: opendnp3 for 12 simulated hours (the panel with the clearest
Peach* lead at small budgets).
"""

import sys

from repro.analysis import render_panel_report, run_fig4_panel
from repro.core import CampaignConfig
from repro.protocols import get_target


def main() -> None:
    target_name = sys.argv[1] if len(sys.argv) > 1 else "opendnp3"
    hours = float(sys.argv[2]) if len(sys.argv) > 2 else 12.0
    spec = get_target(target_name)
    print(f"comparing engines on {spec.paper_project} "
          f"({hours:.0f} simulated hours, 2 repetitions)...\n")
    panel = run_fig4_panel(
        spec, repetitions=2, budget_hours=hours, base_seed=42,
        config=CampaignConfig(budget_hours=hours))
    print(render_panel_report(panel))


if __name__ == "__main__":
    main()
