"""Unit tests for checksum fixups and the CRC implementations."""

import zlib

import pytest

from repro.model import (
    Blob, Block, Crc16ModbusFixup, Crc32Fixup, Dnp3CrcFixup, Lrc8Fixup,
    ModelError, Number, ParseError, Str, Sum8Fixup, Xor8Fixup, attach_fixup,
    crc16_modbus, crc_dnp3, lrc8, sum8, xor8,
)
from repro.model.datamodel import DataModel


class TestCrcAlgorithms:
    def test_crc16_modbus_known_vector(self):
        # standard check value for "123456789"
        assert crc16_modbus(b"123456789") == 0x4B37

    def test_crc_dnp3_known_vector(self):
        # CRC-16/DNP check value for "123456789"
        assert crc_dnp3(b"123456789") == 0xEA82

    def test_crc16_modbus_empty(self):
        assert crc16_modbus(b"") == 0xFFFF

    def test_sum8(self):
        assert sum8(b"\x01\x02\xff") == 0x02

    def test_xor8(self):
        assert xor8(b"\x0f\xf0\xff") == 0x00

    def test_lrc8_complements_sum(self):
        data = b"\x01\x02\x03"
        assert (lrc8(data) + sum(data)) & 0xFF == 0


class TestFixupMechanism:
    def _crc_model(self, fixup_cls):
        return DataModel("m", Block("root", [
            Number("id", 1, default=0x42),
            Blob("payload", default=b"hello", length=5),
            attach_fixup(Number("crc", 4 if fixup_cls is Crc32Fixup else 2),
                         fixup_cls(["id", "payload"])),
        ]))

    def test_crc32_computed_on_build(self):
        tree = self._crc_model(Crc32Fixup).build_default()
        expected = zlib.crc32(b"\x42hello") & 0xFFFFFFFF
        assert tree.find("crc").value == expected

    def test_crc16_modbus_computed_on_build(self):
        tree = self._crc_model(Crc16ModbusFixup).build_default()
        assert tree.find("crc").value == crc16_modbus(b"\x42hello")

    def test_parse_verify_accepts_good_checksum(self):
        model = self._crc_model(Crc32Fixup)
        raw = model.build_default().raw
        model.parse(raw, verify_fixups=True)  # must not raise

    def test_parse_verify_rejects_corrupted_checksum(self):
        model = self._crc_model(Crc32Fixup)
        raw = bytearray(model.build_default().raw)
        raw[-1] ^= 0xFF
        with pytest.raises(ParseError):
            model.parse(bytes(raw), verify_fixups=True)

    def test_parse_without_verify_tolerates_bad_checksum(self):
        model = self._crc_model(Crc32Fixup)
        raw = bytearray(model.build_default().raw)
        raw[-1] ^= 0xFF
        model.parse(bytes(raw))  # lenient parse used by the cracker

    def test_fixup_over_multiple_fields_concatenates_in_order(self):
        model = DataModel("m", Block("root", [
            Number("a", 1, default=1),
            Number("b", 1, default=2),
            attach_fixup(Number("sum", 1), Sum8Fixup(["b", "a"])),
        ]))
        tree = model.build_default()
        # order follows the fixup's over= list (b then a) — same bytes here
        assert tree.find("sum").value == 3

    def test_fixup_covers_size_field_after_relation_resolution(self):
        from repro.model import size_of
        model = DataModel("m", Block("root", [
            size_of(Number("size", 2), "payload"),
            Blob("payload", default=b"xyz"),
            attach_fixup(Number("crc", 4), Crc32Fixup(["size", "payload"])),
        ]))
        tree = model.build_default()
        expected = zlib.crc32(b"\x00\x03xyz") & 0xFFFFFFFF
        assert tree.find("crc").value == expected

    def test_xor_and_lrc_fixups(self):
        for fixup_cls, func in ((Xor8Fixup, xor8), (Lrc8Fixup, lrc8),
                                (Sum8Fixup, sum8)):
            model = DataModel("m", Block("root", [
                Blob("payload", default=b"\x10\x20", length=2),
                attach_fixup(Number("check", 1), fixup_cls(["payload"])),
            ]))
            assert model.build_default().find("check").value == \
                func(b"\x10\x20")


class TestFixupAttachment:
    def test_fixup_requires_fixed_width_carrier(self):
        with pytest.raises(ModelError):
            attach_fixup(Blob("crc"), Crc32Fixup(["x"]))

    def test_fixup_not_on_strings(self):
        with pytest.raises(ModelError):
            attach_fixup(Str("s"), Crc32Fixup(["x"]))

    def test_empty_over_rejected(self):
        with pytest.raises(ModelError):
            Crc32Fixup([])

    def test_missing_cover_target_raises_at_build(self):
        model = DataModel("m", Block("root", [
            Number("a", 1, default=0),
            attach_fixup(Number("crc", 4), Crc32Fixup(["ghost"])),
        ]))
        with pytest.raises(ModelError):
            model.build_default()
