"""Real wall-clock throughput: execs/sec per engine/target, plus the
sparse-vs-dense coverage pipeline speedup.

Unlike the other benchmarks (which report the paper's *simulated-clock*
artifacts), this one measures the harness itself: how many target
executions per wall-clock second each engine sustains, and how much
faster the journaled sparse coverage pipeline is than the dense
O(MAP_SIZE) reference it replaced.  Results land in
``BENCH_throughput.json`` so future PRs have a perf trajectory.

The speedup assertion is the PR's acceptance gate: the headline campaign
(Peach* with full coverage measurement) must run at least 3x faster with
the sparse pipeline than with the seed's dense implementation.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from dataclasses import replace

import pytest

from benchmarks.conftest import (
    BENCH_HOURS, CLAIMS_ENABLED, artifact_path, bench_config, print_block,
    write_artifact,
)
from repro.core.campaign import make_engine, run_campaign
from repro.core.fleet import run_fleet
from repro.protocols import TARGET_NAMES, get_target
from repro.runtime._dense_ref import DenseCoverageMap, DenseGlobalCoverage
from repro.runtime.instrument import resolve_backend

#: targets timed for the per-target execs/sec table (all six)
THROUGHPUT_TARGETS = TARGET_NAMES
#: the headline campaign used for the sparse-vs-dense gate
HEADLINE_TARGET = "libmodbus"
HEADLINE_SEED = 500
#: regression gate: the headline rate may not drop more than this far
#: below the best entry in the recorded trajectory
REGRESSION_TOLERANCE = 0.25
#: trajectory entries kept in the artifact (oldest dropped first)
TRAJECTORY_LIMIT = 20
#: fleet-vs-serial comparison: shards of the headline campaign.  Sync
#: is deliberately sparse (AFL syncs far less often than it fuzzes):
#: each round pays a pool spin-up plus the file-level exchange, so the
#: cadence dominates fleet wall-clock at benchmark scale.
FLEET_SHARDS = 3
FLEET_SYNC_EVERY = 400
#: floor gate on fleet_vs_serial.paths_per_sec_ratio: fleet overhead
#: (pool spin-up, sync phases, shard checkpointing) may not drag the
#: fleet below this fraction of the serial path rate.  The committed
#: artifact records ~0.6; the floor leaves the same kind of headroom
#: the 25% throughput tolerance does, scaled for the ratio's higher
#: machine-to-machine variance.
FLEET_RATIO_FLOOR = 0.35
#: floor gate on socket_vs_inprocess.execs_per_sec_ratio: driving the
#: headline campaign through the loopback socket harness (peachstar
#: envelope framing, one event-loop turn per frame) may not drag
#: throughput below this fraction of the in-process rate.  The
#: committed artifact records ~0.5; the floor leaves the same headroom
#: the fleet gate does for machine-to-machine scheduler variance.
SOCKET_RATIO_FLOOR = 0.2

_CACHE = {}


def _artifact_name() -> str:
    # the committed trajectory artifact holds full-budget numbers only;
    # compressed smoke runs (REPRO_BENCH_HOURS=2) write alongside it so
    # they never clobber (or gate against) the 24h headline payload
    return "throughput" if CLAIMS_ENABLED else "throughput_smoke"


def _trim_trajectory(trajectory: list) -> list:
    """Cap the trajectory without ratcheting the baseline down.

    A plain tail-slice would eventually age out the best entry, letting
    slow 25%-at-a-time regressions compound unnoticed; the all-time best
    entry is therefore always retained alongside the most recent runs.
    """
    if len(trajectory) <= TRAJECTORY_LIMIT:
        return trajectory
    best = max(trajectory, key=lambda entry: entry["execs_per_sec"])
    recent = trajectory[-TRAJECTORY_LIMIT:]
    if best not in recent:
        recent = [best] + recent[1:]
    return recent


def _prior_trajectory() -> list:
    """Execs/sec trajectory recorded by previous runs of this artifact."""
    path = artifact_path(_artifact_name())
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as handle:
            prior = json.load(handle)
    except (OSError, ValueError):
        return []
    trajectory = list(prior.get("trajectory", ()))
    if not trajectory and "sparse_vs_dense" in prior:
        # pre-trajectory artifact (PR 1): synthesize its single entry
        gate = prior["sparse_vs_dense"]
        trajectory = [{
            "python": prior.get("python"),
            "backend": prior.get("backend"),
            "bench_hours": prior.get("bench_hours"),
            "execs_per_sec": gate["sparse_execs_per_sec"],
            "speedup": gate.get("speedup"),
        }]
    return trajectory


def _timed_campaign(engine_name, target_name, seed, dense=False,
                    rounds=1):
    """Run one campaign for real; return (execs_per_sec, result, secs).

    *rounds* > 1 re-runs the (deterministic, identical-result) campaign
    and keeps the fastest wall time — scheduler noise on shared runners
    swings single-shot rates by 20%+, and best-of-N is the stable
    estimate of what the machine can do (same methodology as the
    batched-vs-unbatched entry).
    """
    spec = get_target(target_name)
    config = bench_config()
    best = None
    for _ in range(rounds):
        engine = None
        if dense:
            engine = make_engine(engine_name, spec, seed, config)
            engine.target.collector.map = DenseCoverageMap()
            engine.seed_pool.coverage = DenseGlobalCoverage()
        start = time.perf_counter()
        result = run_campaign(engine_name, spec, seed=seed, config=config,
                              engine=engine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[2]:
            best = (result.executions / max(elapsed, 1e-9), result,
                    elapsed)
    return best


def _fleet_vs_serial() -> dict:
    """Paths per wall-clock second: synced fleet vs serial repetitions.

    The same N seeds run twice — once as a corpus-exchanging fleet on N
    worker processes, once as N plain serial campaigns — and both sides
    report their merged unique-path yield per second of real time.
    Both sides persist to a (throwaway) workspace, so the ratio compares
    sync-and-parallelism against serial execution alone instead of
    quietly charging persistence to the fleet only.
    """
    spec = get_target(HEADLINE_TARGET)
    config = bench_config()
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        fleet = run_fleet("peach-star", spec, shards=FLEET_SHARDS,
                          workspace_dir=os.path.join(tmp, "fleet"),
                          seed=HEADLINE_SEED, sync_every=FLEET_SYNC_EVERY,
                          config=config, max_workers=FLEET_SHARDS)
        fleet_secs = time.perf_counter() - start
        start = time.perf_counter()
        serial = [run_campaign(
                      "peach-star", spec, seed=HEADLINE_SEED + 1000 * shard,
                      config=replace(config, workspace=os.path.join(
                          tmp, f"serial-{shard}")))
                  for shard in range(FLEET_SHARDS)]
        serial_secs = time.perf_counter() - start
    serial_union = set()
    for result in serial:
        serial_union.update(result.path_hashes)
    fleet_rate = fleet.merged_paths / max(fleet_secs, 1e-9)
    serial_rate = len(serial_union) / max(serial_secs, 1e-9)
    return {
        "target": HEADLINE_TARGET,
        "engine": "peach-star",
        "shards": FLEET_SHARDS,
        "serial_workspace": True,  # both sides pay persistence
        "sync_every": FLEET_SYNC_EVERY,
        "sync_rounds": fleet.rounds,
        "imported_seeds": fleet.imported_seeds,
        "fleet_merged_paths": fleet.merged_paths,
        "serial_union_paths": len(serial_union),
        "fleet_wall_seconds": round(fleet_secs, 3),
        "serial_wall_seconds": round(serial_secs, 3),
        "fleet_paths_per_sec": round(fleet_rate, 2),
        "serial_paths_per_sec": round(serial_rate, 2),
        "paths_per_sec_ratio": round(fleet_rate / max(serial_rate, 1e-9),
                                     2),
    }


def _socket_vs_inprocess() -> dict:
    """Execs per wall-clock second: loopback socket vs in-process.

    The same seeded headline campaign runs twice — once against the
    plain in-process ``Target``, once against a ``SocketTarget``
    loopback harness (real TCP, shared collector) — so the entry prices
    the transport alone.  The two runs are signature-identical by the
    parity pin in ``tests/net``; ``paths_identical`` re-checks the
    corpus-level half of that claim here.
    """
    from repro.net import NetConfig

    spec = get_target(HEADLINE_TARGET)
    config = bench_config()
    start = time.perf_counter()
    in_process = run_campaign("peach-star", spec, seed=HEADLINE_SEED,
                              config=config)
    inprocess_secs = time.perf_counter() - start
    start = time.perf_counter()
    over_socket = run_campaign("peach-star", spec, seed=HEADLINE_SEED,
                               config=replace(config, net=NetConfig()))
    socket_secs = time.perf_counter() - start
    inprocess_rate = in_process.executions / max(inprocess_secs, 1e-9)
    socket_rate = over_socket.executions / max(socket_secs, 1e-9)
    return {
        "target": HEADLINE_TARGET,
        "engine": "peach-star",
        "executions": in_process.executions,
        "paths_identical": (
            over_socket.path_hashes == in_process.path_hashes),
        "inprocess_execs_per_sec": round(inprocess_rate, 1),
        "socket_execs_per_sec": round(socket_rate, 1),
        "inprocess_wall_seconds": round(inprocess_secs, 3),
        "socket_wall_seconds": round(socket_secs, 3),
        "execs_per_sec_ratio": round(
            socket_rate / max(inprocess_rate, 1e-9), 2),
    }


#: floor gate on batched_vs_unbatched.ratio — unbatched-over-batched
#: Python calls for the same campaign: the batched hot path
#: (``iterate_batch`` + ``Target.run_into`` + rotate-on-retain map
#: pool) must do strictly less interpreter work than the one-at-a-time
#: loop — the two are bit-identical, so a ratio at or below 1.0 means
#: the batching machinery costs more than it saves and the default
#: ``batch_size=16`` is wrong.
BATCH_RATIO_FLOOR = 1.0
BATCH_SIZE = 16
BATCH_ROUNDS = 3


def _count_python_calls(config):
    """Run the headline campaign counting Python-level function calls.

    The count is a deterministic proxy for interpreter work: same seed,
    same config → the exact same call sequence on every run, machine
    load notwithstanding.
    """
    calls = 0

    def profiler(frame, event, arg):
        nonlocal calls
        if event == "call":
            calls += 1

    spec = get_target(HEADLINE_TARGET)
    sys.setprofile(profiler)
    try:
        result = run_campaign("peach-star", spec, seed=HEADLINE_SEED,
                              config=config)
    finally:
        sys.setprofile(None)
    return calls, result


def _batched_vs_unbatched() -> dict:
    """What batching buys: batch_size=16 vs batch_size=1, same campaign.

    The gated ``ratio`` is unbatched-over-batched *Python calls
    executed* (via ``sys.setprofile``), not wall time: the batch loop's
    savings are hoisted per-iteration plumbing — a fixed handful of
    interpreter calls per execution — and the call count measures
    exactly that, deterministically.  Wall-clock rates for both
    configs are recorded too (best of ``BATCH_ROUNDS`` order-
    alternating rounds each) but are informational only: on shared
    runners scheduler/frequency noise swings short campaign timings by
    more than the few-percent batch margin, so a wall-clock floor gate
    would flake where the work-count gate cannot.  The two loops are
    bit-identical by construction — ``paths_identical`` re-checks the
    corpus half of that claim on every benchmark run.
    """
    spec = get_target(HEADLINE_TARGET)
    base = bench_config()
    configs = [(1, replace(base, batch_size=1)),
               (BATCH_SIZE, replace(base, batch_size=BATCH_SIZE))]
    calls = {}
    results = {}
    for size, config in configs:
        calls[size], results[size] = _count_python_calls(config)
    best = {}
    for round_index in range(BATCH_ROUNDS):
        ordered = configs if round_index % 2 == 0 else configs[::-1]
        for size, config in ordered:
            start = time.perf_counter()
            result = run_campaign("peach-star", spec, seed=HEADLINE_SEED,
                                  config=config)
            elapsed = time.perf_counter() - start
            rate = result.executions / max(elapsed, 1e-9)
            best[size] = max(best.get(size, 0.0), rate)
    unbatched, batched = results[1], results[BATCH_SIZE]
    return {
        "target": HEADLINE_TARGET,
        "engine": "peach-star",
        "batch_size": BATCH_SIZE,
        "executions": batched.executions,
        "paths_identical": (batched.path_hashes == unbatched.path_hashes),
        "python_calls_unbatched": calls[1],
        "python_calls_batched": calls[BATCH_SIZE],
        "ratio": round(calls[1] / max(calls[BATCH_SIZE], 1), 5),
        "wall_rounds": BATCH_ROUNDS,
        "batched_execs_per_sec": round(best[BATCH_SIZE], 1),
        "unbatched_execs_per_sec": round(best[1], 1),
        "execs_per_sec_ratio": round(
            best[BATCH_SIZE] / max(best[1], 1e-9), 3),
    }


#: session-vs-single-packet comparison target: IEC 104 is the paper's
#: most state-gated server (STARTDT/STOPDT) and ships a state model
SESSIONS_TARGET = "iec104"
SESSIONS_SEED = 700


def _session_only_edges(spec, stopdt_model: str,
                        follower_models: tuple) -> set:
    """Directed measurement: edges only a live session can reach.

    A STOPDT act followed by an I-frame in one session covers the
    ``not started`` drop paths; the same packets executed one-at-a-time
    (reset between — single-packet mode by definition) never can.
    Works on both IEC 104-family stacks (their gates are isomorphic).
    """
    from repro.protocols import PROTOCOLS_PATH_PREFIX
    from repro.runtime.instrument import make_line_collector
    from repro.runtime.target import Target

    pit = spec.make_pit()
    stopdt = pit.model(stopdt_model).build_bytes()
    followers = tuple(pit.model(name).build_bytes()
                      for name in follower_models)
    collector = make_line_collector((PROTOCOLS_PATH_PREFIX,))
    target = Target(spec.make_server, collector)
    single_union = set()
    for packet in (stopdt,) + followers:
        single_union |= set(target.run(packet).coverage.journal)
    session_edges = set()
    for follower in followers:
        trace = target.run_trace([(stopdt, None), (follower, None)])
        session_edges |= set(trace.coverage.journal)
    return session_edges - single_union


def _sessions_vs_single_packet() -> dict:
    """Path discovery: session-mode vs single-packet Peach* on IEC 104.

    Same simulated budget, same seed; session mode counts trace *steps*
    as executions so the budgets are comparable.  ``session_only_edges``
    is the directed measurement above — nonzero means the session
    subsystem opens coverage the single-packet loop cannot reach at any
    budget.
    """
    spec = get_target(SESSIONS_TARGET)
    single_config = bench_config()
    session_config = replace(single_config, sessions=True)
    start = time.perf_counter()
    session = run_campaign("peach-star", spec, seed=SESSIONS_SEED,
                           config=session_config)
    session_secs = time.perf_counter() - start
    start = time.perf_counter()
    single = run_campaign("peach-star", spec, seed=SESSIONS_SEED,
                          config=single_config)
    single_secs = time.perf_counter() - start
    return {
        "target": SESSIONS_TARGET,
        "engine": "peach-star",
        "session_paths": session.final_paths,
        "single_packet_paths": single.final_paths,
        "session_edges": session.final_edges,
        "single_packet_edges": single.final_edges,
        "session_executions": session.executions,
        "session_traces": session.stats.get("traces", 0),
        "single_packet_executions": single.executions,
        "session_wall_seconds": round(session_secs, 3),
        "single_packet_wall_seconds": round(single_secs, 3),
        "session_execs_per_sec": round(
            session.executions / max(session_secs, 1e-9), 1),
        "single_packet_execs_per_sec": round(
            single.executions / max(single_secs, 1e-9), 1),
        "paths_ratio": round(
            session.final_paths / max(single.final_paths, 1), 2),
        "session_only_edges": len(_session_only_edges(
            spec, "iec104.stopdt",
            ("iec104.interrogation", "iec104.single_command"))),
    }


#: learned-vs-scripted comparison targets: IEC 104 diffs the learner
#: against the richest hand-written machine; lib60870 had *no* hand
#: model before PR 5, so its learned-session-vs-single-packet ratio is
#: the zero-modelling-effort payoff
LEARNED_TARGET = "iec104"
LEARNED_UNMODELLED_TARGET = "lib60870"
LEARNED_SEED = 800


def _learned_vs_scripted() -> dict:
    """Path discovery: response-learned vs hand-written state machines.

    Same simulated budget, same seed, three campaigns on IEC 104 —
    learned sessions, scripted (hand-model) sessions, single-packet —
    plus the learned-vs-single-packet pair on lib60870 with the
    directed count of its STOPDT-gated session-only edges and whether
    the learning campaign actually reached them.
    """
    spec = get_target(LEARNED_TARGET)
    single_config = bench_config()
    learned_config = replace(single_config, learn_states=True)
    scripted_config = replace(single_config, sessions=True)
    learned = run_campaign("peach-star", spec, seed=LEARNED_SEED,
                           config=learned_config)
    scripted = run_campaign("peach-star", spec, seed=LEARNED_SEED,
                            config=scripted_config)

    unmodelled = get_target(LEARNED_UNMODELLED_TARGET)
    session_only = _session_only_edges(
        unmodelled, "lib60870.stopdt",
        ("lib60870.interrogation", "lib60870.single_command"))

    engine = make_engine("peach-star", unmodelled, LEARNED_SEED,
                         replace(single_config, learn_states=True))
    run_campaign("peach-star", unmodelled, seed=LEARNED_SEED,
                 config=replace(single_config, learn_states=True),
                 engine=engine)
    virgin = engine.seed_pool.coverage.virgin
    gated_reached = sum(1 for index in session_only if virgin[index])
    single = run_campaign("peach-star", unmodelled, seed=LEARNED_SEED,
                          config=single_config)
    return {
        "target": LEARNED_TARGET,
        "engine": "peach-star",
        "learned_paths": learned.final_paths,
        "scripted_paths": scripted.final_paths,
        "learned_edges": learned.final_edges,
        "scripted_edges": scripted.final_edges,
        "learned_states": learned.stats.get("learned_states", 0),
        "learned_traces": learned.stats.get("traces", 0),
        "scripted_traces": scripted.stats.get("traces", 0),
        "paths_ratio": round(
            learned.final_paths / max(scripted.final_paths, 1), 2),
        "unmodelled": {
            "target": LEARNED_UNMODELLED_TARGET,
            "learned_paths": engine.path_count,
            "single_packet_paths": single.final_paths,
            "learned_edges": engine.seed_pool.edge_count,
            "single_packet_edges": single.final_edges,
            "learned_states": engine.stats.learned_states,
            "session_only_edges": len(session_only),
            "session_only_edges_reached": gated_reached,
        },
    }


def _throughput():
    if "payload" in _CACHE:
        return _CACHE["payload"]
    targets = {}
    headline = None
    for target_name in THROUGHPUT_TARGETS:
        rows = {}
        for engine_name in ("peach", "peach-star"):
            is_headline = (target_name, engine_name) == \
                (HEADLINE_TARGET, "peach-star")
            rate, result, elapsed = _timed_campaign(
                engine_name, target_name, HEADLINE_SEED,
                rounds=3 if is_headline else 1)
            rows[engine_name] = {
                "execs_per_sec": round(rate, 1),
                "executions": result.executions,
                "wall_seconds": round(elapsed, 3),
                "final_paths": result.final_paths,
            }
            if is_headline:
                headline = (rate, result, elapsed)
        targets[target_name] = rows

    # the sparse side of the gate is the headline campaign already
    # timed in the loop above (same engine/target/seed, deterministic)
    sparse_rate, sparse_result, sparse_secs = headline
    dense_rate, dense_result, dense_secs = _timed_campaign(
        "peach-star", HEADLINE_TARGET, HEADLINE_SEED, dense=True)
    assert sparse_result.executions == dense_result.executions, \
        "sparse and dense campaigns diverged; equivalence is broken"
    prior = _prior_trajectory()
    current_entry = {
        "python": "%d.%d.%d" % sys.version_info[:3],
        "backend": resolve_backend("auto"),
        "bench_hours": BENCH_HOURS,
        "execs_per_sec": round(sparse_rate, 1),
        "speedup": round(sparse_rate / max(dense_rate, 1e-9), 2),
    }
    # only gate against entries recorded under a comparable environment:
    # a backend or interpreter switch legitimately moves the baseline
    def _comparable(entry):
        return (entry.get("backend") == current_entry["backend"]
                and entry.get("bench_hours") == BENCH_HOURS
                and str(entry.get("python", "")).rsplit(".", 1)[0]
                == current_entry["python"].rsplit(".", 1)[0])
    prior_best = max((entry["execs_per_sec"] for entry in prior
                      if _comparable(entry)), default=None)
    payload = {
        "backend": resolve_backend("auto"),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "bench_hours": BENCH_HOURS,
        "targets": targets,
        "sparse_vs_dense": {
            "target": HEADLINE_TARGET,
            "engine": "peach-star",
            "executions": sparse_result.executions,
            "sparse_execs_per_sec": round(sparse_rate, 1),
            "dense_execs_per_sec": round(dense_rate, 1),
            "sparse_wall_seconds": round(sparse_secs, 3),
            "dense_wall_seconds": round(dense_secs, 3),
            "speedup": round(sparse_rate / max(dense_rate, 1e-9), 2),
        },
        "batched_vs_unbatched": _batched_vs_unbatched(),
        "fleet_vs_serial": _fleet_vs_serial(),
        "socket_vs_inprocess": _socket_vs_inprocess(),
        "sessions_vs_single_packet": _sessions_vs_single_packet(),
        "learned_vs_scripted": _learned_vs_scripted(),
        "trajectory": _trim_trajectory(prior + [current_entry]),
        "regression": {
            "prior_best_execs_per_sec": prior_best,
            "current_execs_per_sec": round(sparse_rate, 1),
            "ratio": (round(sparse_rate / prior_best, 3)
                      if prior_best else None),
            "tolerance": REGRESSION_TOLERANCE,
        },
    }
    _CACHE["payload"] = payload
    return payload


def test_throughput_artifact(benchmark):
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    path = write_artifact(_artifact_name(), payload)
    rows = [f"{'target':<13} {'engine':<11} {'execs/sec':>10} "
            f"{'execs':>6} {'wall s':>8}"]
    for target_name, engines in payload["targets"].items():
        for engine_name, row in engines.items():
            rows.append(f"{target_name:<13} {engine_name:<11} "
                        f"{row['execs_per_sec']:>10.1f} "
                        f"{row['executions']:>6} "
                        f"{row['wall_seconds']:>8.3f}")
    gate = payload["sparse_vs_dense"]
    rows.append(f"\nsparse vs dense ({gate['engine']} on {gate['target']}): "
                f"{gate['sparse_execs_per_sec']:.1f} vs "
                f"{gate['dense_execs_per_sec']:.1f} execs/sec "
                f"= {gate['speedup']:.2f}x  (backend: {payload['backend']})")
    batch = payload["batched_vs_unbatched"]
    rows.append(f"batched vs unbatched (batch {batch['batch_size']} on "
                f"{batch['target']}): "
                f"{batch['ratio']:.4f}x fewer Python calls; "
                f"{batch['batched_execs_per_sec']:.1f} vs "
                f"{batch['unbatched_execs_per_sec']:.1f} execs/sec "
                f"(paths identical: {batch['paths_identical']})")
    fleet = payload["fleet_vs_serial"]
    rows.append(f"fleet vs serial ({fleet['shards']} shards on "
                f"{fleet['target']}): "
                f"{fleet['fleet_paths_per_sec']:.1f} vs "
                f"{fleet['serial_paths_per_sec']:.1f} paths/sec "
                f"({fleet['fleet_merged_paths']} vs "
                f"{fleet['serial_union_paths']} merged paths, "
                f"{sum(fleet['imported_seeds'])} seeds exchanged)")
    socket = payload["socket_vs_inprocess"]
    rows.append(f"socket vs in-process (on {socket['target']}): "
                f"{socket['socket_execs_per_sec']:.1f} vs "
                f"{socket['inprocess_execs_per_sec']:.1f} execs/sec "
                f"= {socket['execs_per_sec_ratio']:.2f}x "
                f"(paths identical: {socket['paths_identical']})")
    sessions = payload["sessions_vs_single_packet"]
    rows.append(f"sessions vs single-packet (on {sessions['target']}): "
                f"{sessions['session_paths']} vs "
                f"{sessions['single_packet_paths']} paths, "
                f"{sessions['session_edges']} vs "
                f"{sessions['single_packet_edges']} edges, "
                f"{sessions['session_only_edges']} session-only edges")
    learned = payload["learned_vs_scripted"]
    rows.append(f"learned vs scripted sessions (on {learned['target']}): "
                f"{learned['learned_paths']} vs "
                f"{learned['scripted_paths']} paths "
                f"({learned['learned_states']} states learned); "
                f"{learned['unmodelled']['target']} learned vs "
                f"single-packet: {learned['unmodelled']['learned_paths']} "
                f"vs {learned['unmodelled']['single_packet_paths']} paths, "
                f"{learned['unmodelled']['session_only_edges_reached']}/"
                f"{learned['unmodelled']['session_only_edges']} "
                f"gated edges reached")
    rows.append(f"artifact: {path}")
    print_block("Wall-clock throughput (execs/sec)", "\n".join(rows))
    for engines in payload["targets"].values():
        for row in engines.values():
            assert row["execs_per_sec"] > 0


def test_fleet_vs_serial_entry(benchmark):
    """The fleet comparison is recorded and structurally sane: shards
    fuzz, sync rounds happen, and the merged view loses nothing."""
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    fleet = payload["fleet_vs_serial"]
    assert fleet["fleet_merged_paths"] > 0
    assert fleet["serial_union_paths"] > 0
    assert fleet["fleet_paths_per_sec"] > 0
    assert fleet["serial_paths_per_sec"] > 0
    assert len(fleet["imported_seeds"]) == fleet["shards"]


def test_fleet_ratio_floor(benchmark):
    """Fleet-overhead regression gate: the fleet's paths/sec may not
    fall below ``FLEET_RATIO_FLOOR`` of the serial rate.  Smoke runs
    skip it for the same reason as the throughput gate — compressed
    budgets inflate the fixed per-round costs."""
    if not CLAIMS_ENABLED:
        pytest.skip("fleet ratio gate needs the near-full benchmark budget")
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    ratio = payload["fleet_vs_serial"]["paths_per_sec_ratio"]
    assert ratio >= FLEET_RATIO_FLOOR, (
        f"fleet paths/sec is only {ratio:.2f}x the serial rate; the "
        f"fleet-overhead gate requires >= {FLEET_RATIO_FLOOR}")


def test_socket_vs_inprocess_entry(benchmark):
    """The socket comparison is recorded and structurally sane: both
    transports execute the full budget and the loopback run discovers
    the exact same corpus (the parity claim's path-level half)."""
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    socket = payload["socket_vs_inprocess"]
    assert socket["executions"] > 0
    assert socket["socket_execs_per_sec"] > 0
    assert socket["inprocess_execs_per_sec"] > 0
    assert socket["paths_identical"]


def test_socket_ratio_floor(benchmark):
    """Transport-overhead regression gate: the loopback socket harness
    may not fall below ``SOCKET_RATIO_FLOOR`` of the in-process rate.
    Smoke runs skip it — compressed budgets inflate the fixed
    serve/connect costs the same way they inflate fleet spin-up."""
    if not CLAIMS_ENABLED:
        pytest.skip("socket ratio gate needs the near-full benchmark budget")
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    ratio = payload["socket_vs_inprocess"]["execs_per_sec_ratio"]
    assert ratio >= SOCKET_RATIO_FLOOR, (
        f"socket throughput is only {ratio:.2f}x the in-process rate; "
        f"the transport-overhead gate requires >= {SOCKET_RATIO_FLOOR}")


def test_batched_vs_unbatched_entry(benchmark):
    """The batching comparison is recorded and structurally sane: both
    loop shapes execute the full budget and discover the exact same
    corpus (the bit-identity claim's path-level half)."""
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    batch = payload["batched_vs_unbatched"]
    assert batch["executions"] > 0
    assert batch["batched_execs_per_sec"] > 0
    assert batch["unbatched_execs_per_sec"] > 0
    assert batch["python_calls_batched"] > 0
    assert batch["python_calls_unbatched"] > 0
    assert batch["paths_identical"]


def test_batched_ratio_floor(benchmark):
    """Batching regression gate: the batched hot path must execute
    strictly less interpreter work than the one-at-a-time loop
    (deterministic Python-call ratio > 1.0) — it is bit-identical, so
    doing *more* work would mean the default ``batch_size=16`` costs
    throughput.  Smoke runs skip it: compressed budgets leave too few
    executions for the hoisted-per-iteration savings to register."""
    if not CLAIMS_ENABLED:
        pytest.skip("batch ratio gate needs the near-full benchmark budget")
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    ratio = payload["batched_vs_unbatched"]["ratio"]
    assert ratio > BATCH_RATIO_FLOOR, (
        f"the batched loop executes {ratio:.4f}x the unbatched loop's "
        f"Python calls; the batching gate requires > {BATCH_RATIO_FLOOR}")


def test_sessions_vs_single_packet_entry(benchmark):
    """The session comparison is recorded and structurally sane: both
    modes discover paths under the same budget, and the directed
    measurement confirms session-only coverage exists on IEC 104."""
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    sessions = payload["sessions_vs_single_packet"]
    assert sessions["session_paths"] > 0
    assert sessions["single_packet_paths"] > 0
    assert sessions["session_traces"] > 0
    assert sessions["session_executions"] >= sessions["session_traces"]
    assert sessions["session_only_edges"] > 0


def test_learned_vs_scripted_entry(benchmark):
    """The state-learning comparison is recorded and structurally sane:
    both modes discover paths, the learner infers a non-trivial
    automaton, and lib60870's state-gated session-only edges exist.
    The reached-the-gated-edges claim needs the near-full budget (a
    2-hour smoke campaign is a handful of traces)."""
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    learned = payload["learned_vs_scripted"]
    assert learned["learned_paths"] > 0
    assert learned["scripted_paths"] > 0
    assert learned["learned_traces"] > 0
    assert learned["learned_states"] >= 2
    unmodelled = learned["unmodelled"]
    assert unmodelled["learned_paths"] > 0
    assert unmodelled["single_packet_paths"] > 0
    assert unmodelled["session_only_edges"] > 0
    if CLAIMS_ENABLED:
        assert unmodelled["session_only_edges_reached"] > 0, (
            "a full-budget learning campaign on lib60870 must reach "
            "the STOPDT-gated drop edges")


def test_sparse_pipeline_at_least_3x_dense(benchmark):
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    speedup = payload["sparse_vs_dense"]["speedup"]
    assert speedup >= 3.0, (
        f"sparse coverage pipeline is only {speedup:.2f}x the dense "
        "reference; the perf acceptance gate requires >= 3x")


def test_no_throughput_regression_vs_trajectory(benchmark):
    """The ROADMAP regression check: the headline campaign's execs/sec
    may not drop more than 25% below the best recorded trajectory entry.
    Smoke runs (compressed budgets) exercise the plumbing but skip the
    gate — their rates are not comparable to the 24h trajectory."""
    if not CLAIMS_ENABLED:
        pytest.skip("regression gate needs the near-full benchmark budget")
    payload = benchmark.pedantic(_throughput, rounds=1, iterations=1)
    regression = payload["regression"]
    prior_best = regression["prior_best_execs_per_sec"]
    if not prior_best:
        pytest.skip("no recorded trajectory yet")
    current = regression["current_execs_per_sec"]
    floor = (1.0 - REGRESSION_TOLERANCE) * prior_best
    assert current >= floor, (
        f"headline throughput {current:.1f} execs/sec fell more than "
        f"{REGRESSION_TOLERANCE:.0%} below the best recorded trajectory "
        f"entry ({prior_best:.1f} execs/sec; floor {floor:.1f})")
