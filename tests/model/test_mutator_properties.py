"""Property-based mutator/fixup tests over every protocol model.

A seeded randomized loop (stdlib ``random`` — no extra deps) drives the
same :func:`~repro.model.generation.generate_packet` path the fuzzing
engines use and asserts that every mutated InsTree still re-serializes
with *honest* integrity after the Fixup pipeline:

* every SizeOf/CountOf carrier equals the recomputation over the bytes
  it describes;
* every checksum carrier equals the fixup recomputed over the covered
  raws;
* the tree's raw assembly is internally consistent and ``to_wire``
  matches the packet the engine would send;
* rebuilding the tree through the Relation/Fixup repair pipeline
  (:class:`~repro.core.fixup_engine.TreeEchoProvider`) is a fixpoint.
"""

import random

import pytest

from repro.core.campaign import default_campaign_policy
from repro.core.fixup_engine import TreeEchoProvider
from repro.core.semantic import _decode_donor
from repro.model.fields import Number, Repeat
from repro.model.generation import generate_packet
from repro.protocols import TARGET_NAMES, all_targets

#: iterations per data model; with ~50 models across the six pits the
#: loop stays well under a second per target
ITERATIONS = 25

_PITS = {spec.name: spec.make_pit() for spec in all_targets()}


def assert_tree_integrity(model, tree, packet):
    """Framing lengths/counts and checksums of *tree* are honest."""
    root = tree.root
    # raw assembly is consistent bottom-up
    for node in root.iter_nodes():
        if node.children:
            assert node.raw == b"".join(child.raw
                                        for child in node.children), \
                f"{model.name}: {node.name} raw out of sync"
    for node in root.iter_nodes():
        relation = node.field.relation
        if relation is not None:
            target = root.find(relation.of)
            assert target is not None, \
                f"{model.name}: dangling relation {relation.of!r}"
            count = len(target.children) \
                if isinstance(target.field, Repeat) else None
            assert node.value == relation.compute(target.raw, count), \
                f"{model.name}: {node.name} carries a dishonest " \
                f"{relation.type_name}"
        fixup = node.field.fixup
        if fixup is not None:
            covered = b"".join(root.find(name).raw
                               for name in fixup.over)
            expected = fixup.compute(covered)
            actual = node.value if isinstance(node.value, int) \
                else int.from_bytes(node.raw, "big")
            assert actual == expected, \
                f"{model.name}: {node.name} carries a stale " \
                f"{fixup.algorithm}"
    assert model.to_wire(tree) == packet


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_mutated_trees_keep_honest_integrity(target_name):
    rng = random.Random(0xF1EE7 + TARGET_NAMES.index(target_name))
    policy = default_campaign_policy()
    for model in _PITS[target_name]:
        for _ in range(ITERATIONS):
            tree, packet = generate_packet(model, rng, policy)
            assert_tree_integrity(model, tree, packet)


def _number_domain(field):
    bits = field.width * 8
    if field.signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


def test_signed_donor_decodes_into_the_signed_domain():
    """The regression the semantic generator shipped with: 0xFF donated
    into a signed byte is -1, not 255 — an unsigned decode lands outside
    the value domain and corrupts the CONSTRUCT re-encode."""
    signed = Number("temp", width=1, signed=True)
    unsigned = Number("count", width=1)
    # wrong-length donors force the fallback decode path
    assert _decode_donor(signed, b"\xff\xff") == -1
    assert _decode_donor(unsigned, b"\xff\xff") == 255
    assert _decode_donor(signed, b"\x7f\x00") == 127
    wide = Number("delta", width=2, signed=True, endian="little")
    assert _decode_donor(wide, b"\xff") == -1


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_donor_decode_stays_in_every_number_fields_domain(target_name):
    """Donor splicing must yield values the leaf can re-encode: for
    every Number field of every model, a donor of any length decodes
    into the field's signed/unsigned domain and round-trips through
    ``encode``/``decode`` bit-exactly."""
    rng = random.Random(0xD0 + TARGET_NAMES.index(target_name))
    for model in _PITS[target_name]:
        tree = model.build_default()
        for node in tree.root.iter_nodes():
            field = node.field
            if not isinstance(field, Number):
                continue
            sizes = {field.width, max(1, field.width - 1),
                     field.width + 1, field.width + 3}
            for size in sorted(sizes):
                donor = bytes(rng.randrange(256) for _ in range(size))
                value = _decode_donor(field, donor)
                assert isinstance(value, int), \
                    f"{model.name}.{field.name}: donor decoded to {value!r}"
                low, high = _number_domain(field)
                assert low <= value <= high, \
                    f"{model.name}.{field.name}: {value} outside " \
                    f"[{low}, {high}] for a {size}-byte donor"
                assert field.decode(field.encode(value)) == value


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_fixup_pipeline_is_a_fixpoint_on_mutants(target_name):
    """Re-running the repair pipeline on a freshly-built tree must not
    change the wire bytes: the pipeline converges in one pass."""
    rng = random.Random(0xD0C + TARGET_NAMES.index(target_name))
    policy = default_campaign_policy()
    for model in _PITS[target_name]:
        for _ in range(ITERATIONS):
            tree, packet = generate_packet(model, rng, policy)
            rebuilt = model.build(TreeEchoProvider(tree))
            assert model.to_wire(rebuilt) == packet
