"""Tests for the libmodbus-analog target: codec, server, pit, seeded bugs."""

import pytest

from repro.model import choose_model, generate_packet
from repro.protocols.modbus import (
    ModbusServer, build_diagnostics, build_mask_write, build_mbap,
    build_read_request, build_read_write_multiple, build_write_multiple_coils,
    build_write_multiple_registers, build_write_single, codec, make_pit,
    parse_mbap, parse_response,
)
from repro.sanitizer import (
    HeapUseAfterFree, MemoryFault, SimHeap, SimSegv,
)


@pytest.fixture
def server():
    return ModbusServer()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


class TestCodec:
    def test_mbap_roundtrip(self):
        frame = build_mbap(7, 3, b"\x03\x00\x00\x00\x01")
        header, pdu = parse_mbap(frame)
        assert header.transaction_id == 7
        assert header.unit_id == 3
        assert pdu[0] == 0x03

    def test_mbap_length_covers_unit_and_pdu(self):
        frame = build_mbap(1, 1, b"\x03\xAA")
        header, _pdu = parse_mbap(frame)
        assert header.length == 3

    def test_parse_mbap_rejects_bad_length(self):
        frame = bytearray(build_read_request(3, 0, 1))
        frame[5] ^= 0x20
        with pytest.raises(ValueError):
            parse_mbap(bytes(frame))

    def test_parse_response_exception_form(self):
        frame = build_mbap(1, 1, bytes((0x83, 0x02)))
        fc, payload, exc = parse_response(frame)
        assert fc == 0x03
        assert exc == 0x02


class TestReads:
    def test_read_holding_registers_happy_path(self, server):
        fc, payload, exc = parse_response(
            _exec(server, build_read_request(0x03, 0, 2)))
        assert exc is None
        assert payload[0] == 4  # byte count
        assert payload[1:] == b"\x12\x34\x56\x78"

    def test_read_coils_bit_packing(self, server):
        fc, payload, exc = parse_response(
            _exec(server, build_read_request(0x01, 0, 9)))
        assert exc is None
        assert payload[0] == 2  # 9 bits -> 2 bytes
        assert payload[1] & 1 == 1  # coil 0 initialised to on

    def test_read_quantity_zero_rejected(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_read_request(0x03, 0, 0)))
        assert exc == codec.EX_ILLEGAL_DATA_VALUE

    def test_read_quantity_over_limit_rejected(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_read_request(0x03, 0, 126)))
        assert exc == codec.EX_ILLEGAL_DATA_VALUE

    def test_read_address_out_of_range_rejected(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_read_request(0x03, 0xFFF0, 5)))
        assert exc == codec.EX_ILLEGAL_DATA_ADDRESS

    def test_read_input_registers_smaller_table(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_read_request(0x04, 300, 1)))
        assert exc == codec.EX_ILLEGAL_DATA_ADDRESS


class TestWrites:
    def test_write_single_register_echoes(self, server):
        frame = build_write_single(0x06, 5, 0xBEEF)
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None
        assert payload == (5).to_bytes(2, "big") + (0xBEEF).to_bytes(2, "big")

    def test_write_single_coil_value_validation(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_write_single(0x05, 0, 0x1234)))
        assert exc == codec.EX_ILLEGAL_DATA_VALUE

    def test_write_multiple_registers_happy_path(self, server):
        frame = build_write_multiple_registers(10, [1, 2, 3])
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None
        assert payload == (10).to_bytes(2, "big") + (3).to_bytes(2, "big")

    def test_write_multiple_coils_happy_path(self, server):
        frame = build_write_multiple_coils(0, [True, False, True])
        _fc, _payload, exc = parse_response(_exec(server, frame))
        assert exc is None

    def test_mask_write(self, server):
        # register 0 is initialised to 0x1234 by the per-execution mapping
        frame = build_mask_write(0, 0x00F0, 0x0005)
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None
        assert payload == (b"\x00\x00" + (0x00F0).to_bytes(2, "big")
                           + (0x0005).to_bytes(2, "big"))

    def test_mask_write_address_out_of_range(self, server):
        _fc, _payload, exc = parse_response(
            _exec(server, build_mask_write(0x8000, 0, 0)))
        assert exc == codec.EX_ILLEGAL_DATA_ADDRESS

    def test_read_write_multiple_happy_path(self, server):
        frame = build_read_write_multiple(0, 2, 8, [7, 8])
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None
        assert payload[0] == 4


class TestDiagnosticsAndMisc:
    def test_echo_subfunction(self, server):
        fc, payload, exc = parse_response(
            _exec(server, build_diagnostics(0x0000, 0xA5A5)))
        assert exc is None
        assert payload[2:4] == b"\xa5\xa5"

    def test_listen_only_gives_no_response(self, server):
        assert _exec(server, build_diagnostics(0x0004)) is None

    def test_clear_counters(self, server):
        _exec(server, build_read_request(0x03, 0, 1))
        parse_response(_exec(server, build_diagnostics(0x000A)))
        fc, payload, exc = parse_response(
            _exec(server, build_diagnostics(0x000B)))
        assert int.from_bytes(payload[2:4], "big") <= 1

    def test_unknown_function_code_rejected(self, server):
        frame = build_mbap(1, 1, bytes((0x55, 0x00)))
        _fc, _payload, exc = parse_response(_exec(server, frame))
        assert exc == codec.EX_ILLEGAL_FUNCTION

    def test_device_identification(self, server):
        frame = build_mbap(1, 1, bytes((0x2B, 0x0E, 0x01, 0x00)))
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None
        assert b"repro-modbus" in payload

    def test_report_server_id(self, server):
        frame = build_mbap(1, 1, bytes((0x11,)))
        fc, payload, exc = parse_response(_exec(server, frame))
        assert exc is None

    def test_bad_protocol_id_dropped(self, server):
        frame = bytearray(build_read_request(3, 0, 1))
        frame[2] = 0x77
        assert _exec(server, bytes(frame)) is None

    def test_short_frame_dropped(self, server):
        assert _exec(server, b"\x00\x01") is None

    def test_mbap_length_mismatch_dropped(self, server):
        frame = bytearray(build_read_request(3, 0, 1))
        frame[5] += 1
        assert _exec(server, bytes(frame)) is None


class TestSeededBugs:
    def test_uaf_on_inconsistent_write_multiple(self, server):
        """Table I libmodbus row: heap-use-after-free.  Valid quantity,
        valid address, but byte_count != 2*quantity."""
        pdu = (bytes((0x10,)) + (0).to_bytes(2, "big")
               + (2).to_bytes(2, "big") + bytes((6,)) + b"\x00" * 6)
        frame = build_mbap(1, 1, pdu)
        with pytest.raises(HeapUseAfterFree) as exc:
            _exec(server, frame)
        assert exc.value.site == "modbus.c:respond_exception_after_free"

    def test_uaf_requires_valid_quantity(self, server):
        """quantity out of range takes the checked exception path."""
        pdu = (bytes((0x10,)) + (0).to_bytes(2, "big")
               + (200).to_bytes(2, "big") + bytes((6,)) + b"\x00" * 6)
        _fc, _payload, exc = parse_response(_exec(server, build_mbap(1, 1, pdu)))
        assert exc == codec.EX_ILLEGAL_DATA_VALUE

    def test_segv_on_fc23_wild_read_address(self, server):
        """Table I libmodbus row: SEGV via unchecked FC 0x17 read."""
        frame = build_read_write_multiple(0x9000, 2, 0, [1])
        with pytest.raises(SimSegv) as exc:
            _exec(server, frame)
        assert exc.value.site == "modbus.c:fc23_read_registers"

    def test_fc23_safe_when_read_address_in_range(self, server):
        frame = build_read_write_multiple(0, 2, 0, [1])
        assert _exec(server, frame) is not None

    def test_exactly_two_seeded_fault_sites_under_fuzzing(self, server, rng):
        pit = make_pit()
        sites = set()
        for _ in range(1500):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            try:
                _exec(server, wire)
            except MemoryFault as fault:
                sites.add((fault.kind, fault.site))
        allowed = {
            ("heap-use-after-free", "modbus.c:respond_exception_after_free"),
            ("SEGV", "modbus.c:fc23_read_registers"),
        }
        assert sites <= allowed


class TestPit:
    def test_sixteen_models(self):
        assert len(make_pit()) == 16

    def test_every_default_packet_is_valid_and_handled(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            _exec(server, raw)  # must not raise

    def test_shared_semantics_across_models(self):
        pit = make_pit()
        read_model = pit.model("modbus.read_coils")
        write_model = pit.model("modbus.read_write_multiple")
        read_addr = read_model.root.child("body").child("address")
        rw_addr = write_model.root.child("body").child("read_address")
        assert read_addr.signature() == rw_addr.signature()

    def test_mbap_length_relation_consistent(self):
        pit = make_pit()
        for model in pit:
            tree = model.build_default()
            assert tree.find("length").value == len(tree.find("body").raw)
