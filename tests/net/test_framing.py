"""Wire framing: the peachstar envelope codec and the raw stream framers."""

import asyncio

import pytest

from repro.net.framing import (
    EnvelopeError, MSG_DATA, MSG_RESPONSE, MAX_ENVELOPE,
    encode_envelope, framer_for, read_envelope,
)
from repro.protocols import all_targets, get_target

TARGET_NAMES = [spec.name for spec in all_targets()]


def default_wires(spec, limit=None):
    """One honestly-framed wire packet per data model of the target."""
    pit = spec.make_pit()
    models = pit.models()[:limit] if limit else pit.models()
    return [model.to_wire(model.build_default()) for model in models]


# -- envelope ----------------------------------------------------------------

class TestEnvelope:
    def roundtrip(self, *messages):
        """Encode messages into one stream, read them all back."""
        async def drive():
            reader = asyncio.StreamReader()
            for kind, payload in messages:
                reader.feed_data(encode_envelope(kind, payload))
            reader.feed_eof()
            out = []
            while True:
                message = await read_envelope(reader)
                if message is None:
                    return out
                out.append(message)
        return asyncio.run(drive())

    def test_roundtrip(self):
        messages = [(MSG_DATA, b"\x68\x04\x07\x00\x00\x00"),
                    (MSG_RESPONSE, b""),
                    (MSG_DATA, bytes(range(256)))]
        assert self.roundtrip(*messages) == messages

    def test_arbitrary_payload_never_reinterpreted(self):
        # fuzzed frames routinely contain lying length fields — the
        # envelope must carry them verbatim
        evil = b"\x68\xff\xff\xff" * 100
        assert self.roundtrip((MSG_DATA, evil)) == [(MSG_DATA, evil)]

    def test_truncated_stream_is_clean_eof(self):
        async def drive():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_envelope(MSG_DATA, b"abc")[:3])
            reader.feed_eof()
            return await read_envelope(reader)
        assert asyncio.run(drive()) is None

    def test_oversized_length_rejected(self):
        with pytest.raises(EnvelopeError):
            encode_envelope(MSG_DATA, b"\x00" * (MAX_ENVELOPE + 1))

        async def drive():
            reader = asyncio.StreamReader()
            reader.feed_data(MSG_DATA + (MAX_ENVELOPE + 1).to_bytes(4, "big"))
            return await read_envelope(reader)
        with pytest.raises(EnvelopeError):
            asyncio.run(drive())

    def test_bad_kind_rejected(self):
        with pytest.raises(EnvelopeError):
            encode_envelope(b"DD", b"")


# -- stream framers ----------------------------------------------------------

class TestStreamFramers:
    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_default_wires_frame_exactly(self, name):
        """Every honestly-built packet of every model frames back whole."""
        spec = get_target(name)
        wires = default_wires(spec)
        framer = framer_for(spec.framing)
        frames = framer.feed(b"".join(wires))
        assert frames == wires
        assert framer.pending == 0

    @pytest.mark.parametrize("name", TARGET_NAMES)
    def test_byte_at_a_time_feed(self, name):
        spec = get_target(name)
        wires = default_wires(spec, limit=3)
        framer = framer_for(spec.framing)
        frames = []
        for byte in b"".join(wires):
            frames.extend(framer.feed(bytes((byte,))))
        assert frames == wires

    @pytest.mark.parametrize("name,start", [
        ("iec104", b"\x68"), ("libiec61850", b"\x03"),
        ("opendnp3", b"\x05"),
    ])
    def test_resync_past_garbage(self, name, start):
        """Garbage before a start byte is skipped, the real frame framed."""
        spec = get_target(name)
        wire = default_wires(spec, limit=1)[0]
        assert wire[:1] == start
        framer = framer_for(spec.framing)
        frames = framer.feed(b"\xde\xad\xbe\xef" + wire)
        assert frames == [wire]

    def test_mbap_has_no_resync(self):
        # MBAP trusts the length prefix: garbage swallows the stream,
        # exactly like a real Modbus/TCP stack that lost framing
        framer = framer_for("mbap")
        garbage = b"\x00\x01\x00\x00\xff\xff"  # claims a 65535-byte frame
        assert framer.feed(garbage) == []
        assert framer.pending == len(garbage)

    def test_unknown_framing_rejected(self):
        with pytest.raises(ValueError):
            framer_for("carrier-pigeon")

    def test_framer_reset_clears_buffer(self):
        framer = framer_for("apci")
        framer.feed(b"\x68\x10\x01")  # partial frame
        assert framer.pending > 0
        framer.reset()
        assert framer.pending == 0


class TestSpecFraming:
    def test_every_target_declares_a_known_framing(self):
        for spec in all_targets():
            framer_for(spec.framing)  # must not raise

    def test_expected_families(self):
        assert get_target("libmodbus").framing == "mbap"
        assert get_target("iec104").framing == "apci"
        assert get_target("lib60870").framing == "apci"
        assert get_target("opendnp3").framing == "dnp3"
        assert get_target("libiec61850").framing == "tpkt"
        assert get_target("libiccp").framing == "tpkt"
