"""§V-B path headline: +8.35%-36.84% more paths within 24 hours.

Reports the per-project final path increase of Peach* over Peach and the
cross-project average (the paper reports an average of +27.35%).  Shares
campaign runs with the speedup benchmark via its module cache when both
are executed in one session.
"""

from __future__ import annotations

from benchmarks.conftest import CLAIMS_ENABLED, print_block
from benchmarks.test_speedup import _headline


def test_final_path_increase(benchmark):
    report = benchmark.pedantic(_headline, rounds=1, iterations=1)
    rows = "\n".join(
        f"  {s.target_name:<13} {s.peach_final_paths:7.1f} -> "
        f"{s.star_final_paths:7.1f}  ({s.path_increase_pct:+6.2f}%)"
        for s in report.summaries)
    print_block(
        "Final paths at 24h (paper: +8.35%..+36.84%, avg +27.35%)",
        rows + f"\n  average: {report.average_increase_pct:+.2f}%")
    # shape: the aggregate favours Peach* (needs a near-full budget)
    star = sum(s.star_final_paths for s in report.summaries)
    peach = sum(s.peach_final_paths for s in report.summaries)
    if CLAIMS_ENABLED:
        assert star > peach
