"""Fixups: checksum/CRC fields recomputed after packet assembly.

A fixup attaches to a leaf field and overwrites its value with a checksum
computed over other fields' built bytes — Peach's ``<Fixup>`` (the paper's
Fig. 1 uses ``Crc32Fixup``).  The File Fixup module (paper §IV-D) reuses
exactly this mechanism to repair packets assembled from donor puzzles.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from repro.model.fields import Blob, Field, ModelError, Number


def crc16_modbus(data: bytes) -> int:
    """CRC-16/MODBUS (poly 0x8005 reflected = 0xA001, init 0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
    return crc


def crc_dnp3(data: bytes) -> int:
    """CRC-16/DNP (poly 0x3D65 reflected = 0xA6BC, init 0, complemented)."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA6BC
            else:
                crc >>= 1
    return (~crc) & 0xFFFF


def sum8(data: bytes) -> int:
    """8-bit additive checksum (used by simple serial ICS framings)."""
    return sum(data) & 0xFF


def xor8(data: bytes) -> int:
    """8-bit XOR (longitudinal redundancy check variant)."""
    acc = 0
    for byte in data:
        acc ^= byte
    return acc


def lrc8(data: bytes) -> int:
    """Modbus-ASCII LRC: two's complement of the byte sum."""
    return (-sum(data)) & 0xFF


class Fixup:
    """Base class: recompute the carrier field from other fields' bytes.

    ``over`` lists the names of fields (searched by name in the model tree)
    whose built bytes are concatenated, in declaration order, as checksum
    input.
    """

    algorithm = "fixup"

    def __init__(self, over: Sequence[str]):
        if not over:
            raise ModelError("fixup must cover at least one field")
        self.over = tuple(over)

    def compute(self, data: bytes) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} over={self.over!r}>"


class Crc32Fixup(Fixup):
    """CRC-32 (the paper's Fig. 1 ``Crc32Fixup``)."""

    algorithm = "crc32"

    def compute(self, data: bytes) -> int:
        return zlib.crc32(data) & 0xFFFFFFFF


class Crc16ModbusFixup(Fixup):
    algorithm = "crc16-modbus"

    def compute(self, data: bytes) -> int:
        return crc16_modbus(data)


class Dnp3CrcFixup(Fixup):
    algorithm = "crc16-dnp"

    def compute(self, data: bytes) -> int:
        return crc_dnp3(data)


class Sum8Fixup(Fixup):
    algorithm = "sum8"

    def compute(self, data: bytes) -> int:
        return sum8(data)


class Xor8Fixup(Fixup):
    algorithm = "xor8"

    def compute(self, data: bytes) -> int:
        return xor8(data)


class Lrc8Fixup(Fixup):
    algorithm = "lrc8"

    def compute(self, data: bytes) -> int:
        return lrc8(data)


def attach_fixup(field: Field, fixup: Fixup) -> Field:
    """Attach *fixup* to a Number/Blob carrier and return it (fluent)."""
    if not isinstance(field, (Number, Blob)):
        raise ModelError(f"fixups attach to Number/Blob fields, not {field!r}")
    if field.fixed_width() is None:
        raise ModelError(f"fixup carrier {field.name!r} must be fixed-width")
    if field.relation is not None:
        raise ModelError(f"{field.name!r} cannot carry both relation and fixup")
    field.fixup = fixup
    return field
