"""SessionFuzzer: the sequence-aware engine (session mode of Peach*).

The single-packet loop of :class:`~repro.core.engine.PeachStar` is kept
intact for everything *within* a step — coverage-guided valuable-seed
identification, packet cracking into the puzzle corpus, semantic-aware
generation with File Fixup — but the unit of fuzzing becomes a
multi-packet :class:`~repro.state.trace.TraceStep` sequence:

* fresh traces come from random walks over the protocol's
  :class:`~repro.state.model.StateModel`;
* mutation picks one step of a valuable trace and re-generates it
  through the crack-and-generate machinery (the honest prefix is
  replayed unchanged, with response-derived bindings re-derived live by
  the :class:`~repro.state.binder.TraceBinder`), or splices two traces,
  extends a trace by walking on from its final state, or truncates it;
* a trace is *valuable* when its step-accumulated coverage map reaches
  new bucketed state, and every step of a valuable trace is cracked
  into the puzzle corpus;
* a crash is attributed to the step that raised it, and the crash
  report carries the full encoded trace for session-level triage.

Every random decision draws from the engine RNG and all mutable state
lives in structures the campaign workspace already checkpoints (the
valuable-trace pool *is* the persisted seed corpus), so session
campaigns inherit kill-and-resume bit-identity and fleet corpus
exchange without new persistence machinery — traces travel as ordinary
corpus entries in their canonical encoded form.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.engine import IterationOutcome, PeachStar
from repro.model.datamodel import DataModel, Pit
from repro.model.fields import ModelError
from repro.model.generation import choose_model, generate_packet
from repro.model.instree import InsTree
from repro.model.mutators import GenerationPolicy
from repro.runtime.clock import SimulatedClock
from repro.runtime.target import Target
from repro.state.binder import LaneBinder, TraceBinder, apply_pins
from repro.state.model import StateModel, Transition
from repro.state.trace import (
    TraceError, TraceStep, decode_trace, encode_trace, is_trace_blob,
    trace_model_name,
)


class SessionFuzzer(PeachStar):
    """Peach* in session mode: traces are the unit of fuzzing.

    Additional parameters
    ---------------------
    state_model:
        The protocol's session state machine.
    max_trace_steps:
        Length bound for fresh random walks (mutated traces may grow to
        twice this before splice/extend results are clipped).
    fresh_trace_prob:
        Probability of proposing a fresh walk instead of mutating a
        valuable trace (always 1.0 while the trace pool is empty).
    concurrency:
        ``--concurrency N``: a trace is N interleaved wire sessions —
        the transport deals step *i* to connection ``i % N`` against a
        shared-state server, session variables are scoped per lane
        (:class:`~repro.state.binder.LaneBinder`), and fresh walks are
        N independent state-machine walks merged round-robin so each
        lane is itself a plausible session.  Requires a shared-state
        :class:`~repro.net.target.SocketTarget` to mean anything; with
        the default in-process target it degrades to plain sessions.
    """

    engine_name = "peach-star"
    uses_feedback = True
    #: traces are produced and executed whole (run_trace resets the
    #: server once per trace and shares a heap across steps), so the
    #: single-packet batched pipeline does not apply — iterate_batch
    #: falls back to per-trace iterate calls
    supports_batching = False

    #: cumulative mutation-op thresholds on one uniform roll:
    #: crack-and-mutate one step / splice / extend / truncate
    _OP_MUTATE = 0.50
    _OP_SPLICE = 0.65
    _OP_EXTEND = 0.85

    def __init__(self, pit: Pit, target: Target, rng: random.Random,
                 clock: Optional[SimulatedClock] = None,
                 policy: Optional[GenerationPolicy] = None,
                 state_model: Optional[StateModel] = None,
                 max_trace_steps: int = 6,
                 fresh_trace_prob: float = 0.35,
                 concurrency: int = 1,
                 **peachstar_kwargs):
        super().__init__(pit, target, rng, clock, policy,
                         **peachstar_kwargs)
        if state_model is None:
            raise ValueError("SessionFuzzer needs a state model")
        state_model.validate_against(pit)
        self.state_model = state_model
        self.max_trace_steps = max(1, max_trace_steps)
        self.fresh_trace_prob = fresh_trace_prob
        self.concurrency = max(1, concurrency)
        self.session_model_name = trace_model_name(state_model.name)

    # -- one iteration ---------------------------------------------------

    def _make_binder(self, steps: List[TraceStep]):
        if self.concurrency > 1:
            return LaneBinder(self.pit, steps, self.concurrency)
        return TraceBinder(self.pit, steps)

    def iterate(self) -> IterationOutcome:
        """Produce one trace, run it as a session, record the outcome."""
        steps = self._produce_trace()
        binder = self._make_binder(steps)
        result = self.target.run_trace(
            [(step.packet, step.model_name) for step in steps], binder)
        for _ in range(result.steps_executed):
            self.clock.charge_execution(instrumented=self.uses_feedback)
        self.stats.executions += result.steps_executed
        self.stats.traces += 1
        # state learning: a LearnedStateModel grows its automaton from
        # the observed responses and re-annotates the executed steps
        # with the observed states (hand-written models are a no-op) —
        # before the trace is encoded, so the corpus stores real states
        observe = getattr(self.state_model, "observe", None)
        if observe is not None:
            observe(steps, result)
        learned = getattr(self.state_model, "learned_state_count", None)
        if learned is not None:
            self.stats.learned_states = learned
        semantic_steps = sum(
            1 for step in steps[:result.steps_executed] if step.semantic)
        self.stats.semantic_executions += semantic_steps
        encoded = encode_trace(steps)
        outcome = IterationOutcome(
            packet=encoded, model_name=self.session_model_name,
            result=result, semantic=semantic_steps > 0)
        if result.crash is not None:
            result.crash.trace = encoded
            result.crash.crash_step = result.crash_step
            self.stats.crashes_total += 1
            outcome.new_unique_crash = self.crashes.add(
                result.crash, self.clock.hours)
        if result.hang:
            self.stats.hangs += 1
        # Crashing/hanging traces stay out of the pool, same policy as
        # the single-packet queue: their coverage is fault-dominated.
        if result.coverage is not None and result.crash is None \
                and not result.hang:
            seed = self.seed_pool.consider(
                encoded, self.session_model_name, None, result.coverage,
                self.stats.executions, self.clock.now_ms)
            if seed is not None:
                outcome.seed = seed
                outcome.valuable = True
                self.stats.valuable_seeds += 1
                self._crack_steps(steps)
        if self.oracle is not None:
            # post-channel frames when a channel ran, the sent wire
            # otherwise; either way labelled with each step's model
            per_step = result.delivered if result.delivered \
                else [[wire] for wire in result.sent]
            self._run_oracle(outcome, [
                (steps[index].model_name, frames)
                for index, frames in enumerate(per_step)])
            self._maybe_steer_divergence(outcome, None)
        self._absorb_net_stats()
        return self._finish_outcome(outcome)

    # -- cracking --------------------------------------------------------

    def _crack_steps(self, steps: List[TraceStep]) -> None:
        """Crack every step of a valuable trace into the puzzle corpus."""
        if not self.crack_enabled:
            return
        for step in steps:
            self.clock.charge_crack()
            self.cracker.crack(step.packet, step.tree)
        self.stats.puzzles = self.corpus.puzzle_count()

    def _on_valuable_seed(self, seed) -> None:
        """Fleet-import hook: imported entries may be encoded traces."""
        if not self.crack_enabled:
            return
        if is_trace_blob(seed.packet):
            try:
                steps = decode_trace(seed.packet)
            except TraceError:
                return
            self._crack_steps(steps)
        else:
            super()._on_valuable_seed(seed)

    # -- trace production ------------------------------------------------

    def _produce_trace(self) -> List[TraceStep]:
        probe = self._next_probe()
        if probe is not None:
            return probe
        pool = self.seed_pool.seeds
        if not pool or self.rng.random() < self.fresh_trace_prob:
            return self._fresh_walk()
        base = self._steps_of(self.rng.choice(pool))
        if not base:
            return self._fresh_walk()
        roll = self.rng.random()
        if roll < self._OP_MUTATE:
            return self._mutate_one_step(base)
        if roll < self._OP_SPLICE:
            return self._splice(base)
        if roll < self._OP_EXTEND:
            return self._extend(base)
        return self._truncate(base)

    def _next_probe(self) -> Optional[List[TraceStep]]:
        """Bootstrap seed sessions of a learning state model.

        A :class:`~repro.state.learner.LearnedStateModel` hands out
        default-packet walks over the pit until every request kind has
        been observed once (its spec-derived analog of AFLNet's
        recorded seed sessions); hand-written models have no probes.
        Probe production draws nothing from the RNG, so it composes
        with resume determinism trivially.
        """
        probe = getattr(self.state_model, "probe_transitions", None)
        if probe is None:
            return None
        transitions = probe(self.max_trace_steps)
        if not transitions:
            return None
        steps = []
        for transition in transitions:
            model = self.pit.model(transition.send)
            tree = model.build_default()
            steps.append(self._step_from(transition, model, tree,
                                         model.to_wire(tree)))
        return steps

    def _steps_of(self, seed) -> List[TraceStep]:
        try:
            return decode_trace(seed.packet)
        except TraceError:
            return []  # single-packet import from a mixed fleet: skip

    def _produce_step(self, model: DataModel
                      ) -> Tuple[InsTree, bytes, bool]:
        """One step packet via crack-and-generate for a fixed model.

        Mirrors :meth:`PeachStar._produce` minus the model choice and
        the pending-batch queue (sessions need *this* model now; the
        unused remainder of a semantic batch would only queue packets
        for states the trace has already left).
        """
        if self.semantic_enabled and not self.corpus.is_empty and \
                self.rng.random() < self.semantic_ratio:
            batch = self.generator.construct(model)
            if batch:
                self.clock.charge_semantic_generation(len(batch))
                self.clock.charge_fixup()
                tree, packet = batch[0]
                return tree, packet, True
        tree, packet = generate_packet(model, self.rng, self.policy)
        return tree, packet, False

    def _step_from(self, transition: Transition, model: DataModel,
                   tree: InsTree, packet: bytes,
                   semantic: bool = False) -> TraceStep:
        """A TraceStep carrying the transition's session declarations."""
        if transition.pin:
            tree, packet = apply_pins(model, tree, transition.pin)
        return TraceStep(
            model_name=model.name, packet=packet, state=transition.to,
            bind=dict(transition.bind), capture=dict(transition.capture),
            expect=transition.expect, tree=tree, semantic=semantic)

    def _make_step(self, transition: Transition) -> TraceStep:
        model = self.pit.model(transition.send)
        tree, packet, semantic = self._produce_step(model)
        return self._step_from(transition, model, tree, packet, semantic)

    def _walk(self, state: str, count: int) -> List[TraceStep]:
        steps: List[TraceStep] = []
        for _ in range(count):
            transition = self.state_model.pick_transition(state, self.rng)
            if transition is None:
                break
            steps.append(self._make_step(transition))
            state = transition.to
        return steps

    def _single_walk(self) -> List[TraceStep]:
        steps = self._walk(self.state_model.initial,
                           self.rng.randint(1, self.max_trace_steps))
        if not steps:
            # dead-end initial state: degrade to a one-packet trace
            model = choose_model(self.pit, self.rng)
            tree, packet, semantic = self._produce_step(model)
            steps = [TraceStep(model_name=model.name, packet=packet,
                               state=self.state_model.initial, tree=tree,
                               semantic=semantic)]
        return steps

    def _fresh_walk(self) -> List[TraceStep]:
        if self.concurrency <= 1:
            return self._single_walk()
        # concurrency: N independent walks merged round-robin, so the
        # residue class ``i % N`` (= what each connection sees) is a
        # plausible session on its own.  Lane identity stays positional;
        # mutated traces re-deal however their steps land, which is
        # exactly the kind of cross-session interleaving being fuzzed.
        walks = [self._single_walk() for _ in range(self.concurrency)]
        merged: List[TraceStep] = []
        for rank in range(max(len(walk) for walk in walks)):
            for walk in walks:
                merged.append(walk[rank] if rank < len(walk)
                              else self._filler_step(walk))
        return self._clip(merged)

    def _filler_step(self, walk: List[TraceStep]) -> TraceStep:
        """Keep a short walk's lane aligned: repeat its final step.

        Re-sending the last packet of the exhausted walk keeps every
        rank a full deal of N steps (so ``i % N`` routing never skews)
        and is itself a realistic retransmission.
        """
        return walk[-1]

    # -- mutation ops ----------------------------------------------------

    def _clip(self, steps: List[TraceStep]) -> List[TraceStep]:
        return steps[:2 * self.max_trace_steps]

    def _mutate_one_step(self, base: List[TraceStep]) -> List[TraceStep]:
        """Crack-and-mutate one step; the prefix is replayed honestly."""
        index = self.rng.randrange(len(base))
        victim = base[index]
        try:
            model = self.pit.model(victim.model_name)
        except ModelError:
            return self._fresh_walk()  # foreign import: start over
        tree, packet, semantic = self._produce_step(model)
        base[index] = TraceStep(
            model_name=victim.model_name, packet=packet,
            state=victim.state, bind=dict(victim.bind),
            capture=dict(victim.capture), expect=victim.expect,
            tree=tree, semantic=semantic)
        return base

    def _splice(self, base: List[TraceStep]) -> List[TraceStep]:
        pool = self.seed_pool.seeds
        other = self._steps_of(self.rng.choice(pool))
        if not other:
            return self._mutate_one_step(base)
        cut_base = self.rng.randint(1, len(base))
        cut_other = self.rng.randrange(len(other))
        return self._clip(base[:cut_base] + other[cut_other:])

    def _extend(self, base: List[TraceStep]) -> List[TraceStep]:
        state = base[-1].state or self.state_model.initial
        extra = self._walk(state,
                           self.rng.randint(1, self.max_trace_steps))
        return self._clip(base + extra)

    def _truncate(self, base: List[TraceStep]) -> List[TraceStep]:
        if len(base) == 1:
            return self._mutate_one_step(base)
        return base[:self.rng.randint(1, len(base) - 1)]
