"""Figure 4 (a)-(f): average paths covered by Peach and Peach* over 24 h.

One benchmark per panel, in the paper's order.  Each prints the averaged
series table and an ASCII chart of both curves; the aggregate test checks
the cross-panel headline shape (Peach* ahead on average).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_HOURS, BENCH_JOBS, BENCH_REPS, \
    CLAIMS_ENABLED, bench_config, print_block
from repro.analysis import render_panel_report, run_fig4_panel
from repro.protocols import get_target

_PANELS = {}  # target name -> Fig4Panel (shared across the session)

PANEL_ORDER = (
    ("a", "libmodbus"),
    ("b", "iec104"),
    ("c", "libiec61850"),
    ("d", "lib60870"),
    ("e", "libiccp"),
    ("f", "opendnp3"),
)


def _panel(target_name):
    if target_name not in _PANELS:
        _PANELS[target_name] = run_fig4_panel(
            get_target(target_name), repetitions=BENCH_REPS,
            budget_hours=BENCH_HOURS, base_seed=100,
            config=bench_config(), jobs=BENCH_JOBS)
    return _PANELS[target_name]


@pytest.mark.parametrize("letter,target_name", PANEL_ORDER,
                         ids=[f"fig4{l}_{t}" for l, t in PANEL_ORDER])
def test_fig4_panel(benchmark, letter, target_name):
    panel = benchmark.pedantic(_panel, args=(target_name,),
                               rounds=1, iterations=1)
    print_block(f"Figure 4({letter}): {target_name}",
                render_panel_report(panel))
    # shape checks: both fuzzers make progress and curves rise early
    assert panel.peach_curve[-1][1] > 0
    assert panel.star_curve[-1][1] > 0
    first_hour = panel.star_curve[0][1]
    assert panel.star_curve[-1][1] >= first_hour  # monotone growth


def test_fig4_aggregate_star_leads(benchmark):
    """Cross-panel headline: Peach* covers more paths on average.

    The paper reports per-project gains of 8.35%-36.84%; individual
    panels are noisy at our repetition count, so the assertion is on the
    cross-project aggregate.
    """
    def aggregate():
        return [ _panel(name) for _letter, name in PANEL_ORDER ]

    panels = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    increases = [panel.final_increase_pct for panel in panels]
    rows = "\n".join(
        f"  {panel.target_name:<13} peach={panel.peach_curve[-1][1]:7.1f} "
        f"peach*={panel.star_curve[-1][1]:7.1f}  ({inc:+6.2f}%)"
        for panel, inc in zip(panels, increases))
    mean = sum(increases) / len(increases)
    print_block(
        "Figure 4 aggregate (paper: +8.35%..+36.84% per project, "
        "avg +27.35%)",
        rows + f"\n  mean increase: {mean:+.2f}%")
    star_total = sum(panel.star_curve[-1][1] for panel in panels)
    peach_total = sum(panel.peach_curve[-1][1] for panel in panels)
    if CLAIMS_ENABLED:  # needs the near-full 24h budget to hold
        assert star_total > peach_total
