"""Tests for the target registry and the shared BER codec."""

import pytest

from repro.protocols import TARGET_NAMES, all_targets, get_target
from repro.protocols.common.ber import (
    BerError, collect_children, decode_integer, decode_length, decode_tlv,
    encode_integer, encode_length, encode_tlv, encode_visible_string,
    iter_tlvs,
)


class TestRegistry:
    def test_six_targets_registered(self):
        assert len(all_targets()) == 6
        assert set(TARGET_NAMES) == {
            "libmodbus", "iec104", "libiec61850", "lib60870", "libiccp",
            "opendnp3",
        }

    def test_nine_seeded_bugs_total(self):
        """Table I: 9 previously-unknown vulnerabilities across 3 projects."""
        total = sum(spec.seeded_bug_count for spec in all_targets())
        assert total == 9

    def test_bug_distribution_matches_table1(self):
        assert get_target("lib60870").seeded_bug_count == 3
        assert get_target("libmodbus").seeded_bug_count == 2
        assert get_target("libiccp").seeded_bug_count == 4
        assert get_target("iec104").seeded_bug_count == 0
        assert get_target("opendnp3").seeded_bug_count == 0
        assert get_target("libiec61850").seeded_bug_count == 0

    def test_unknown_target_raises_with_choices(self):
        with pytest.raises(KeyError, match="choices"):
            get_target("s7comm")

    def test_every_target_builds_server_and_pit(self):
        for spec in all_targets():
            server = spec.make_server()
            pit = spec.make_pit()
            assert hasattr(server, "handle_packet")
            assert len(pit) >= 6

    def test_cost_models_ordered_by_code_scale(self):
        """Bigger stacks must be slower (drives Fig. 4 panel shapes)."""
        cost = {spec.name: spec.cost_model.exec_cost_ms
                for spec in all_targets()}
        assert cost["iec104"] < cost["libmodbus"] < cost["libiec61850"]


class TestBer:
    def test_short_length(self):
        assert encode_length(5) == b"\x05"
        assert decode_length(b"\x05", 0) == (5, 1)

    def test_long_form_lengths(self):
        assert encode_length(0x80) == b"\x81\x80"
        assert encode_length(0x1234) == b"\x82\x12\x34"
        assert decode_length(b"\x82\x12\x34", 0) == (0x1234, 3)

    def test_length_too_large(self):
        with pytest.raises(BerError):
            encode_length(0x1_0000)

    def test_tlv_roundtrip(self):
        blob = encode_tlv(0xA4, b"hello")
        tag, value, pos = decode_tlv(blob)
        assert (tag, value, pos) == (0xA4, b"hello", len(blob))

    def test_truncated_tlv(self):
        with pytest.raises(BerError):
            decode_tlv(b"\xA4\x05hi")

    def test_iter_tlvs(self):
        data = encode_tlv(1, b"a") + encode_tlv(2, b"bc")
        assert list(iter_tlvs(data)) == [(1, b"a"), (2, b"bc")]

    def test_integer_roundtrip(self):
        for value in (0, 1, 127, 128, 255, 300, -1, -128, 65535):
            tag, body, _pos = decode_tlv(encode_integer(value))
            assert decode_integer(body) == value, value

    def test_integer_minimal_encoding(self):
        assert encode_integer(1) == b"\x02\x01\x01"
        assert encode_integer(128) == b"\x02\x02\x00\x80"

    def test_empty_integer_rejected(self):
        with pytest.raises(BerError):
            decode_integer(b"")

    def test_visible_string(self):
        tag, value, _pos = decode_tlv(encode_visible_string("IED1"))
        assert tag == 0x1A and value == b"IED1"

    def test_collect_children(self):
        data = encode_tlv(1, b"x") + encode_tlv(2, b"y")
        assert collect_children(data) == [(1, b"x"), (2, b"y")]

    def test_unsupported_length_of_length(self):
        with pytest.raises(BerError):
            decode_length(b"\x83\x01\x00\x00", 0)
