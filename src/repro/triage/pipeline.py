"""The triage pipeline: bucket → minimize → export, per unique crash.

Feeds from either a finished :class:`~repro.core.campaign.CampaignResult`
or a persisted :class:`~repro.store.workspace.CampaignWorkspace`
(``peachstar triage --workspace``), and produces a
:class:`TriageReport` the analysis layer renders as a summary table.

Crashes found in session mode (the report carries an encoded trace)
route through the session minimizer — whole steps are dropped first,
then the crashing step shrinks through the ordinary field-aware/ddmin
pair — and their reproducers replay the full minimized trace.

Minimization of *different* crashes is embarrassingly parallel (each
bucket representative owns its own sanitizer re-executions), so with
``jobs`` > 1 the per-crash work fans out over a process pool with the
same fallback contract as
:func:`~repro.core.campaign.run_campaign_batch`; results are identical
to the serial pass.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sanitizer.report import CrashReport
from repro.triage.bucket import CrashBucket, bucket_crashes
from repro.triage.minimize import (
    CrashChecker, MinimizationResult, minimize_crash,
)
from repro.triage.reproducer import export_reproducer


@dataclass
class TriagedCrash:
    """One unique crash after the full triage pass."""

    bucket: CrashBucket
    minimization: Optional[MinimizationResult]
    packet_path: Optional[str] = None
    script_path: Optional[str] = None

    @property
    def report(self) -> CrashReport:
        return self.bucket.representative

    @property
    def final_packet(self) -> bytes:
        """What lands in ``<bucket>.bin``: the minimized packet, or —
        for session crashes — the (minimized) encoded trace the
        reproducer script replays."""
        if self.minimization is not None and self.minimization.confirmed:
            return self.minimization.minimized
        if self.report.is_session:
            return self.report.trace
        return self.report.packet

    @property
    def final_report(self) -> CrashReport:
        """The report rendered to the analyst (minimized when possible)."""
        if self.minimization is not None and \
                self.minimization.report is not None:
            return self.minimization.report
        return self.report


@dataclass
class TriageReport:
    """Everything ``peachstar triage`` produced for one target."""

    target_name: str
    crashes: List[TriagedCrash]
    executions_spent: int
    out_dir: Optional[str] = None

    @property
    def minimized_count(self) -> int:
        return sum(1 for crash in self.crashes
                   if crash.minimization is not None
                   and crash.minimization.reduced)


@dataclass(frozen=True)
class _MinimizeTask:
    """One schedulable minimization (picklable: target by name)."""

    target_name: str
    report: CrashReport
    max_executions: int
    coverage_backend: str
    hang_budget: int


class _CheckerPair:
    """Lazily-built sanitizer checkers, one per crash kind.

    Single-packet and session crashes need different re-executors
    (packet vs whole-trace); sharing one of each across a serial triage
    pass keeps the warm-server behavior and builds the pit/collector
    once instead of per crash.
    """

    def __init__(self, target_spec, coverage_backend: str,
                 hang_budget: int):
        self._spec = target_spec
        self._backend = coverage_backend
        self._hang_budget = hang_budget
        self._crash: Optional[CrashChecker] = None
        self._trace = None
        self._divergence = None

    def crash_checker(self) -> CrashChecker:
        if self._crash is None:
            self._crash = CrashChecker(self._spec,
                                       hang_budget=self._hang_budget,
                                       backend=self._backend)
        return self._crash

    def trace_checker(self):
        if self._trace is None:
            from repro.state.triage import TraceChecker
            self._trace = TraceChecker(self._spec,
                                       hang_budget=self._hang_budget,
                                       backend=self._backend)
        return self._trace

    def divergence_checker(self):
        if self._divergence is None:
            from repro.channel.oracle import DivergenceChecker
            self._divergence = DivergenceChecker(self._spec)
        return self._divergence


def _minimize_one(spec, report: CrashReport, max_executions: int,
                  checkers: _CheckerPair) -> MinimizationResult:
    """Minimize one finding, routing by its class.

    Divergence reports (duck-typed by their ``oracle`` attribute)
    re-evaluate through the differential oracle instead of the
    sanitizer; session crashes go through the trace pass.
    """
    if getattr(report, "oracle", None) is not None:
        from repro.channel.oracle import minimize_divergence
        return minimize_divergence(spec, report,
                                   max_executions=max_executions,
                                   checker=checkers.divergence_checker())
    if report.is_session:
        from repro.state.triage import minimize_trace
        return minimize_trace(spec, report, max_executions=max_executions,
                              checker=checkers.trace_checker())
    return minimize_crash(spec, report, max_executions=max_executions,
                          checker=checkers.crash_checker())


def _minimize_worker(task: _MinimizeTask) -> MinimizationResult:
    """Process-pool entry point: resolve the target, minimize one crash."""
    from repro.protocols import get_target
    spec = get_target(task.target_name)
    return _minimize_one(spec, task.report, task.max_executions,
                         _CheckerPair(spec, task.coverage_backend,
                                      task.hang_budget))


def _run_minimizations(target_spec, buckets: List[CrashBucket],
                       max_executions: int, coverage_backend: str,
                       hang_budget: int, jobs: Optional[int]
                       ) -> List[MinimizationResult]:
    """One minimization per bucket, serial or fanned over a pool.

    Each crash's reduction is an independent greedy search over its own
    sanitizer re-executions, so fanning crashes out changes wall-clock
    only — the per-crash results are identical to the serial pass
    (workers build their own checkers; the serial path shares one per
    kind to keep its warm-server behavior).
    """
    from repro.core.campaign import default_worker_count

    tasks = [_MinimizeTask(target_spec.name, bucket.representative,
                           max_executions, coverage_backend, hang_budget)
             for bucket in buckets]

    def serial() -> List[MinimizationResult]:
        checkers = _CheckerPair(target_spec, coverage_backend, hang_budget)
        return [_minimize_one(target_spec, task.report,
                              task.max_executions, checkers)
                for task in tasks]

    max_workers = jobs if jobs is not None else default_worker_count()
    if len(tasks) <= 1 or max_workers <= 1:
        return serial()
    try:
        pool = ProcessPoolExecutor(max_workers=min(max_workers, len(tasks)))
    except OSError:
        # same degradation contract as run_campaign_batch: platforms
        # without process pools run serially, identical results
        return serial()
    with pool:
        return list(pool.map(_minimize_worker, tasks))


def triage_reports(target_spec, reports: Iterable[CrashReport], *,
                   minimize: bool = True,
                   max_executions_per_crash: int = 3000,
                   out_dir: Optional[str] = None,
                   coverage_backend: str = "auto",
                   hang_budget: int = 120_000,
                   jobs: Optional[int] = None,
                   net_url: Optional[str] = None) -> TriageReport:
    """Run the full triage pass over a set of crash reports.

    Buckets by the refined ``(kind, site, context)`` key, minimizes each
    bucket's representative input under the sanitizer (``jobs`` worker
    processes; ``None`` = ``REPRO_JOBS``/cores-1, ``1`` = in-process),
    and (when *out_dir* is given) exports a standalone reproducer script
    plus raw packet — or encoded trace, for session crashes — per
    bucket.  *coverage_backend*/*hang_budget* mirror the campaign the
    crashes came from.  *net_url* makes server-crash reproducers
    replay over a socket against a served ``tcp://`` endpoint.
    """
    buckets = bucket_crashes(reports)
    minimizations: List[Optional[MinimizationResult]] = [None] * len(buckets)
    executions_spent = 0
    if minimize and buckets:
        results = _run_minimizations(
            target_spec, buckets, max_executions_per_crash,
            coverage_backend, hang_budget, jobs)
        minimizations = list(results)
        executions_spent = sum(result.executions for result in results)
    triaged: List[TriagedCrash] = []
    for bucket, minimization in zip(buckets, minimizations):
        crash = TriagedCrash(bucket=bucket, minimization=minimization)
        if out_dir is not None:
            crash.packet_path, crash.script_path = export_reproducer(
                out_dir, bucket.slug(), target_spec.name,
                crash.final_report, crash.final_packet,
                net_url=net_url)
        triaged.append(crash)
    return TriageReport(
        target_name=target_spec.name,
        crashes=triaged,
        executions_spent=executions_spent,
        out_dir=out_dir,
    )
